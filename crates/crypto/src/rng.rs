//! Small helpers for generating nonces, IVs, and symmetric keys.

use crate::aes::AesKey;
use rand::Rng;

/// Generates a random 16-byte value (AES IV / CTR nonce).
pub fn random_iv<R: Rng + ?Sized>(rng: &mut R) -> [u8; 16] {
    let mut iv = [0u8; 16];
    rng.fill(&mut iv);
    iv
}

/// Generates a random 8-byte challenge nonce for the key-distribution
/// handshake (paper Fig 4, `nonce_a` / `nonce_b`).
pub fn random_nonce<R: Rng + ?Sized>(rng: &mut R) -> [u8; 8] {
    let mut n = [0u8; 8];
    rng.fill(&mut n);
    n
}

/// Generates a fresh random AES-256 session key (`SK_S` in the paper).
pub fn random_aes256_key<R: Rng + ?Sized>(rng: &mut R) -> AesKey {
    let mut k = [0u8; 32];
    rng.fill(&mut k);
    AesKey::Aes256(k)
}

/// Generates a fresh random AES-128 key for constrained devices.
pub fn random_aes128_key<R: Rng + ?Sized>(rng: &mut R) -> AesKey {
    let mut k = [0u8; 16];
    rng.fill(&mut k);
    AesKey::Aes128(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_differ_between_draws() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_ne!(random_iv(&mut rng), random_iv(&mut rng));
        assert_ne!(random_nonce(&mut rng), random_nonce(&mut rng));
        assert_ne!(
            random_aes256_key(&mut rng).as_bytes(),
            random_aes256_key(&mut rng).as_bytes()
        );
    }

    #[test]
    fn key_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(random_aes256_key(&mut rng).as_bytes().len(), 32);
        assert_eq!(random_aes128_key(&mut rng).as_bytes().len(), 16);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_iv(&mut StdRng::seed_from_u64(42));
        let b = random_iv(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
