//! HKDF key derivation (RFC 5869) over HMAC-SHA-256.
//!
//! B-IoT distributes one session key per device (Fig 4); deployments that
//! rotate keys per epoch can derive epoch keys from the distributed master
//! secret instead of re-running the handshake:
//!
//! ```
//! use biot_crypto::kdf::hkdf;
//!
//! let master = [7u8; 32];
//! let epoch_key = hkdf(Some(b"factory-7"), &master, b"epoch-42", 32);
//! assert_eq!(epoch_key.len(), 32);
//! ```

use crate::sha256::{hmac_sha256, DIGEST_LEN};

/// HKDF-Extract: compresses input keying material into a pseudorandom key.
///
/// `salt` defaults to a zero-filled block when absent (per RFC 5869 §2.2).
pub fn hkdf_extract(salt: Option<&[u8]>, ikm: &[u8]) -> [u8; DIGEST_LEN] {
    let zero_salt = [0u8; DIGEST_LEN];
    hmac_sha256(salt.unwrap_or(&zero_salt), ikm)
}

/// HKDF-Expand: stretches a pseudorandom key into `len` output bytes bound
/// to `info`.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut data = t.clone();
        data.extend_from_slice(info);
        data.push(counter);
        t = hmac_sha256(prk, &data).to_vec();
        okm.extend_from_slice(&t);
        counter = counter.wrapping_add(1); // never re-used: ≤255 blocks total
    }
    okm.truncate(len);
    okm
}

/// One-shot HKDF: extract then expand.
pub fn hkdf(salt: Option<&[u8]>, ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, to_hex};

    /// RFC 5869 Appendix A, test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = from_hex("000102030405060708090a0b0c").unwrap();
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = hkdf_extract(Some(&salt), &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 Appendix A, test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(Some(&[]), &ikm, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn missing_salt_equals_zero_salt() {
        let ikm = b"input keying material";
        assert_eq!(
            hkdf_extract(None, ikm),
            hkdf_extract(Some(&[0u8; DIGEST_LEN]), ikm)
        );
    }

    #[test]
    fn different_info_different_keys() {
        let master = [9u8; 32];
        let a = hkdf(None, &master, b"epoch-1", 32);
        let b = hkdf(None, &master, b"epoch-2", 32);
        assert_ne!(a, b);
    }

    #[test]
    fn output_lengths() {
        let prk = hkdf_extract(None, b"x");
        assert_eq!(hkdf_expand(&prk, b"", 0).len(), 0);
        assert_eq!(hkdf_expand(&prk, b"", 1).len(), 1);
        assert_eq!(hkdf_expand(&prk, b"", 33).len(), 33);
        assert_eq!(hkdf_expand(&prk, b"", 255 * 32).len(), 255 * 32);
        // Prefix property: longer output starts with shorter output.
        let short = hkdf_expand(&prk, b"i", 16);
        let long = hkdf_expand(&prk, b"i", 64);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    #[should_panic]
    fn too_long_output_panics() {
        let prk = hkdf_extract(None, b"x");
        hkdf_expand(&prk, b"", 255 * 32 + 1);
    }
}
