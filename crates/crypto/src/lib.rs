//! # biot-crypto
//!
//! From-scratch cryptographic primitives for the B-IoT reproduction
//! (ICDCS 2019): everything the paper's prototype used — SHA-256 for PoW
//! and identities, AES for the data authority management method, and a
//! public-key scheme (RSA over a from-scratch bignum) for signatures and
//! symmetric-key distribution.
//!
//! These implementations favour clarity and testability over speed or
//! side-channel resistance; they back a research simulator, not a
//! production HSM.
//!
//! ## Modules
//!
//! * [`sha256`] — FIPS 180-4 SHA-256/224 and HMAC-SHA-256.
//! * [`aes`] — FIPS 197 AES-128/192/256 with ECB/CBC/CTR and PKCS#7.
//! * [`bignum`] — arbitrary-precision unsigned arithmetic with modular
//!   exponentiation and Miller–Rabin primality.
//! * [`rsa`] — keygen, PKCS#1 v1.5-style signatures and encryption.
//! * [`rng`] — nonce / IV / session-key helpers.
//!
//! ## Example: the paper's encrypt-then-post flow
//!
//! ```
//! use biot_crypto::{aes::Aes, rng, sha256::sha256};
//!
//! let mut r = rand::thread_rng();
//! let session_key = rng::random_aes256_key(&mut r);
//! let iv = rng::random_iv(&mut r);
//! let cipher = Aes::new(&session_key);
//!
//! let reading = b"temperature=21.5C";
//! let ciphertext = cipher.encrypt_cbc(reading, &iv);
//! let tx_payload_hash = sha256(&ciphertext); // what lands on the ledger
//! assert_eq!(tx_payload_hash.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bignum;
pub mod kdf;
pub mod rng;
pub mod rsa;
pub mod sha256;
