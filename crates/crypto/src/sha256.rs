//! SHA-256 and SHA-224 message digests (FIPS 180-4), implemented from
//! scratch.
//!
//! The implementation is a straightforward, constant-table Merkle–Damgård
//! construction with a streaming [`Sha256`] hasher and convenience one-shot
//! functions ([`sha256`], [`sha224`]).
//!
//! # Examples
//!
//! ```
//! use biot_crypto::sha256::sha256;
//!
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//!
//! fn hex(bytes: &[u8]) -> String {
//!     bytes.iter().map(|b| format!("{b:02x}")).collect()
//! }
//! ```

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Number of bytes in one SHA-256 input block.
pub const BLOCK_LEN: usize = 64;

/// First 32 bits of the fractional parts of the cube roots of the first 64
/// primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash value (FIPS 180-4 §5.3.3).
const H256: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// SHA-224 initial hash value (FIPS 180-4 §5.3.2).
const H224: [u32; 8] = [
    0xc1059ed8, 0x367cd507, 0x3070dd17, 0xf70e5939, 0xffc00b31, 0x68581511, 0x64f98fa7, 0xbefa4fa4,
];

/// A streaming SHA-256 hasher.
///
/// Feed input incrementally with [`update`](Self::update) and produce the
/// digest with [`finalize`](Self::finalize).
///
/// # Examples
///
/// ```
/// use biot_crypto::sha256::{sha256, Sha256};
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes processed so far (excluding buffered).
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    /// True for SHA-224 (truncated output, different IV).
    short: bool,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a new SHA-256 hasher.
    pub fn new() -> Self {
        Self {
            state: H256,
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            short: false,
        }
    }

    /// Creates a new SHA-224 hasher; [`finalize`](Self::finalize) returns a
    /// 32-byte array of which only the first 28 bytes are the digest (use
    /// [`finalize_224`](Self::finalize_224) for the truncated form).
    pub fn new_224() -> Self {
        Self {
            state: H224,
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            short: true,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let mut input = data;
        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
                self.len += BLOCK_LEN as u64;
            }
        }
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            self.len += BLOCK_LEN as u64;
            input = rest;
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
        self
    }

    /// Completes the hash and returns the 32-byte digest.
    ///
    /// Consumes the hasher; clone it first if you need to continue hashing.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = (self.len + self.buf_len as u64) * 8;
        // Padding: 0x80, zeros, then 64-bit big-endian length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        let buffered = self.buf_len;
        pad[..buffered].copy_from_slice(&self.buf[..buffered]);
        pad[buffered] = 0x80;
        let total = if buffered < 56 { BLOCK_LEN } else { BLOCK_LEN * 2 };
        pad[total - 8..total].copy_from_slice(&bit_len.to_be_bytes());
        let mut block = [0u8; BLOCK_LEN];
        block.copy_from_slice(&pad[..BLOCK_LEN]);
        self.compress(&block);
        if total == BLOCK_LEN * 2 {
            block.copy_from_slice(&pad[BLOCK_LEN..]);
            self.compress(&block);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Captures the hasher's state as a resumable [`Midstate`].
    ///
    /// The midstate records the compressed chaining value plus any bytes
    /// still buffered below a block boundary, so a fixed message prefix
    /// can be absorbed **once** and then extended with many different
    /// suffixes — the core trick of midstate proof-of-work mining, where
    /// the bundle preimage is constant and only the nonce varies.
    ///
    /// # Examples
    ///
    /// ```
    /// use biot_crypto::sha256::{sha256, Sha256};
    ///
    /// let mut prefix = Sha256::new();
    /// prefix.update(b"fixed preimage ");
    /// let mid = prefix.midstate();
    /// for nonce in 0u64..4 {
    ///     let mut h = Sha256::from_midstate(&mid);
    ///     h.update(&nonce.to_be_bytes());
    ///     let mut joined = b"fixed preimage ".to_vec();
    ///     joined.extend_from_slice(&nonce.to_be_bytes());
    ///     assert_eq!(h.finalize(), sha256(&joined));
    /// }
    /// ```
    pub fn midstate(&self) -> Midstate {
        Midstate {
            state: self.state,
            len: self.len,
            buf: self.buf,
            buf_len: self.buf_len as u8,
            short: self.short,
        }
    }

    /// Resumes hashing from a captured [`Midstate`].
    pub fn from_midstate(mid: &Midstate) -> Self {
        Self {
            state: mid.state,
            len: mid.len,
            buf: mid.buf,
            buf_len: mid.buf_len as usize,
            short: mid.short,
        }
    }

    /// Completes a SHA-224 hash and returns the 28-byte digest.
    ///
    /// # Panics
    ///
    /// Panics if the hasher was created with [`Sha256::new`] rather than
    /// [`Sha256::new_224`].
    pub fn finalize_224(self) -> [u8; 28] {
        assert!(self.short, "finalize_224 called on a SHA-256 hasher");
        let full = self.finalize();
        let mut out = [0u8; 28];
        out.copy_from_slice(&full[..28]);
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// A resumable snapshot of a [`Sha256`] hasher's internal state.
///
/// Created by [`Sha256::midstate`] and consumed by
/// [`Sha256::from_midstate`]. `Copy`, so per-trial resumption in a
/// mining loop costs a register-width memcpy instead of re-compressing
/// the whole message prefix.
#[derive(Clone, Copy, Debug)]
pub struct Midstate {
    state: [u32; 8],
    /// Bytes fully compressed so far (multiple of the block length).
    len: u64,
    /// Pending bytes below the next block boundary.
    buf: [u8; BLOCK_LEN],
    buf_len: u8,
    short: bool,
}

/// Computes the SHA-256 digest of `data` in one call.
///
/// # Examples
///
/// ```
/// use biot_crypto::sha256::sha256;
/// // The empty-string digest is a well-known constant.
/// assert_eq!(sha256(b"")[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Computes the SHA-224 digest of `data` in one call.
pub fn sha224(data: &[u8]) -> [u8; 28] {
    let mut h = Sha256::new_224();
    h.update(data);
    h.finalize_224()
}

/// Computes SHA-256 over the concatenation of several segments without
/// allocating a joined buffer.
pub fn sha256_concat(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Computes HMAC-SHA-256 (RFC 2104) of `message` under `key`.
///
/// # Examples
///
/// ```
/// use biot_crypto::sha256::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0], 0xf7);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }
    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(message);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(&inner);
    h.finalize()
}

/// Counts the number of leading zero *bits* in `bytes`.
///
/// This is the difficulty metric of hash-prefix proof-of-work (paper
/// Eqn 6): a PoW output at difficulty `D` must satisfy
/// `leading_zero_bits(hash) >= D`.
///
/// # Examples
///
/// ```
/// use biot_crypto::sha256::leading_zero_bits;
/// assert_eq!(leading_zero_bits(&[0x00, 0x1F]), 11);
/// assert_eq!(leading_zero_bits(&[0x80]), 0);
/// assert_eq!(leading_zero_bits(&[0x00, 0x00]), 16);
/// ```
pub fn leading_zero_bits(bytes: &[u8]) -> u32 {
    let mut count = 0;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_be_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        if word == 0 {
            count += 64;
        } else {
            return count + word.leading_zeros();
        }
    }
    for &b in chunks.remainder() {
        if b == 0 {
            count += 8;
        } else {
            return count + b.leading_zeros();
        }
    }
    count
}

/// Compares two byte slices in constant time (for equal lengths).
///
/// Unequal lengths return `false` immediately — the length is assumed
/// public. Use for comparing MACs, digests, and challenge nonces so the
/// comparison time leaks nothing about *where* they differ.
///
/// # Examples
///
/// ```
/// use biot_crypto::sha256::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Encodes bytes as lowercase hex. Handy for digest display in examples and
/// reports.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a lowercase/uppercase hex string into bytes.
///
/// # Errors
///
/// Returns `None` if the string has odd length or contains a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        to_hex(b)
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha224_vector() {
        assert_eq!(
            hex(&sha224(b"abc")),
            "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..255u8).cycle().take(300).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn streaming_many_small_updates() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries must not panic
        // and must be consistent between streaming and one-shot.
        for len in [0, 1, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            for chunk in data.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn concat_matches_joined() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(sha256_concat(&[a, b]), sha256(b"hello world"));
    }

    #[test]
    fn hmac_rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
        assert!(!ct_eq(&[0xFF; 32], &[0x00; 32]));
    }

    #[test]
    fn hex_roundtrip() {
        let data = vec![0x00, 0x01, 0xab, 0xff];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }

    #[test]
    fn midstate_resume_matches_oneshot_at_all_split_points() {
        // Split points straddle the 64-byte block boundary in both the
        // prefix (buffered vs compressed) and the suffix.
        let data: Vec<u8> = (0..255u8).cycle().take(200).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut prefix = Sha256::new();
            prefix.update(&data[..split]);
            let mid = prefix.midstate();
            let mut resumed = Sha256::from_midstate(&mid);
            resumed.update(&data[split..]);
            assert_eq!(resumed.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn midstate_is_reusable_many_times() {
        let mut prefix = Sha256::new();
        prefix.update(b"bundle preimage: parents, payload, issuer, ts ");
        let mid = prefix.midstate();
        for nonce in 0u64..64 {
            let mut h = Sha256::from_midstate(&mid);
            h.update(&nonce.to_be_bytes());
            let mut joined = b"bundle preimage: parents, payload, issuer, ts ".to_vec();
            joined.extend_from_slice(&nonce.to_be_bytes());
            assert_eq!(h.finalize(), sha256(&joined), "nonce {nonce}");
        }
    }

    #[test]
    fn midstate_preserves_sha224_mode() {
        let mut prefix = Sha256::new_224();
        prefix.update(b"abc");
        let resumed = Sha256::from_midstate(&prefix.midstate());
        assert_eq!(
            hex(&resumed.finalize_224()),
            "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7"
        );
    }

    #[test]
    fn leading_zero_bits_word_scan_edge_cases() {
        // Empty, all-zero, and a one-bit at every position of a 32-byte
        // digest-sized buffer (crossing the 8-byte word boundaries).
        assert_eq!(leading_zero_bits(&[]), 0);
        assert_eq!(leading_zero_bits(&[0u8; 32]), 256);
        for bit in 0..256u32 {
            let mut buf = [0u8; 32];
            buf[(bit / 8) as usize] = 0x80 >> (bit % 8);
            assert_eq!(leading_zero_bits(&buf), bit, "bit {bit}");
        }
        // Non-multiple-of-8 lengths exercise the remainder path.
        assert_eq!(leading_zero_bits(&[0x00, 0x1F]), 11);
        assert_eq!(leading_zero_bits(&[0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01]), 71);
        assert_eq!(leading_zero_bits(&[0x00, 0x00, 0x00]), 24);
    }

    #[test]
    fn finalize_224_panics_on_sha256_hasher() {
        let h = Sha256::new();
        let r = std::panic::catch_unwind(move || h.finalize_224());
        assert!(r.is_err());
    }
}
