//! AES block cipher (FIPS 197) with ECB, CBC, and CTR modes and PKCS#7
//! padding, implemented from scratch.
//!
//! This is the symmetric primitive behind B-IoT's data authority management
//! method (§IV-C of the paper): sensitive sensor readings are AES-encrypted
//! before being posted to the transparent ledger.
//!
//! # Examples
//!
//! ```
//! use biot_crypto::aes::{Aes, AesKey};
//!
//! let key = AesKey::Aes128([0u8; 16]);
//! let cipher = Aes::new(&key);
//! let iv = [7u8; 16];
//! let ct = cipher.encrypt_cbc(b"factory telemetry", &iv);
//! let pt = cipher.decrypt_cbc(&ct, &iv).expect("valid padding");
//! assert_eq!(pt, b"factory telemetry");
//! ```

use std::fmt;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// An AES key of one of the three standard sizes.
#[derive(Clone, PartialEq, Eq)]
pub enum AesKey {
    /// 128-bit key (10 rounds).
    Aes128([u8; 16]),
    /// 192-bit key (12 rounds).
    Aes192([u8; 24]),
    /// 256-bit key (14 rounds).
    Aes256([u8; 32]),
}

impl AesKey {
    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            AesKey::Aes128(k) => k,
            AesKey::Aes192(k) => k,
            AesKey::Aes256(k) => k,
        }
    }

    /// Builds a key from a byte slice of length 16, 24, or 32.
    ///
    /// # Errors
    ///
    /// Returns [`AesError::BadKeyLen`] for any other length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AesError> {
        match bytes.len() {
            16 => {
                let mut k = [0u8; 16];
                k.copy_from_slice(bytes);
                Ok(AesKey::Aes128(k))
            }
            24 => {
                let mut k = [0u8; 24];
                k.copy_from_slice(bytes);
                Ok(AesKey::Aes192(k))
            }
            32 => {
                let mut k = [0u8; 32];
                k.copy_from_slice(bytes);
                Ok(AesKey::Aes256(k))
            }
            n => Err(AesError::BadKeyLen(n)),
        }
    }

    fn rounds(&self) -> usize {
        match self {
            AesKey::Aes128(_) => 10,
            AesKey::Aes192(_) => 12,
            AesKey::Aes256(_) => 14,
        }
    }
}

impl fmt::Debug for AesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        let kind = match self {
            AesKey::Aes128(_) => "Aes128",
            AesKey::Aes192(_) => "Aes192",
            AesKey::Aes256(_) => "Aes256",
        };
        write!(f, "AesKey::{kind}(<redacted>)")
    }
}

/// Errors produced by AES operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesError {
    /// Key length was not 16, 24, or 32 bytes.
    BadKeyLen(usize),
    /// Ciphertext length is not a positive multiple of the block size.
    BadCiphertextLen(usize),
    /// PKCS#7 padding was malformed after decryption.
    BadPadding,
}

impl fmt::Display for AesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AesError::BadKeyLen(n) => write!(f, "invalid AES key length {n}"),
            AesError::BadCiphertextLen(n) => {
                write!(f, "ciphertext length {n} is not a positive multiple of 16")
            }
            AesError::BadPadding => write!(f, "invalid PKCS#7 padding"),
        }
    }
}

impl std::error::Error for AesError {}

// --- S-box generation -----------------------------------------------------

/// Multiplies two elements of GF(2^8) with the AES reduction polynomial.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Computes the multiplicative inverse in GF(2^8) (0 maps to 0).
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 == a^-1 in GF(2^8).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn build_sboxes() -> ([u8; 256], [u8; 256]) {
    let mut sbox = [0u8; 256];
    let mut inv = [0u8; 256];
    for (i, slot) in sbox.iter_mut().enumerate() {
        let x = gf_inv(i as u8);
        let y = x
            ^ x.rotate_left(1)
            ^ x.rotate_left(2)
            ^ x.rotate_left(3)
            ^ x.rotate_left(4)
            ^ 0x63;
        *slot = y;
        inv[y as usize] = i as u8;
    }
    (sbox, inv)
}

/// The process-wide (forward, inverse) S-box pair, built once on first use.
/// The tables are key-independent, so rebuilding 512 bytes of GF(2⁸)
/// inversions per [`Aes::new`] was pure waste — session-key rotation in the
/// B-IoT handshake constructs ciphers frequently.
fn sboxes() -> &'static ([u8; 256], [u8; 256]) {
    static SBOXES: std::sync::OnceLock<([u8; 256], [u8; 256])> = std::sync::OnceLock::new();
    SBOXES.get_or_init(build_sboxes)
}

// --- Cipher ----------------------------------------------------------------

/// An AES cipher instance with a fully expanded key schedule.
///
/// Construct once per key with [`Aes::new`]; all mode methods
/// ([`encrypt_cbc`](Self::encrypt_cbc), [`apply_ctr`](Self::apply_ctr), …)
/// reuse the expanded schedule.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; BLOCK_LEN]>,
    sbox: &'static [u8; 256],
    inv_sbox: &'static [u8; 256],
    rounds: usize,
}

impl fmt::Debug for Aes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Aes").field("rounds", &self.rounds).finish()
    }
}

impl Aes {
    /// Expands `key` into the round-key schedule and returns a ready cipher.
    pub fn new(key: &AesKey) -> Self {
        let (sbox, inv_sbox) = sboxes();
        let rounds = key.rounds();
        let nk = key.as_bytes().len() / 4;
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for chunk in key.as_bytes().chunks_exact(4) {
            w.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut rcon = 1u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|q| {
                let mut rk = [0u8; BLOCK_LEN];
                for (i, word) in q.iter().enumerate() {
                    rk[i * 4..i * 4 + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Self {
            round_keys,
            sbox,
            inv_sbox,
            rounds,
        }
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            self.sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        self.sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        self.inv_sub_bytes(block);
        for round in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            self.inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    fn sub_bytes(&self, block: &mut [u8; BLOCK_LEN]) {
        for b in block.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, block: &mut [u8; BLOCK_LEN]) {
        for b in block.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// Encrypts `plaintext` in CBC mode with PKCS#7 padding.
    ///
    /// Output length is `plaintext.len()` rounded up to the next multiple of
    /// 16 (a full padding block is appended when the input is already
    /// block-aligned).
    pub fn encrypt_cbc(&self, plaintext: &[u8], iv: &[u8; BLOCK_LEN]) -> Vec<u8> {
        let padded = pkcs7_pad(plaintext);
        let mut out = Vec::with_capacity(padded.len());
        let mut prev = *iv;
        for chunk in padded.chunks_exact(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            for i in 0..BLOCK_LEN {
                block[i] = chunk[i] ^ prev[i];
            }
            self.encrypt_block(&mut block);
            out.extend_from_slice(&block);
            prev = block;
        }
        out
    }

    /// Decrypts CBC ciphertext and strips PKCS#7 padding.
    ///
    /// # Errors
    ///
    /// Returns [`AesError::BadCiphertextLen`] if `ciphertext` is empty or not
    /// block-aligned, and [`AesError::BadPadding`] if the padding bytes are
    /// inconsistent (wrong key/IV or corrupted data).
    pub fn decrypt_cbc(
        &self,
        ciphertext: &[u8],
        iv: &[u8; BLOCK_LEN],
    ) -> Result<Vec<u8>, AesError> {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
            return Err(AesError::BadCiphertextLen(ciphertext.len()));
        }
        let mut out = Vec::with_capacity(ciphertext.len());
        let mut prev = *iv;
        for chunk in ciphertext.chunks_exact(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            let saved = block;
            self.decrypt_block(&mut block);
            for i in 0..BLOCK_LEN {
                block[i] ^= prev[i];
            }
            out.extend_from_slice(&block);
            prev = saved;
        }
        pkcs7_unpad(&mut out)?;
        Ok(out)
    }

    /// Applies CTR-mode keystream to `data` (encryption and decryption are
    /// the same operation). The 16-byte `nonce` is the initial counter
    /// block, incremented as a 128-bit big-endian integer per block (the
    /// NIST SP 800-38A layout).
    pub fn apply_ctr(&self, data: &[u8], nonce: &[u8; BLOCK_LEN]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut counter = *nonce;
        for chunk in data.chunks(BLOCK_LEN) {
            let mut block = counter;
            self.encrypt_block(&mut block);
            for (i, byte) in chunk.iter().enumerate() {
                out.push(byte ^ block[i]);
            }
            // 128-bit big-endian increment with wraparound.
            for b in counter.iter_mut().rev() {
                let (v, overflow) = b.overflowing_add(1);
                *b = v;
                if !overflow {
                    break;
                }
            }
        }
        out
    }

    /// Encrypts `plaintext` in ECB mode with PKCS#7 padding.
    ///
    /// ECB leaks plaintext structure; it is provided for test vectors and as
    /// the building block of the other modes, not for protecting real data.
    pub fn encrypt_ecb(&self, plaintext: &[u8]) -> Vec<u8> {
        let padded = pkcs7_pad(plaintext);
        let mut out = Vec::with_capacity(padded.len());
        for chunk in padded.chunks_exact(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            self.encrypt_block(&mut block);
            out.extend_from_slice(&block);
        }
        out
    }

    /// Decrypts ECB ciphertext and strips PKCS#7 padding.
    ///
    /// # Errors
    ///
    /// Same conditions as [`decrypt_cbc`](Self::decrypt_cbc).
    pub fn decrypt_ecb(&self, ciphertext: &[u8]) -> Result<Vec<u8>, AesError> {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
            return Err(AesError::BadCiphertextLen(ciphertext.len()));
        }
        let mut out = Vec::with_capacity(ciphertext.len());
        for chunk in ciphertext.chunks_exact(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            self.decrypt_block(&mut block);
            out.extend_from_slice(&block);
        }
        pkcs7_unpad(&mut out)?;
        Ok(out)
    }
}

fn add_round_key(block: &mut [u8; BLOCK_LEN], rk: &[u8; BLOCK_LEN]) {
    for i in 0..BLOCK_LEN {
        block[i] ^= rk[i];
    }
}

/// State is column-major: byte `r + 4c` of the block is row `r`, column `c`.
fn shift_rows(block: &mut [u8; BLOCK_LEN]) {
    for r in 1..4 {
        let mut row = [0u8; 4];
        for c in 0..4 {
            row[c] = block[r + 4 * c];
        }
        row.rotate_left(r);
        for c in 0..4 {
            block[r + 4 * c] = row[c];
        }
    }
}

fn inv_shift_rows(block: &mut [u8; BLOCK_LEN]) {
    for r in 1..4 {
        let mut row = [0u8; 4];
        for c in 0..4 {
            row[c] = block[r + 4 * c];
        }
        row.rotate_right(r);
        for c in 0..4 {
            block[r + 4 * c] = row[c];
        }
    }
}

fn mix_columns(block: &mut [u8; BLOCK_LEN]) {
    for c in 0..4 {
        let col = [block[4 * c], block[4 * c + 1], block[4 * c + 2], block[4 * c + 3]];
        block[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        block[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        block[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        block[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(block: &mut [u8; BLOCK_LEN]) {
    for c in 0..4 {
        let col = [block[4 * c], block[4 * c + 1], block[4 * c + 2], block[4 * c + 3]];
        block[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        block[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        block[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        block[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

/// Appends PKCS#7 padding, always adding at least one byte.
pub fn pkcs7_pad(data: &[u8]) -> Vec<u8> {
    let pad = BLOCK_LEN - data.len() % BLOCK_LEN;
    let mut out = Vec::with_capacity(data.len() + pad);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

/// Strips PKCS#7 padding in place.
///
/// # Errors
///
/// Returns [`AesError::BadPadding`] if the final byte is not in `1..=16` or
/// the padding bytes disagree.
pub fn pkcs7_unpad(data: &mut Vec<u8>) -> Result<(), AesError> {
    let &last = data.last().ok_or(AesError::BadPadding)?;
    let pad = last as usize;
    if pad == 0 || pad > BLOCK_LEN || pad > data.len() {
        return Err(AesError::BadPadding);
    }
    if data[data.len() - pad..].iter().any(|&b| b != last) {
        return Err(AesError::BadPadding);
    }
    data.truncate(data.len() - pad);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::from_hex;

    fn block(hex: &str) -> [u8; 16] {
        let v = from_hex(hex).unwrap();
        let mut b = [0u8; 16];
        b.copy_from_slice(&v);
        b
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1
        let key = AesKey::Aes128(block("000102030405060708090a0b0c0d0e0f"));
        let aes = Aes::new(&key);
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut b);
        assert_eq!(b, block("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes192_vector() {
        // FIPS-197 Appendix C.2
        let key =
            AesKey::from_bytes(&from_hex("000102030405060708090a0b0c0d0e0f1011121314151617").unwrap())
                .unwrap();
        let aes = Aes::new(&key);
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("dda97ca4864cdfe06eaf70a0ec0d7191"));
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3
        let key = AesKey::from_bytes(
            &from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f").unwrap(),
        )
        .unwrap();
        let aes = Aes::new(&key);
        let mut b = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut b);
        assert_eq!(b, block("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut b);
        assert_eq!(b, block("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn nist_sp800_38a_cbc_aes128() {
        // NIST SP 800-38A F.2.1 (first block)
        let key = AesKey::Aes128(block("2b7e151628aed2a6abf7158809cf4f3c"));
        let aes = Aes::new(&key);
        let iv = block("000102030405060708090a0b0c0d0e0f");
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let ct = aes.encrypt_cbc(&pt, &iv);
        assert_eq!(&ct[..16], &from_hex("7649abac8119b246cee98e9b12e9197d").unwrap()[..]);
    }

    #[test]
    fn nist_sp800_38a_ctr_aes128() {
        // NIST SP 800-38A F.5.1: CTR with full 128-bit counter. Our CTR
        // xors a 32-bit counter into the low bytes, which coincides with the
        // NIST counter layout for the first 2^32 blocks.
        let key = AesKey::Aes128(block("2b7e151628aed2a6abf7158809cf4f3c"));
        let aes = Aes::new(&key);
        let nonce = block("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51").unwrap();
        let ct = aes.apply_ctr(&pt, &nonce);
        let expect =
            from_hex("874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff").unwrap();
        assert_eq!(ct, expect);
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let key = AesKey::Aes256([0x42; 32]);
        let aes = Aes::new(&key);
        let iv = [9u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ct = aes.encrypt_cbc(&pt, &iv);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len(), "padding always expands");
            assert_eq!(aes.decrypt_cbc(&ct, &iv).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn ctr_roundtrip_and_symmetry() {
        let key = AesKey::Aes128([1; 16]);
        let aes = Aes::new(&key);
        let nonce = [3u8; 16];
        let pt = b"counter mode is an involution".to_vec();
        let ct = aes.apply_ctr(&pt, &nonce);
        assert_ne!(ct, pt);
        assert_eq!(aes.apply_ctr(&ct, &nonce), pt);
    }

    #[test]
    fn ecb_roundtrip() {
        let key = AesKey::Aes192([5; 24]);
        let aes = Aes::new(&key);
        let pt = b"electronic codebook".to_vec();
        let ct = aes.encrypt_ecb(&pt);
        assert_eq!(aes.decrypt_ecb(&ct).unwrap(), pt);
    }

    #[test]
    fn wrong_key_fails_padding_or_differs() {
        let aes1 = Aes::new(&AesKey::Aes128([1; 16]));
        let aes2 = Aes::new(&AesKey::Aes128([2; 16]));
        let iv = [0u8; 16];
        let ct = aes1.encrypt_cbc(b"some secret data here", &iv);
        match aes2.decrypt_cbc(&ct, &iv) {
            Err(AesError::BadPadding) => {}
            Ok(pt) => assert_ne!(pt, b"some secret data here".to_vec()),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn bad_ciphertext_length_rejected() {
        let aes = Aes::new(&AesKey::Aes128([0; 16]));
        let iv = [0u8; 16];
        assert_eq!(aes.decrypt_cbc(&[], &iv), Err(AesError::BadCiphertextLen(0)));
        assert_eq!(
            aes.decrypt_cbc(&[1, 2, 3], &iv),
            Err(AesError::BadCiphertextLen(3))
        );
    }

    #[test]
    fn pkcs7_edge_cases() {
        let mut v = vec![16u8; 16];
        pkcs7_unpad(&mut v).unwrap();
        assert!(v.is_empty());

        let mut bad = vec![0u8; 16];
        assert_eq!(pkcs7_unpad(&mut bad), Err(AesError::BadPadding));

        let mut bad2 = vec![1u8, 2, 3, 5, 4]; // last byte says 4 but bytes disagree
        assert_eq!(pkcs7_unpad(&mut bad2), Err(AesError::BadPadding));
    }

    #[test]
    fn key_from_bytes_validates_length() {
        assert!(AesKey::from_bytes(&[0; 16]).is_ok());
        assert!(AesKey::from_bytes(&[0; 24]).is_ok());
        assert!(AesKey::from_bytes(&[0; 32]).is_ok());
        assert_eq!(AesKey::from_bytes(&[0; 17]), Err(AesError::BadKeyLen(17)));
    }

    #[test]
    fn debug_never_prints_key_material() {
        let key = AesKey::Aes128([0xAB; 16]);
        let s = format!("{key:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains("171")); // 0xAB
    }

    #[test]
    fn distinct_ivs_produce_distinct_ciphertexts() {
        let aes = Aes::new(&AesKey::Aes128([7; 16]));
        let ct1 = aes.encrypt_cbc(b"same plaintext", &[0u8; 16]);
        let ct2 = aes.encrypt_cbc(b"same plaintext", &[1u8; 16]);
        assert_ne!(ct1, ct2);
    }
}
