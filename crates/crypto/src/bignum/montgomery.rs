//! Montgomery-form modular arithmetic (CIOS) for odd moduli.
//!
//! The naive [`modpow`](super::BigUint::modpow) pays a full Knuth
//! Algorithm-D division after *every* multiply. Montgomery multiplication
//! replaces that division with limb-wise reductions against a precomputed
//! constant: a [`MontgomeryCtx`] derives `n' = -n⁻¹ mod 2⁶⁴` and
//! `R² mod n` (with `R = 2⁶⁴ˢ` for an `s`-limb modulus) once per modulus,
//! and every subsequent product costs one CIOS pass — two schoolbook-sized
//! limb loops, no quotient estimation, no normalization shifts.
//!
//! Exponentiation uses a fixed 4-bit window: one squaring per exponent bit
//! plus at most one table multiply per four bits, against the naive
//! square-and-multiply's expected one multiply per two bits — and each of
//! those operations is itself division-free.
//!
//! Every protocol step of B-IoT funnels through RSA (signed transactions,
//! the Eqn 1 authorization list, the Fig 4 handshake), so this layer is
//! the difference between admission keeping up with the workload
//! generators or not. The naive path survives as
//! [`modpow_naive`](super::BigUint::modpow_naive), the correctness oracle
//! the property tests compare against exactly.
//!
//! # Examples
//!
//! ```
//! use biot_crypto::bignum::{BigUint, MontgomeryCtx};
//!
//! let n = BigUint::from_u64(1_000_003); // odd modulus
//! let ctx = MontgomeryCtx::new(n).expect("odd modulus > 1");
//! let r = ctx.modpow(&BigUint::from_u64(2), &BigUint::from_u64(20));
//! assert_eq!(r, BigUint::from_u64(1 << 20).rem(ctx.modulus()));
//! ```

use super::BigUint;

/// Exponent window width in bits (table of `2⁴` powers).
const WINDOW_BITS: usize = 4;

/// A residue in Montgomery form: exactly `s` little-endian limbs holding
/// `x·R mod n`. Only meaningful with the [`MontgomeryCtx`] that produced
/// it; mixing contexts is a logic error the type does not police.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontElem {
    limbs: Vec<u64>,
}

/// Precomputed per-modulus state for Montgomery arithmetic.
///
/// Valid for any odd modulus `n > 1`. Construction costs one big division
/// (for `R² mod n`); every [`mul`](Self::mul) afterwards is division-free.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus as a `BigUint` (for `rem` on conversion).
    n: BigUint,
    /// The modulus padded to exactly `s` limbs.
    n_limbs: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴` — the per-limb reduction constant.
    n0_inv: u64,
    /// `R² mod n`, the conversion multiplier, padded to `s` limbs.
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery form of 1.
    one: MontElem,
}

impl MontgomeryCtx {
    /// Builds a context for `modulus`, or `None` when the modulus is even
    /// or ≤ 1 (Montgomery reduction requires `gcd(n, 2⁶⁴) = 1`).
    pub fn new(modulus: BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() {
            return None;
        }
        let s = modulus.limbs().len();
        let mut n_limbs = modulus.limbs().to_vec();
        n_limbs.resize(s, 0);

        // Newton–Hensel: each step doubles the valid low bits of the
        // inverse; n₀ is its own inverse mod 8, so five steps reach 96.
        let n0 = n_limbs[0];
        let mut inv = n0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        let r2_value = (&BigUint::one() << (128 * s)).rem(&modulus);
        let r2 = pad_limbs(&r2_value, s);
        let one_value = (&BigUint::one() << (64 * s)).rem(&modulus);
        let one = MontElem {
            limbs: pad_limbs(&one_value, s),
        };
        Some(Self {
            n: modulus,
            n_limbs,
            n0_inv,
            r2,
            one,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The Montgomery form of 1 (`R mod n`).
    pub fn one(&self) -> MontElem {
        self.one.clone()
    }

    /// Converts a value into Montgomery form (reducing mod `n` first).
    pub fn convert(&self, x: &BigUint) -> MontElem {
        let reduced = pad_limbs(&x.rem(&self.n), self.n_limbs.len());
        MontElem {
            limbs: self.mont_mul(&reduced, &self.r2),
        }
    }

    /// Converts a Montgomery-form value back to the ordinary domain.
    pub fn retrieve(&self, x: &MontElem) -> BigUint {
        let mut one = vec![0u64; self.n_limbs.len()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(&x.limbs, &one))
    }

    /// Montgomery product: `a·b·R⁻¹ mod n`.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        MontElem {
            limbs: self.mont_mul(&a.limbs, &b.limbs),
        }
    }

    /// Raises a Montgomery-form base to `exp` with a fixed 4-bit window.
    pub fn pow(&self, base: &MontElem, exp: &BigUint) -> MontElem {
        let bits = exp.bits();
        if bits == 0 {
            return self.one();
        }
        // table[i] = baseⁱ (Montgomery form), i ∈ [0, 16).
        let mut table = Vec::with_capacity(1 << WINDOW_BITS);
        table.push(self.one());
        for i in 1..1 << WINDOW_BITS {
            table.push(self.mul(&table[i - 1], base));
        }
        let nibble = |w: usize| {
            let mut v = 0usize;
            for b in 0..WINDOW_BITS {
                if exp.bit(w * WINDOW_BITS + b) {
                    v |= 1 << b;
                }
            }
            v
        };
        // The top window is non-zero because `bits > 0`.
        let top = (bits - 1) / WINDOW_BITS;
        let mut acc = table[nibble(top)].clone();
        for w in (0..top).rev() {
            for _ in 0..WINDOW_BITS {
                acc = self.mul(&acc, &acc);
            }
            let d = nibble(w);
            if d != 0 {
                acc = self.mul(&acc, &table[d]);
            }
        }
        acc
    }

    /// Computes `base^exp mod n` end to end (convert → pow → retrieve).
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.retrieve(&self.pow(&self.convert(base), exp))
    }

    /// One CIOS (coarsely integrated operand scanning) pass:
    /// interleaves the multiplication `a·b` with per-limb reduction by
    /// `m·n` where `m = t₀·n' mod 2⁶⁴`, so the running total stays at
    /// `s + 1` limbs and the final result is `a·b·R⁻¹ mod n`.
    ///
    /// Inputs must be `s` limbs and `< n`; the output satisfies the same.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.n_limbs.len();
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        let mut t = vec![0u64; s + 2];
        for &bi in b.iter().take(s) {
            // t += a · bᵢ
            let mut carry = 0u64;
            for j in 0..s {
                let cur = t[j] as u128 + a[j] as u128 * bi as u128 + carry as u128;
                t[j] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let cur = t[s] as u128 + carry as u128;
            t[s] = cur as u64;
            t[s + 1] = (cur >> 64) as u64;
            // t = (t + m·n) / 2⁶⁴ — the division is exact by choice of m.
            let m = t[0].wrapping_mul(self.n0_inv);
            let cur = t[0] as u128 + m as u128 * self.n_limbs[0] as u128;
            debug_assert_eq!(cur as u64, 0);
            let mut carry = (cur >> 64) as u64;
            for j in 1..s {
                let cur = t[j] as u128 + m as u128 * self.n_limbs[j] as u128 + carry as u128;
                t[j - 1] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let cur = t[s] as u128 + carry as u128;
            t[s - 1] = cur as u64;
            t[s] = t[s + 1] + (cur >> 64) as u64;
            t[s + 1] = 0;
        }
        // Result < 2n: one conditional subtraction normalizes it.
        if t[s] != 0 || ge_limbs(&t[..s], &self.n_limbs) {
            let mut borrow = 0u64;
            for (tj, &nj) in t.iter_mut().zip(&self.n_limbs) {
                let (d1, b1) = tj.overflowing_sub(nj);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *tj = d2;
                borrow = (b1 | b2) as u64;
            }
            debug_assert_eq!(t[s], borrow, "subtraction must consume the overflow");
        }
        t.truncate(s);
        t
    }
}

/// Pads a value's limbs to exactly `s` entries (value must fit).
fn pad_limbs(x: &BigUint, s: usize) -> Vec<u64> {
    let mut limbs = x.limbs().to_vec();
    debug_assert!(limbs.len() <= s);
    limbs.resize(s, 0);
    limbs
}

/// Compares equal-length little-endian limb slices: `a >= b`.
fn ge_limbs(a: &[u64], b: &[u64]) -> bool {
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::super::BigUint;
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn odd_biguint(bytes: &[u8]) -> BigUint {
        let mut n = BigUint::from_bytes_be(bytes);
        n.set_bit(0);
        if n.is_one() {
            n = BigUint::from_u64(3);
        }
        n
    }

    #[test]
    fn rejects_even_and_degenerate_moduli() {
        assert!(MontgomeryCtx::new(BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(BigUint::from_u64(10)).is_none());
        assert!(MontgomeryCtx::new(BigUint::from_u64(3)).is_some());
    }

    #[test]
    fn convert_retrieve_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [8usize, 64, 65, 128, 512] {
            let n = {
                let mut n = BigUint::random_bits(&mut rng, bits);
                n.set_bit(0);
                n
            };
            let ctx = MontgomeryCtx::new(n.clone()).unwrap();
            for _ in 0..10 {
                let x = BigUint::random_below(&mut rng, &n);
                assert_eq!(ctx.retrieve(&ctx.convert(&x)), x, "bits {bits}");
            }
        }
    }

    #[test]
    fn mul_matches_plain_modmul() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [64usize, 127, 256, 512] {
            let mut n = BigUint::random_bits(&mut rng, bits);
            n.set_bit(0);
            let ctx = MontgomeryCtx::new(n.clone()).unwrap();
            for _ in 0..10 {
                let a = BigUint::random_below(&mut rng, &n);
                let b = BigUint::random_below(&mut rng, &n);
                let got = ctx.retrieve(&ctx.mul(&ctx.convert(&a), &ctx.convert(&b)));
                assert_eq!(got, (&a * &b).rem(&n), "bits {bits}");
            }
        }
    }

    #[test]
    fn modpow_edge_cases() {
        let n = BigUint::from_u64(101);
        let ctx = MontgomeryCtx::new(n.clone()).unwrap();
        // exp = 0 → 1
        assert!(ctx.modpow(&BigUint::from_u64(7), &BigUint::zero()).is_one());
        // exp = 1 → base mod n (base ≥ n reduced)
        assert_eq!(
            ctx.modpow(&BigUint::from_u64(1000), &BigUint::one()),
            BigUint::from_u64(1000 % 101)
        );
        // base = 0 → 0 for positive exponents
        assert!(ctx.modpow(&BigUint::zero(), &BigUint::from_u64(5)).is_zero());
        // base = n → 0
        assert!(ctx.modpow(&n, &BigUint::from_u64(3)).is_zero());
    }

    #[test]
    fn fermat_on_mersenne_prime() {
        // p = 2^127 - 1; a^(p-1) ≡ 1 (mod p).
        let p = &(&BigUint::one() << 127) - &BigUint::one();
        let ctx = MontgomeryCtx::new(p.clone()).unwrap();
        let pm1 = &p - &BigUint::one();
        for a in [2u64, 3, 65537, 0xDEAD_BEEF] {
            assert!(ctx.modpow(&BigUint::from_u64(a), &pm1).is_one(), "a = {a}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tentpole's correctness claim: the Montgomery path is
        /// *exactly* the naive square-and-multiply oracle, over random
        /// base/exponent and random odd moduli of mixed widths.
        #[test]
        fn prop_modpow_montgomery_equals_naive(
            base_bytes in proptest::collection::vec(any::<u8>(), 0..80),
            exp_bytes in proptest::collection::vec(any::<u8>(), 0..24),
            mod_bytes in proptest::collection::vec(any::<u8>(), 1..80),
        ) {
            let base = BigUint::from_bytes_be(&base_bytes);
            let exp = BigUint::from_bytes_be(&exp_bytes);
            let n = odd_biguint(&mod_bytes);
            let ctx = MontgomeryCtx::new(n.clone()).unwrap();
            prop_assert_eq!(ctx.modpow(&base, &exp), base.modpow_naive(&exp, &n));
        }

        /// RSA-sized: 512-bit odd moduli, full-width exponents.
        #[test]
        fn prop_modpow_matches_naive_at_rsa_width(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut n = BigUint::random_bits(&mut rng, 512);
            n.set_bit(0);
            let base = BigUint::random_bits(&mut rng, 512); // may exceed n
            let exp = BigUint::random_bits(&mut rng, 512);
            let ctx = MontgomeryCtx::new(n.clone()).unwrap();
            prop_assert_eq!(ctx.modpow(&base, &exp), base.modpow_naive(&exp, &n));
        }

        /// The public dispatcher agrees with the oracle for *any* modulus,
        /// odd (Montgomery path) or even (naive fallback).
        #[test]
        fn prop_dispatched_modpow_equals_naive(
            base in any::<u64>(),
            exp in any::<u64>(),
            modulus in 1u64..u64::MAX,
        ) {
            let b = BigUint::from_u64(base);
            let e = BigUint::from_u64(exp);
            let m = BigUint::from_u64(modulus);
            prop_assert_eq!(b.modpow(&e, &m), b.modpow_naive(&e, &m));
        }
    }
}
