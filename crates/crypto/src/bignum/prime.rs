//! Probabilistic primality testing and prime generation.

use super::montgomery::MontgomeryCtx;
use super::BigUint;
use rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199,
];

/// Tests `n` for primality with trial division plus `rounds` rounds of
/// Miller–Rabin with random bases.
///
/// A composite survives with probability at most `4^-rounds`; 20 rounds is
/// plenty for key generation.
///
/// # Examples
///
/// ```
/// use biot_crypto::bignum::{is_probable_prime, BigUint};
/// let mut rng = rand::thread_rng();
/// assert!(is_probable_prime(&BigUint::from_u64(65537), 20, &mut rng));
/// assert!(!is_probable_prime(&BigUint::from_u64(65539 * 3), 20, &mut rng));
/// ```
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let bp = BigUint::from_u64(p);
        if *n == bp {
            return true;
        }
        if n.rem(&bp).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = &d >> 1;
        s += 1;
    }
    let two = BigUint::from_u64(2);
    let bound = n_minus_1.checked_sub(&two).map(|b| &b + &one);
    // One Montgomery context shared by all witness rounds: n is odd and > 2
    // after trial division, and every squaring below stays division-free.
    // Conversion to Montgomery form is a bijection, so comparing against
    // the converted 1 and n-1 is exact.
    let ctx = MontgomeryCtx::new(n.clone()).expect("odd n > 2 after trial division");
    let one_m = ctx.one();
    let minus_one_m = ctx.convert(&n_minus_1);
    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let a = match &bound {
            Some(b) if !b.is_zero() => &BigUint::random_below(rng, b) + &two,
            _ => two.clone(),
        };
        let mut x = ctx.pow(&ctx.convert(&a), &d);
        if x == one_m || x == minus_one_m {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.mul(&x, &x);
            if x == minus_one_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The returned value has its top bit set (so products of two such primes
/// have predictable width) and is odd.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "cannot generate a prime under 2 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        candidate.set_bit(0); // force odd
        if is_probable_prime(&candidate, 20, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_and_composites() {
        let mut rng = StdRng::seed_from_u64(3);
        for p in [2u64, 3, 5, 7, 97, 101, 65537, 2_147_483_647] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 20, &mut rng),
                "{p} should be prime"
            );
        }
        for c in [0u64, 1, 4, 6, 9, 100, 65536, 2_147_483_649] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 20, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        let mut rng = StdRng::seed_from_u64(4);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 20, &mut rng),
                "Carmichael {c} should be rejected"
            );
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut rng = StdRng::seed_from_u64(5);
        let p = &(&BigUint::one() << 127) - &BigUint::one();
        assert!(is_probable_prime(&p, 16, &mut rng));
        // 2^128 - 1 is composite.
        let c = &(&BigUint::one() << 128) - &BigUint::one();
        assert!(!is_probable_prime(&c, 16, &mut rng));
    }

    #[test]
    fn gen_prime_has_requested_width_and_is_odd() {
        let mut rng = StdRng::seed_from_u64(6);
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(!p.is_even());
            assert!(is_probable_prime(&p, 20, &mut rng));
        }
    }

    #[test]
    fn product_of_generated_primes_is_composite() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = gen_prime(48, &mut rng);
        let q = gen_prime(48, &mut rng);
        assert!(!is_probable_prime(&(&p * &q), 20, &mut rng));
    }
}
