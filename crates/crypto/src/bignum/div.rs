//! Multi-precision division (Knuth TAOCP vol. 2, Algorithm 4.3.1 D).

use super::BigUint;

/// Divides `dividend` by `divisor`, returning `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if `divisor` is zero.
pub(super) fn div_rem(dividend: &BigUint, divisor: &BigUint) -> (BigUint, BigUint) {
    assert!(!divisor.is_zero(), "division by zero BigUint");
    if dividend < divisor {
        return (BigUint::zero(), dividend.clone());
    }
    if divisor.limbs().len() == 1 {
        let (q, r) = div_rem_small(dividend, divisor.limbs()[0]);
        return (q, BigUint::from_u64(r));
    }
    div_rem_knuth(dividend, divisor)
}

/// Fast path: divide by a single limb.
fn div_rem_small(dividend: &BigUint, divisor: u64) -> (BigUint, u64) {
    let mut quotient = vec![0u64; dividend.limbs().len()];
    let mut rem = 0u128;
    for (i, &limb) in dividend.limbs().iter().enumerate().rev() {
        let acc = (rem << 64) | limb as u128;
        quotient[i] = (acc / divisor as u128) as u64;
        rem = acc % divisor as u128;
    }
    (BigUint::from_limbs(quotient), rem as u64)
}

/// General case: Knuth Algorithm D with 64-bit limbs.
fn div_rem_knuth(dividend: &BigUint, divisor: &BigUint) -> (BigUint, BigUint) {
    let n = divisor.limbs().len();
    let m = dividend.limbs().len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = divisor.limbs()[n - 1].leading_zeros() as usize;
    let v = (divisor << shift).limbs().to_vec();
    let mut u = (dividend << shift).limbs().to_vec();
    u.resize(dividend.limbs().len() + 1, 0); // extra high limb u[m+n]

    let mut q = vec![0u64; m + 1];
    let v_top = v[n - 1];
    let v_next = v[n - 2];

    // D2..D7: main loop over quotient digits.
    for j in (0..=m).rev() {
        // D3: estimate q_hat from the top two dividend limbs.
        let numerator = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut q_hat = numerator / v_top as u128;
        let mut r_hat = numerator % v_top as u128;
        // Refine: q_hat is at most 2 too large.
        while q_hat >> 64 != 0
            || q_hat * v_next as u128 > ((r_hat << 64) | u[j + n - 2] as u128)
        {
            q_hat -= 1;
            r_hat += v_top as u128;
            if r_hat >> 64 != 0 {
                break;
            }
        }

        // D4: multiply-and-subtract u[j..j+n] -= q_hat * v.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = q_hat * v[i] as u128 + carry;
            carry = p >> 64;
            let sub = u[j + i] as i128 - (p as u64) as i128 + borrow;
            u[j + i] = sub as u64;
            borrow = sub >> 64;
        }
        let sub = u[j + n] as i128 - carry as i128 + borrow;
        u[j + n] = sub as u64;
        borrow = sub >> 64;

        // D5/D6: if we subtracted too much, add back one divisor.
        if borrow < 0 {
            q_hat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let sum = u[j + i] as u128 + v[i] as u128 + carry;
                u[j + i] = sum as u64;
                carry = sum >> 64;
            }
            u[j + n] = u[j + n].wrapping_add(carry as u64);
        }

        q[j] = q_hat as u64;
    }

    // D8: denormalize the remainder.
    let remainder = &BigUint::from_limbs(u[..n].to_vec()) >> shift;
    (BigUint::from_limbs(q), remainder)
}

#[cfg(test)]
mod tests {
    use super::super::BigUint;
    use proptest::prelude::*;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn divide_by_larger_gives_zero_quotient() {
        let (q, r) = big("5").div_rem(&big("100"));
        assert!(q.is_zero());
        assert_eq!(r, big("5"));
    }

    #[test]
    fn exact_division() {
        let a = big("123456789abcdef0");
        let b = big("10");
        let (q, r) = (&a * &b).div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    fn single_limb_divisor() {
        let (q, r) = big("ffffffffffffffffffffffffffffffff").div_rem(&big("3"));
        assert_eq!(&(&q * &big("3")) + &r, big("ffffffffffffffffffffffffffffffff"));
        assert!(r < big("3"));
    }

    #[test]
    fn multi_limb_known_quotient() {
        // 2^192 / (2^64 + 1) — exercises the q_hat refinement.
        let a = &BigUint::one() << 192;
        let b = &(&BigUint::one() << 64) + &BigUint::one();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn knuth_add_back_case() {
        // Constructed so that the initial q_hat over-estimates and the
        // add-back branch (D6) executes: dividend top limbs equal divisor's.
        let a = big("80000000000000000000000000000000fffffffffffffffe");
        let b = big("800000000000000000000000000000ff");
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn prop_div_rem_identity(
            a in proptest::collection::vec(any::<u8>(), 1..48),
            b in proptest::collection::vec(any::<u8>(), 1..24),
        ) {
            let dividend = BigUint::from_bytes_be(&a);
            let divisor = BigUint::from_bytes_be(&b);
            prop_assume!(!divisor.is_zero());
            let (q, r) = dividend.div_rem(&divisor);
            prop_assert!(r < divisor);
            prop_assert_eq!(&(&q * &divisor) + &r, dividend);
        }
    }
}
