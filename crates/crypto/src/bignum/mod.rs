//! Arbitrary-precision unsigned integer arithmetic, implemented from
//! scratch on `u64` limbs.
//!
//! [`BigUint`] supports the operations needed by the RSA module: addition,
//! subtraction, multiplication (schoolbook), Knuth Algorithm-D division,
//! modular exponentiation, extended GCD / modular inverse, and Miller–Rabin
//! primality testing.
//!
//! # Examples
//!
//! ```
//! use biot_crypto::bignum::BigUint;
//!
//! let a = BigUint::from_u64(1 << 40);
//! let b = BigUint::from_u64(3);
//! let (q, r) = (&a * &b).div_rem(&a);
//! assert_eq!(q, b);
//! assert!(r.is_zero());
//! ```

mod div;
mod modular;
mod montgomery;
mod prime;

pub use montgomery::{MontElem, MontgomeryCtx};
pub use prime::{gen_prime, is_probable_prime};

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Shl, Shr, Sub};

/// An arbitrary-precision unsigned integer.
///
/// Limbs are stored little-endian (least-significant limb first) with no
/// trailing zero limbs; zero is the empty limb vector. This normalization is
/// an invariant maintained by every constructor and operation.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalized (no trailing zeros).
    limbs: Vec<u64>,
}

impl BigUint {
    /// Returns zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// Returns one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to big-endian bytes without leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let bytes = self.to_bytes_be();
        assert!(
            bytes.len() <= len,
            "value needs {} bytes, buffer is {len}",
            bytes.len()
        );
        let mut out = vec![0u8; len - bytes.len()];
        out.extend_from_slice(&bytes);
        out
    }

    /// Parses a hexadecimal string (no prefix).
    ///
    /// Returns `None` on any non-hex character.
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut value = BigUint::zero();
        for ch in s.chars() {
            let digit = ch.to_digit(16)? as u64;
            value = &(&value << 4) + &BigUint::from_u64(digit);
        }
        Some(value)
    }

    /// Formats as lowercase hexadecimal (no prefix, `"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns true if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns true if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (counting from the least-significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            None => false,
            Some(l) => (l >> (i % 64)) & 1 == 1,
        }
    }

    /// Sets bit `i` to one.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    /// Returns the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Borrows the little-endian limbs.
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut v = BigUint { limbs };
        v.normalize();
        v
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Checked subtraction: `self - rhs`, or `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self < rhs {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 | b2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Divides by `divisor`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        div::div_rem(self, divisor)
    }

    /// Computes `self mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Computes `self^exp mod modulus`.
    ///
    /// Odd moduli take the Montgomery fast path ([`MontgomeryCtx`]); even
    /// moduli fall back to [`modpow_naive`](Self::modpow_naive). Callers
    /// doing repeated exponentiations under one odd modulus should build a
    /// [`MontgomeryCtx`] once and reuse it.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        modular::modpow(self, exp, modulus)
    }

    /// Computes `self^exp mod modulus` by plain square-and-multiply with a
    /// full division per step — the correctness oracle for the Montgomery
    /// path. Prefer [`modpow`](Self::modpow) everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow_naive(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        modular::modpow_naive(self, exp, modulus)
    }

    /// Computes the greatest common divisor.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        modular::gcd(self, other)
    }

    /// Computes the modular inverse of `self` modulo `modulus`, if coprime.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        modular::modinv(self, modulus)
    }

    /// Samples a uniform value in `[0, bound)` using `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: rand::Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bits();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        // Rejection sampling: each iteration succeeds with probability > 1/2.
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            if let Some(top) = v.last_mut() {
                *top &= top_mask;
            }
            let candidate = BigUint::from_limbs(v);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Samples a uniform value with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn random_bits<R: rand::Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0, "bits must be positive");
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        let top_mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        let last = limbs - 1;
        v[last] &= top_mask;
        v[last] |= 1 << (top_bits - 1);
        BigUint::from_limbs(v)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &BigUint {
    type Output = BigUint;

    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let s = short.limbs.get(i).copied().unwrap_or(0);
            let (v1, c1) = long.limbs[i].overflowing_add(s);
            let (v2, c2) = v1.overflowing_add(carry);
            out.push(v2);
            carry = (c1 | c2) as u64;
        }
        if carry > 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }
}

impl Sub for &BigUint {
    type Output = BigUint;

    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle that case.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

/// Operand size (in limbs) above which multiplication switches from the
/// schoolbook algorithm to Karatsuba. Below this the recursion overhead
/// dominates; 32 limbs = 2048 bits, the region where RSA-4096 squarings
/// start to matter.
const KARATSUBA_THRESHOLD: usize = 32;

/// Schoolbook O(n·m) multiplication.
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + x as u128 * y as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba O(n^1.585) multiplication, recursing until operands fall
/// under [`KARATSUBA_THRESHOLD`].
fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    // Split at half of the shorter operand, so both halves are non-empty.
    let half = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(half); // a = a0 + a1·2^(64·half)
    let (b0, b1) = b.split_at(half);
    let a0 = BigUint::from_limbs(a0.to_vec());
    let a1 = BigUint::from_limbs(a1.to_vec());
    let b0 = BigUint::from_limbs(b0.to_vec());
    let b1 = BigUint::from_limbs(b1.to_vec());

    let z0 = BigUint::from_limbs(mul_karatsuba(a0.limbs(), b0.limbs()));
    let z2 = BigUint::from_limbs(mul_karatsuba(a1.limbs(), b1.limbs()));
    let sa = &a0 + &a1;
    let sb = &b0 + &b1;
    let z1_full = BigUint::from_limbs(mul_karatsuba(sa.limbs(), sb.limbs()));
    // z1 = (a0+a1)(b0+b1) − z0 − z2 ≥ 0.
    let z1 = &(&z1_full - &z0) - &z2;

    // result = z0 + z1·2^(64·half) + z2·2^(128·half)
    let shifted_z1 = &z1 << (64 * half);
    let shifted_z2 = &z2 << (128 * half);
    let sum = &(&z0 + &shifted_z1) + &shifted_z2;
    sum.limbs().to_vec()
}

impl Mul for &BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let out = if self.limbs.len() >= KARATSUBA_THRESHOLD
            && rhs.limbs.len() >= KARATSUBA_THRESHOLD
        {
            mul_karatsuba(&self.limbs, &rhs.limbs)
        } else {
            mul_schoolbook(&self.limbs, &rhs.limbs)
        };
        BigUint::from_limbs(out)
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;

    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;

    fn shr(self, shift: usize) -> BigUint {
        let limb_shift = shift / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = shift % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let v = big("0102030405060708090a0b0c0d0e0f10ff");
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(v.to_bytes_be().len(), 17);
        // leading zeros stripped
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 1]).to_bytes_be(), vec![1]);
        assert!(BigUint::from_bytes_be(&[]).is_zero());
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0x0102);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn padded_bytes_too_small_panics() {
        BigUint::from_u64(0x010203).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        for h in ["1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"] {
            let v = big(h);
            assert_eq!(v.to_hex(), h, "hex {h}");
        }
        assert_eq!(BigUint::zero().to_hex(), "0");
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = big("ffffffffffffffffffffffffffffffff");
        let one = BigUint::one();
        let sum = &a + &one;
        assert_eq!(sum, big("100000000000000000000000000000000"));
    }

    #[test]
    fn subtraction_with_borrow_chain() {
        let a = big("100000000000000000000000000000000");
        let one = BigUint::one();
        assert_eq!(&a - &one, big("ffffffffffffffffffffffffffffffff"));
        assert!(one.checked_sub(&a).is_none());
    }

    #[test]
    #[should_panic]
    fn subtraction_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from_u64(2);
    }

    #[test]
    fn multiplication_known_product() {
        let a = big("fedcba9876543210");
        let b = big("123456789abcdef");
        assert_eq!((&a * &b).to_hex(), "121fa00ad77d7422236d88fe5618cf0");
    }

    #[test]
    fn shifts() {
        let v = big("1");
        assert_eq!((&v << 64).to_hex(), "10000000000000000");
        assert_eq!((&v << 65).to_hex(), "20000000000000000");
        let w = big("deadbeef00000000");
        assert_eq!((&w >> 32).to_hex(), "deadbeef");
        assert!((&w >> 64).is_zero());
        assert!((&w >> 200).is_zero());
    }

    #[test]
    fn bit_accessors() {
        let mut v = BigUint::zero();
        v.set_bit(0);
        v.set_bit(100);
        assert!(v.bit(0));
        assert!(v.bit(100));
        assert!(!v.bit(50));
        assert_eq!(v.bits(), 101);
    }

    #[test]
    fn ordering() {
        assert!(big("ff") < big("100"));
        assert!(big("10000000000000000") > big("ffffffffffffffff"));
        assert_eq!(big("ab").cmp(&big("ab")), std::cmp::Ordering::Equal);
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let bound = big("1000");
        for _ in 0..200 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [1usize, 2, 63, 64, 65, 128, 512] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits, "bits {bits}");
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook_on_large_operands() {
        let mut rng = StdRng::seed_from_u64(77);
        for (bits_a, bits_b) in [(2048, 2048), (4096, 2048), (3000, 5000), (2048, 64)] {
            let a = BigUint::random_bits(&mut rng, bits_a);
            let b = BigUint::random_bits(&mut rng, bits_b);
            let fast = &a * &b;
            let slow = BigUint::from_limbs(super::mul_schoolbook(a.limbs(), b.limbs()));
            assert_eq!(fast, slow, "{bits_a}x{bits_b}");
        }
    }

    proptest! {
        #[test]
        fn prop_karatsuba_equals_schoolbook(
            a_bytes in proptest::collection::vec(any::<u8>(), 200..600),
            b_bytes in proptest::collection::vec(any::<u8>(), 200..600),
        ) {
            let a = BigUint::from_bytes_be(&a_bytes);
            let b = BigUint::from_bytes_be(&b_bytes);
            let fast = &a * &b;
            let slow = BigUint::from_limbs(super::mul_schoolbook(a.limbs(), b.limbs()));
            prop_assert_eq!(fast, slow);
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let ba = BigUint::from_bytes_be(&a.to_be_bytes());
            let bb = BigUint::from_bytes_be(&b.to_be_bytes());
            let sum = &ba + &bb;
            prop_assert_eq!(&sum - &bb, ba);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let product = a as u128 * b as u128;
            let bp = &BigUint::from_u64(a) * &BigUint::from_u64(b);
            prop_assert_eq!(bp, BigUint::from_bytes_be(&product.to_be_bytes()));
        }

        #[test]
        fn prop_shift_roundtrip(a in any::<u128>(), s in 0usize..200) {
            let v = BigUint::from_bytes_be(&a.to_be_bytes());
            let back = &(&v << s) >> s;
            prop_assert_eq!(back, v);
        }

        #[test]
        fn prop_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let v = BigUint::from_bytes_be(&bytes);
            let out = v.to_bytes_be();
            let trimmed: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
            prop_assert_eq!(out, trimmed);
        }
    }
}
