//! Modular arithmetic: exponentiation, GCD, and modular inverse.

use super::montgomery::MontgomeryCtx;
use super::BigUint;

/// Computes `base^exp mod modulus`, dispatching odd moduli to the
/// Montgomery fast path and everything else to the naive oracle.
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub(super) fn modpow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "modpow with zero modulus");
    match MontgomeryCtx::new(modulus.clone()) {
        Some(ctx) => ctx.modpow(base, exp),
        None => modpow_naive(base, exp, modulus),
    }
}

/// Computes `base^exp mod modulus` with left-to-right square-and-multiply
/// — a full division per multiply. Kept as the correctness oracle the
/// Montgomery property tests compare against, and as the fallback for
/// even moduli (where Montgomery reduction is undefined).
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub(super) fn modpow_naive(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "modpow with zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    let mut result = BigUint::one();
    let mut acc = base.rem(modulus);
    for i in 0..exp.bits() {
        if exp.bit(i) {
            result = (&result * &acc).rem(modulus);
        }
        if i + 1 < exp.bits() {
            acc = (&acc * &acc).rem(modulus);
        }
    }
    result
}

/// Computes the greatest common divisor by the Euclidean algorithm.
pub(super) fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = a.rem(&b);
        a = b;
        b = r;
    }
    a
}

/// Computes `a^-1 mod modulus` by the extended Euclidean algorithm, or
/// `None` when `gcd(a, modulus) != 1`.
pub(super) fn modinv(a: &BigUint, modulus: &BigUint) -> Option<BigUint> {
    if modulus.is_zero() || modulus.is_one() {
        return None;
    }
    // Track coefficients as (sign, magnitude) pairs to stay unsigned.
    let mut r_prev = modulus.clone();
    let mut r = a.rem(modulus);
    // t coefficients: t_prev = 0, t = 1; signs: true = non-negative.
    let mut t_prev = (true, BigUint::zero());
    let mut t = (true, BigUint::one());

    while !r.is_zero() {
        let (q, r_next) = r_prev.div_rem(&r);
        // t_next = t_prev - q * t
        let qt = &q * &t.1;
        let t_next = signed_sub(&t_prev, &(t.0, qt));
        r_prev = r;
        r = r_next;
        t_prev = t;
        t = t_next;
    }
    if !r_prev.is_one() {
        return None; // not coprime
    }
    // Normalize t_prev into [0, modulus).
    let inv = if t_prev.0 {
        t_prev.1.rem(modulus)
    } else {
        let m = t_prev.1.rem(modulus);
        if m.is_zero() {
            m
        } else {
            modulus - &m
        }
    };
    Some(inv)
}

/// Computes `a - b` where both carry a sign flag (`true` = non-negative).
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        (true, false) => (true, &a.1 + &b.1),
        (false, true) => (false, &a.1 + &b.1),
        (true, true) => match a.1.checked_sub(&b.1) {
            Some(d) => (true, d),
            None => (false, &b.1 - &a.1),
        },
        (false, false) => match b.1.checked_sub(&a.1) {
            Some(d) => (true, d),
            None => (false, &a.1 - &b.1),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::super::BigUint;
    use proptest::prelude::*;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn modpow_small_known_values() {
        // 3^4 mod 5 = 1
        let r = BigUint::from_u64(3).modpow(&BigUint::from_u64(4), &BigUint::from_u64(5));
        assert!(r.is_one());
        // 2^10 mod 1000 = 24
        let r = BigUint::from_u64(2).modpow(&BigUint::from_u64(10), &BigUint::from_u64(1000));
        assert_eq!(r, BigUint::from_u64(24));
    }

    #[test]
    fn modpow_zero_exponent_is_one() {
        let r = big("deadbeef").modpow(&BigUint::zero(), &big("10001"));
        assert!(r.is_one());
    }

    #[test]
    fn modpow_modulus_one_is_zero() {
        let r = big("deadbeef").modpow(&big("3"), &BigUint::one());
        assert!(r.is_zero());
    }

    #[test]
    fn fermat_little_theorem() {
        // p = 2^61 - 1 is prime; a^(p-1) ≡ 1 (mod p).
        let p = BigUint::from_u64((1u64 << 61) - 1);
        let pm1 = &p - &BigUint::one();
        for a in [2u64, 3, 65537, 123456789] {
            let r = BigUint::from_u64(a).modpow(&pm1, &p);
            assert!(r.is_one(), "a = {a}");
        }
    }

    #[test]
    fn gcd_known_values() {
        assert_eq!(
            BigUint::from_u64(48).gcd(&BigUint::from_u64(18)),
            BigUint::from_u64(6)
        );
        assert_eq!(BigUint::zero().gcd(&BigUint::from_u64(7)), BigUint::from_u64(7));
        assert_eq!(BigUint::from_u64(7).gcd(&BigUint::zero()), BigUint::from_u64(7));
    }

    #[test]
    fn modinv_known_values() {
        // 3 * 4 = 12 ≡ 1 (mod 11)
        let inv = BigUint::from_u64(3).modinv(&BigUint::from_u64(11)).unwrap();
        assert_eq!(inv, BigUint::from_u64(4));
        // Not coprime → None
        assert!(BigUint::from_u64(6).modinv(&BigUint::from_u64(9)).is_none());
        // Degenerate moduli
        assert!(BigUint::from_u64(3).modinv(&BigUint::zero()).is_none());
        assert!(BigUint::from_u64(3).modinv(&BigUint::one()).is_none());
    }

    #[test]
    fn modinv_of_rsa_style_exponent() {
        // e = 65537 modulo a made-up phi; verify e * d ≡ 1 (mod phi).
        let e = BigUint::from_u64(65537);
        let phi = big("c3a9f2b47d1e6650a83f917c22d48a9be5af7d30");
        let d = e.modinv(&phi).unwrap();
        assert!((&e * &d).rem(&phi).is_one());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_modpow_matches_naive(base in 0u64..1000, exp in 0u32..24, m in 2u64..10_000) {
            let naive = {
                let mut acc: u128 = 1;
                for _ in 0..exp {
                    acc = acc * base as u128 % m as u128;
                }
                acc as u64
            };
            let r = BigUint::from_u64(base)
                .modpow(&BigUint::from_u64(exp as u64), &BigUint::from_u64(m));
            prop_assert_eq!(r, BigUint::from_u64(naive));
        }

        #[test]
        fn prop_modinv_is_inverse(a in 1u64..100_000, m in 2u64..100_000) {
            let ba = BigUint::from_u64(a);
            let bm = BigUint::from_u64(m);
            if let Some(inv) = ba.modinv(&bm) {
                prop_assert!((&ba * &inv).rem(&bm).is_one());
                prop_assert!(inv < bm);
            } else {
                prop_assert!(!ba.gcd(&bm).is_one() || bm.is_one());
            }
        }

        #[test]
        fn prop_gcd_divides_both(a in 1u64..1_000_000, b in 1u64..1_000_000) {
            let g = BigUint::from_u64(a).gcd(&BigUint::from_u64(b));
            prop_assert!(BigUint::from_u64(a).rem(&g).is_zero());
            prop_assert!(BigUint::from_u64(b).rem(&g).is_zero());
        }
    }
}
