//! RSA public-key encryption and signatures, implemented from scratch on
//! top of [`crate::bignum`].
//!
//! B-IoT uses one public-key primitive for two jobs (paper §IV-C, Fig 4):
//! signing transactions / protocol messages, and encrypting the symmetric
//! session key during key distribution. RSA provides both:
//!
//! * **Signatures** — PKCS#1 v1.5-style: SHA-256 the message, prepend a
//!   DigestInfo marker, pad, and exponentiate with the private key.
//! * **Encryption** — PKCS#1 v1.5 type-2 padding with random non-zero
//!   filler, exponentiation with the public key.
//!
//! # Examples
//!
//! ```
//! use biot_crypto::rsa::RsaPrivateKey;
//!
//! let mut rng = rand::thread_rng();
//! let sk = RsaPrivateKey::generate(512, &mut rng);
//! let sig = sk.sign(b"authorize device 7");
//! assert!(sk.public().verify(b"authorize device 7", &sig));
//! assert!(!sk.public().verify(b"authorize device 8", &sig));
//! ```

use crate::bignum::{gen_prime, BigUint, MontgomeryCtx};
use crate::sha256::sha256;
use rand::Rng;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Fixed public exponent (F4), the universal default.
pub const PUBLIC_EXPONENT: u64 = 65537;

/// Marker prefix identifying a SHA-256 DigestInfo in signature padding.
///
/// A simplified stand-in for the DER-encoded ASN.1 DigestInfo of PKCS#1:
/// it serves the same purpose (binding the hash algorithm into the signed
/// payload) without an ASN.1 encoder.
const DIGEST_INFO_SHA256: &[u8; 8] = b"SHA256::";

/// Minimum padding overhead for PKCS#1 v1.5 type-2 encryption.
const ENCRYPT_OVERHEAD: usize = 11;

/// Errors produced by RSA operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsaError {
    /// Plaintext too long for the key's modulus.
    MessageTooLong {
        /// Bytes supplied.
        got: usize,
        /// Maximum bytes this key can encrypt.
        max: usize,
    },
    /// Ciphertext is not a valid residue or padding failed to parse.
    Decrypt,
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::MessageTooLong { got, max } => {
                write!(f, "message of {got} bytes exceeds maximum {max} for this key")
            }
            RsaError::Decrypt => write!(f, "decryption failed"),
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key `(n, e)`.
///
/// Carries a lazily-built [`MontgomeryCtx`] for `n`, shared across clones,
/// so repeated verify/encrypt calls under the same key pay the context
/// precomputation once instead of re-deriving division state per multiply.
#[derive(Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    /// Montgomery context for `n`; `None` inside the cell when `n` is even
    /// or degenerate (reachable via [`from_parts`](Self::from_parts)).
    mont: Arc<OnceLock<Option<MontgomeryCtx>>>,
}

// Identity is (n, e); the cached context is derived state and must not
// influence equality or hashing.
impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl std::hash::Hash for RsaPublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.n.hash(state);
        self.e.hash(state);
    }
}

impl fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RsaPublicKey")
            .field("bits", &self.n.bits())
            .field("fingerprint", &self.fingerprint_hex())
            .finish()
    }
}

impl RsaPublicKey {
    /// Reassembles a public key from raw parts (e.g. deserialized bytes).
    pub fn from_parts(n: BigUint, e: BigUint) -> Self {
        Self {
            n,
            e,
            mont: Arc::new(OnceLock::new()),
        }
    }

    /// The cached Montgomery context for `n`, built on first use; `None`
    /// when `n` is even or ≤ 1 (such keys still work via the naive path).
    fn mont_ctx(&self) -> Option<&MontgomeryCtx> {
        self.mont
            .get_or_init(|| MontgomeryCtx::new(self.n.clone()))
            .as_ref()
    }

    /// Computes `m^e mod n` through the cached context when available.
    fn public_op(&self, m: &BigUint) -> BigUint {
        match self.mont_ctx() {
            Some(ctx) => ctx.modpow(m, &self.e),
            None => m.modpow_naive(&self.e, &self.n),
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus size in whole bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// SHA-256 fingerprint of the encoded key; used as a node's on-ledger
    /// identity in B-IoT.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut data = self.n.to_bytes_be();
        data.extend_from_slice(&self.e.to_bytes_be());
        sha256(&data)
    }

    /// First 8 bytes of [`fingerprint`](Self::fingerprint) as hex, for logs.
    pub fn fingerprint_hex(&self) -> String {
        crate::sha256::to_hex(&self.fingerprint()[..8])
    }

    /// Encrypts `plaintext` under this key with randomized type-2 padding.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::MessageTooLong`] if `plaintext` exceeds
    /// `modulus_len() - 11` bytes.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        plaintext: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, RsaError> {
        let k = self.modulus_len();
        let max = k.saturating_sub(ENCRYPT_OVERHEAD);
        if plaintext.len() > max {
            return Err(RsaError::MessageTooLong {
                got: plaintext.len(),
                max,
            });
        }
        // EM = 0x00 || 0x02 || PS (non-zero random) || 0x00 || M
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        let ps_len = k - plaintext.len() - 3;
        for _ in 0..ps_len {
            em.push(rng.gen_range(1u8..=255));
        }
        em.push(0x00);
        em.extend_from_slice(plaintext);
        let m = BigUint::from_bytes_be(&em);
        let c = self.public_op(&m);
        Ok(c.to_bytes_be_padded(k))
    }

    /// Verifies a signature produced by [`RsaPrivateKey::sign`].
    ///
    /// Returns `false` for any malformed or mismatching signature; never
    /// panics on attacker-controlled input.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        let k = self.modulus_len();
        if signature.len() != k {
            return false;
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return false;
        }
        let em = self.public_op(&s).to_bytes_be_padded(k);
        let expected = signature_payload(message, k);
        crate::sha256::ct_eq(&em, &expected)
    }
}

/// An RSA private key with its public half.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    // Prime factors and CRT precomputation (d mod p-1, d mod q-1,
    // q^-1 mod p) for ~4x faster private-key operations.
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
    /// Montgomery contexts for `(p, q)`, built on first private op and
    /// shared across clones.
    mont_pq: Arc<OnceLock<(MontgomeryCtx, MontgomeryCtx)>>,
}

impl fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print private material.
        f.debug_struct("RsaPrivateKey")
            .field("bits", &self.public.n.bits())
            .field("fingerprint", &self.public.fingerprint_hex())
            .finish()
    }
}

impl RsaPrivateKey {
    /// Generates a fresh key with a modulus of `bits` bits.
    ///
    /// 512 bits is comfortable for simulation; use ≥ 2048 for anything
    /// real. Generation retries until `gcd(e, φ) = 1`, which almost always
    /// succeeds on the first attempt.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 128` (too small to pad a message).
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 128, "RSA modulus must be at least 128 bits");
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bits() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = &(&p - &one) * &(&q - &one);
            let Some(d) = e.modinv(&phi) else { continue };
            let dp = d.rem(&(&p - &one));
            let dq = d.rem(&(&q - &one));
            let Some(qinv) = q.modinv(&p) else { continue };
            return Self {
                public: RsaPublicKey::from_parts(n, e),
                d,
                p,
                q,
                dp,
                dq,
                qinv,
                mont_pq: Arc::new(OnceLock::new()),
            };
        }
    }

    /// Borrows the public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent.
    pub fn private_exponent(&self) -> &BigUint {
        &self.d
    }

    /// Signs `message` (SHA-256 + deterministic padding + private
    /// exponentiation). Output length equals the modulus length.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        let em = signature_payload(message, k);
        let m = BigUint::from_bytes_be(&em);
        debug_assert!(m < self.public.n);
        let s = self.private_op(&m);
        s.to_bytes_be_padded(k)
    }

    /// Decrypts a ciphertext produced by [`RsaPublicKey::encrypt`].
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::Decrypt`] when the ciphertext has the wrong
    /// length, is out of range, or unpads incorrectly (wrong key or
    /// tampering).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(RsaError::Decrypt);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= self.public.n {
            return Err(RsaError::Decrypt);
        }
        let em = self.private_op(&c).to_bytes_be_padded(k);
        // Parse 0x00 || 0x02 || PS || 0x00 || M
        if em.len() < ENCRYPT_OVERHEAD || em[0] != 0x00 || em[1] != 0x02 {
            return Err(RsaError::Decrypt);
        }
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(RsaError::Decrypt)?;
        if sep < 8 {
            return Err(RsaError::Decrypt); // PS must be ≥ 8 bytes
        }
        Ok(em[2 + sep + 1..].to_vec())
    }

    /// Maximum plaintext bytes a single [`RsaPublicKey::encrypt`] accepts.
    pub fn max_plaintext_len(&self) -> usize {
        self.public.modulus_len().saturating_sub(ENCRYPT_OVERHEAD)
    }

    /// The prime factors `(p, q)`; exposed for tests and diagnostics.
    pub fn factors(&self) -> (&BigUint, &BigUint) {
        (&self.p, &self.q)
    }

    /// The cached Montgomery contexts for `(p, q)`, built on first use.
    /// The only constructor is [`generate`](Self::generate), so both
    /// factors are guaranteed odd primes.
    fn mont_pq(&self) -> &(MontgomeryCtx, MontgomeryCtx) {
        self.mont_pq.get_or_init(|| {
            (
                MontgomeryCtx::new(self.p.clone()).expect("p is an odd prime"),
                MontgomeryCtx::new(self.q.clone()).expect("q is an odd prime"),
            )
        })
    }

    /// Computes `m^d mod n` via the Chinese Remainder Theorem (Garner's
    /// recombination), ~4x faster than a direct exponentiation because the
    /// two half-size exponentiations each cost an eighth of the full one.
    /// Each half runs through its cached Montgomery context (conversion
    /// reduces `m` mod the factor, so no explicit `rem` is needed).
    fn private_op(&self, m: &BigUint) -> BigUint {
        let (ctx_p, ctx_q) = self.mont_pq();
        let m1 = ctx_p.modpow(m, &self.dp);
        let m2 = ctx_q.modpow(m, &self.dq);
        // h = qinv * (m1 - m2) mod p  (lift m2 into the mod-p residue).
        let diff = if m1 >= m2 {
            &m1 - &m2
        } else {
            // m1 - m2 mod p, keeping everything unsigned.
            let deficit = (&m2 - &m1).rem(&self.p);
            if deficit.is_zero() {
                deficit
            } else {
                &self.p - &deficit
            }
        };
        let h = (&self.qinv * &diff).rem(&self.p);
        &m2 + &(&h * &self.q)
    }
}

/// Builds the deterministic signature block:
/// `0x00 || 0x01 || 0xFF.. || 0x00 || "SHA256::" || H(message)`.
fn signature_payload(message: &[u8], k: usize) -> Vec<u8> {
    let digest = sha256(message);
    let t_len = DIGEST_INFO_SHA256.len() + digest.len();
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    let ps_len = k.saturating_sub(t_len + 3);
    em.extend(std::iter::repeat_n(0xFF, ps_len));
    em.push(0x00);
    em.extend_from_slice(DIGEST_INFO_SHA256);
    em.extend_from_slice(&digest);
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key(seed: u64) -> RsaPrivateKey {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaPrivateKey::generate(512, &mut rng)
    }

    #[test]
    fn keygen_produces_consistent_key() {
        let sk = test_key(1);
        let (p, q) = sk.factors();
        assert_eq!(sk.public().modulus(), &(p * q));
        assert_eq!(sk.public().modulus().bits(), 512);
        // e*d ≡ 1 mod φ(n)
        let one = BigUint::one();
        let phi = &(p - &one) * &(q - &one);
        assert!((sk.public().exponent() * sk.private_exponent()).rem(&phi).is_one());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let sk = test_key(2);
        let mut rng = StdRng::seed_from_u64(20);
        for msg in [&b""[..], b"x", b"a 32-byte symmetric session key!"] {
            let ct = sk.public().encrypt(msg, &mut rng).unwrap();
            assert_eq!(ct.len(), sk.public().modulus_len());
            assert_eq!(sk.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let sk = test_key(3);
        let mut rng = StdRng::seed_from_u64(30);
        let c1 = sk.public().encrypt(b"same", &mut rng).unwrap();
        let c2 = sk.public().encrypt(b"same", &mut rng).unwrap();
        assert_ne!(c1, c2);
        assert_eq!(sk.decrypt(&c1).unwrap(), b"same");
        assert_eq!(sk.decrypt(&c2).unwrap(), b"same");
    }

    #[test]
    fn message_too_long_rejected() {
        let sk = test_key(4);
        let max = sk.max_plaintext_len();
        let mut rng = StdRng::seed_from_u64(40);
        let too_long = vec![7u8; max + 1];
        assert_eq!(
            sk.public().encrypt(&too_long, &mut rng),
            Err(RsaError::MessageTooLong { got: max + 1, max })
        );
        let just_fits = vec![7u8; max];
        assert!(sk.public().encrypt(&just_fits, &mut rng).is_ok());
    }

    #[test]
    fn decrypt_with_wrong_key_fails() {
        let sk1 = test_key(5);
        let sk2 = test_key(6);
        let mut rng = StdRng::seed_from_u64(50);
        let ct = sk1.public().encrypt(b"secret", &mut rng).unwrap();
        // Wrong key: padding parse almost surely fails (or yields junk).
        match sk2.decrypt(&ct) {
            Err(RsaError::Decrypt) => {}
            Ok(pt) => assert_ne!(pt, b"secret".to_vec()),
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let sk = test_key(7);
        let mut rng = StdRng::seed_from_u64(70);
        let mut ct = sk.public().encrypt(b"secret", &mut rng).unwrap();
        ct[10] ^= 0xFF;
        match sk.decrypt(&ct) {
            Err(RsaError::Decrypt) => {}
            Ok(pt) => assert_ne!(pt, b"secret".to_vec()),
            Err(e) => panic!("unexpected {e}"),
        }
        assert_eq!(sk.decrypt(&[1, 2, 3]), Err(RsaError::Decrypt));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = test_key(8);
        let sig = sk.sign(b"manager authorizes PK_d1");
        assert_eq!(sig.len(), sk.public().modulus_len());
        assert!(sk.public().verify(b"manager authorizes PK_d1", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message_and_signature() {
        let sk = test_key(9);
        let sig = sk.sign(b"original");
        assert!(!sk.public().verify(b"forged", &sig));
        let mut bad = sig.clone();
        bad[0] ^= 1;
        assert!(!sk.public().verify(b"original", &bad));
        assert!(!sk.public().verify(b"original", &[]));
        assert!(!sk.public().verify(b"original", &vec![0xFF; sig.len()]));
    }

    #[test]
    fn verify_rejects_signature_from_other_key() {
        let sk1 = test_key(10);
        let sk2 = test_key(11);
        let sig = sk1.sign(b"msg");
        assert!(!sk2.public().verify(b"msg", &sig));
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let sk1 = test_key(12);
        let sk2 = test_key(13);
        assert_eq!(sk1.public().fingerprint(), sk1.public().fingerprint());
        assert_ne!(sk1.public().fingerprint(), sk2.public().fingerprint());
        assert_eq!(sk1.public().fingerprint_hex().len(), 16);
    }

    #[test]
    fn crt_matches_direct_exponentiation() {
        let sk = test_key(15);
        let mut rng = StdRng::seed_from_u64(150);
        for _ in 0..5 {
            let m = BigUint::random_below(&mut rng, sk.public().modulus());
            let direct = m.modpow(sk.private_exponent(), sk.public().modulus());
            let crt = sk.private_op(&m);
            assert_eq!(crt, direct);
        }
    }

    #[test]
    fn montgomery_private_op_matches_naive_oracle() {
        // The CRT path now runs entirely through cached Montgomery
        // contexts; it must agree bit-for-bit with naive square-and-multiply
        // under the full private exponent.
        let sk = test_key(16);
        let mut rng = StdRng::seed_from_u64(160);
        for _ in 0..5 {
            let m = BigUint::random_below(&mut rng, sk.public().modulus());
            let naive = m.modpow_naive(sk.private_exponent(), sk.public().modulus());
            assert_eq!(sk.private_op(&m), naive);
        }
    }

    #[test]
    fn even_modulus_key_still_verifies_via_naive_fallback() {
        // from_parts can deliver an even modulus (hostile or corrupt peer
        // data); public ops must not panic and must match the oracle.
        let sk = test_key(17);
        let sig = sk.sign(b"msg");
        let even = RsaPublicKey::from_parts(
            sk.public().modulus() + &BigUint::one(),
            sk.public().exponent().clone(),
        );
        assert!(!even.verify(b"msg", &sig));
        let s = BigUint::from_bytes_be(&sig);
        assert_eq!(
            even.public_op(&s),
            s.modpow_naive(even.exponent(), even.modulus())
        );
    }

    #[test]
    fn debug_redacts_private_material() {
        let sk = test_key(14);
        let s = format!("{sk:?}");
        assert!(s.contains("fingerprint"));
        assert!(!s.contains(&sk.private_exponent().to_hex()));
    }
}
