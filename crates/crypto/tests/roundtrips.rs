//! Property-based roundtrip tests across the crypto crate: any data that
//! goes in must come out, and any tampering must be detected.

use biot_crypto::aes::{Aes, AesKey};
use biot_crypto::bignum::BigUint;
use biot_crypto::kdf::hkdf;
use biot_crypto::rsa::RsaPrivateKey;
use biot_crypto::sha256::{hmac_sha256, sha256, Sha256};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One fixed RSA key for all property cases (keygen per case is too slow).
fn shared_key() -> &'static RsaPrivateKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xB107);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aes_cbc_roundtrip_any_plaintext(
        key_bytes in proptest::array::uniform32(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        plaintext in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let aes = Aes::new(&AesKey::Aes256(key_bytes));
        let ct = aes.encrypt_cbc(&plaintext, &iv);
        prop_assert_eq!(aes.decrypt_cbc(&ct, &iv).unwrap(), plaintext);
    }

    #[test]
    fn aes_ctr_is_an_involution(
        key_bytes in proptest::array::uniform16(any::<u8>()),
        nonce in proptest::array::uniform16(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let aes = Aes::new(&AesKey::Aes128(key_bytes));
        let once = aes.apply_ctr(&data, &nonce);
        prop_assert_eq!(aes.apply_ctr(&once, &nonce), data);
    }

    #[test]
    fn ciphertext_never_contains_long_plaintext_run(
        plaintext in proptest::collection::vec(any::<u8>(), 32..256),
    ) {
        // CBC with a fixed key: any 16-byte plaintext window must not
        // appear verbatim in the ciphertext (sanity, not a security proof).
        let aes = Aes::new(&AesKey::Aes256([0xA5; 32]));
        let ct = aes.encrypt_cbc(&plaintext, &[0x3C; 16]);
        for win in plaintext.windows(16) {
            prop_assert!(!ct.windows(16).any(|c| c == win));
        }
    }

    #[test]
    fn rsa_encrypt_decrypt_any_short_message(
        msg in proptest::collection::vec(any::<u8>(), 0..53),
        seed in any::<u64>(),
    ) {
        let sk = shared_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = sk.public().encrypt(&msg, &mut rng).unwrap();
        prop_assert_eq!(sk.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn rsa_sign_verify_any_message(msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let sk = shared_key();
        let sig = sk.sign(&msg);
        prop_assert!(sk.public().verify(&msg, &sig));
        // Any single-bit flip in the signature must invalidate it.
        let mut bad = sig.clone();
        let idx = msg.len() % sig.len();
        bad[idx] ^= 1;
        prop_assert!(!sk.public().verify(&msg, &bad));
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        flip in any::<usize>(),
    ) {
        let d1 = sha256(&data);
        prop_assert_eq!(d1, sha256(&data));
        let mut tampered = data.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x01;
        prop_assert_ne!(d1, sha256(&tampered));
    }

    #[test]
    fn hmac_keys_separate_domains(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    #[test]
    fn hkdf_output_is_context_bound(
        master in proptest::array::uniform32(any::<u8>()),
        info1 in proptest::collection::vec(any::<u8>(), 0..32),
        info2 in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assume!(info1 != info2);
        prop_assert_ne!(hkdf(None, &master, &info1, 32), hkdf(None, &master, &info2, 32));
    }

    #[test]
    fn midstate_resume_matches_oneshot(
        prefix in proptest::collection::vec(any::<u8>(), 0..130),
        suffix in proptest::collection::vec(any::<u8>(), 0..130),
    ) {
        // Snapshot after the prefix, resume with the suffix; lengths straddle
        // the 64-byte SHA-256 block boundary on both sides of the split.
        let mut h = Sha256::new();
        h.update(&prefix);
        let mid = h.midstate();
        let mut resumed = Sha256::from_midstate(&mid);
        resumed.update(&suffix);

        let mut oneshot = Sha256::new();
        oneshot.update(&prefix);
        oneshot.update(&suffix);
        prop_assert_eq!(resumed.finalize(), oneshot.finalize());
    }

    #[test]
    fn bignum_mul_div_roundtrip(
        a in proptest::collection::vec(any::<u8>(), 1..32),
        b in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        prop_assume!(!y.is_zero());
        let product = &x * &y;
        let (q, r) = product.div_rem(&y);
        prop_assert_eq!(q, x);
        prop_assert!(r.is_zero());
    }
}
