//! Blockchain-based device management (paper §IV-A, Eqn 1).
//!
//! The manager publishes `TX = Sign_SKM(PK_d1, …, PK_dn)` — a signed list
//! of authorized device identities. The manager's public key is hard-coded
//! into the genesis configuration, so gateways can always discriminate a
//! genuine list. Requests from identities outside the list are refused,
//! which blunts Sybil and DDoS attacks at admission (§VI-C).

use biot_crypto::rsa::RsaPublicKey;
use biot_tangle::tx::{NodeId, Payload};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors from applying an authorization update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthError {
    /// The signature does not verify under the manager's key.
    BadSignature,
    /// The payload is not an [`Payload::AuthList`].
    NotAnAuthList,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadSignature => write!(f, "authorization list signature invalid"),
            AuthError::NotAnAuthList => write!(f, "payload is not an authorization list"),
        }
    }
}

impl std::error::Error for AuthError {}

/// The canonical message the manager signs: the concatenated device ids
/// (Eqn 1's `PK_d1 … PK_dn`).
pub fn auth_list_message(devices: &[NodeId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(devices.len() * 32 + 8);
    out.extend_from_slice(b"AUTHLIST");
    for d in devices {
        out.extend_from_slice(&d.0);
    }
    out
}

/// Builds the signed authorization-list payload (manager side).
pub fn build_auth_list(
    devices: Vec<NodeId>,
    manager: &crate::identity::Account,
) -> Payload {
    let signature = manager.sign(&auth_list_message(&devices));
    Payload::AuthList { devices, signature }
}

/// Gateway-side view of the current authorization list.
///
/// The genesis configuration pins the manager's public key; every list
/// update must verify against it. Later lists *replace* earlier ones, so
/// deauthorization is simply publishing a list without the device.
///
/// # Examples
///
/// ```
/// use biot_core::authz::{build_auth_list, AuthRegistry};
/// use biot_core::identity::Account;
/// use biot_tangle::tx::NodeId;
///
/// let mut rng = rand::thread_rng();
/// let manager = Account::generate(&mut rng);
/// let device = NodeId([7; 32]);
///
/// let mut registry = AuthRegistry::new(manager.public_key().clone());
/// let update = build_auth_list(vec![device], &manager);
/// registry.apply(&update)?;
/// assert!(registry.is_authorized(&device));
/// # Ok::<(), biot_core::authz::AuthError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AuthRegistry {
    /// Trusted manager keys; the first is the genesis-pinned primary.
    manager_pks: Vec<RsaPublicKey>,
    /// Authorized devices, tracked per signing manager so each factory's
    /// manager owns its own list (a later list from manager A replaces
    /// A's devices without touching B's).
    authorized: HashMap<NodeId, HashSet<NodeId>>,
    /// Number of list updates applied.
    version: u64,
}

impl AuthRegistry {
    /// Creates a registry trusting `manager_pk` (the genesis-pinned key).
    pub fn new(manager_pk: RsaPublicKey) -> Self {
        Self {
            manager_pks: vec![manager_pk],
            authorized: HashMap::new(),
            version: 0,
        }
    }

    /// Trusts an additional manager key. The paper's architecture permits
    /// "one or more managers" per factory (§IV-A); additional managers can
    /// only be introduced by an operator action, never on-ledger, so a
    /// compromised manager cannot mint peers.
    pub fn trust_manager(&mut self, pk: RsaPublicKey) {
        if !self.manager_pks.contains(&pk) {
            self.manager_pks.push(pk);
        }
    }

    /// All trusted manager keys.
    pub fn manager_pks(&self) -> &[RsaPublicKey] {
        &self.manager_pks
    }

    /// Applies an authorization-list payload after verifying the
    /// manager's signature.
    ///
    /// # Errors
    ///
    /// [`AuthError::NotAnAuthList`] for other payload kinds,
    /// [`AuthError::BadSignature`] when verification fails (forged or
    /// tampered list).
    pub fn apply(&mut self, payload: &Payload) -> Result<(), AuthError> {
        let Payload::AuthList { devices, signature } = payload else {
            return Err(AuthError::NotAnAuthList);
        };
        let msg = auth_list_message(devices);
        let Some(signer) = self
            .manager_pks
            .iter()
            .find(|pk| pk.verify(&msg, signature))
        else {
            return Err(AuthError::BadSignature);
        };
        let signer_id = NodeId(signer.fingerprint());
        self.authorized
            .insert(signer_id, devices.iter().copied().collect());
        self.version += 1;
        Ok(())
    }

    /// Whether `device` is currently authorized by any trusted manager.
    pub fn is_authorized(&self, device: &NodeId) -> bool {
        self.authorized.values().any(|set| set.contains(device))
    }

    /// Number of distinct authorized devices across all managers.
    pub fn len(&self) -> usize {
        let mut union = HashSet::new();
        for set in self.authorized.values() {
            union.extend(set.iter().copied());
        }
        union.len()
    }

    /// True when no devices are authorized.
    pub fn is_empty(&self) -> bool {
        self.authorized.values().all(|s| s.is_empty())
    }

    /// How many list updates have been applied.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The primary (genesis-pinned) manager key.
    pub fn manager_pk(&self) -> &RsaPublicKey {
        &self.manager_pks[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Account;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Account, AuthRegistry, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let manager = Account::generate(&mut rng);
        let reg = AuthRegistry::new(manager.public_key().clone());
        (manager, reg, rng)
    }

    #[test]
    fn authorize_and_deauthorize() {
        let (manager, mut reg, _) = setup();
        let d1 = NodeId([1; 32]);
        let d2 = NodeId([2; 32]);
        reg.apply(&build_auth_list(vec![d1, d2], &manager)).unwrap();
        assert!(reg.is_authorized(&d1));
        assert!(reg.is_authorized(&d2));
        assert_eq!(reg.len(), 2);
        // Deauthorize d2 by publishing a list without it.
        reg.apply(&build_auth_list(vec![d1], &manager)).unwrap();
        assert!(reg.is_authorized(&d1));
        assert!(!reg.is_authorized(&d2));
        assert_eq!(reg.version(), 2);
    }

    #[test]
    fn forged_list_rejected() {
        let (_manager, mut reg, mut rng) = setup();
        let imposter = Account::generate(&mut rng);
        let forged = build_auth_list(vec![NodeId([9; 32])], &imposter);
        assert_eq!(reg.apply(&forged), Err(AuthError::BadSignature));
        assert!(reg.is_empty());
    }

    #[test]
    fn tampered_list_rejected() {
        let (manager, mut reg, _) = setup();
        let good = build_auth_list(vec![NodeId([1; 32])], &manager);
        let Payload::AuthList { signature, .. } = &good else { unreachable!() };
        // Swap in a different device set, keep the old signature.
        let tampered = Payload::AuthList {
            devices: vec![NodeId([66; 32])],
            signature: signature.clone(),
        };
        assert_eq!(reg.apply(&tampered), Err(AuthError::BadSignature));
    }

    #[test]
    fn wrong_payload_kind_rejected() {
        let (_, mut reg, _) = setup();
        assert_eq!(
            reg.apply(&Payload::Data(b"not a list".to_vec())),
            Err(AuthError::NotAnAuthList)
        );
    }

    #[test]
    fn empty_list_revokes_everyone() {
        let (manager, mut reg, _) = setup();
        let d = NodeId([1; 32]);
        reg.apply(&build_auth_list(vec![d], &manager)).unwrap();
        reg.apply(&build_auth_list(vec![], &manager)).unwrap();
        assert!(!reg.is_authorized(&d));
        assert!(reg.is_empty());
    }

    #[test]
    fn unknown_device_not_authorized() {
        let (_, reg, _) = setup();
        assert!(!reg.is_authorized(&NodeId([5; 32])));
    }
}
