//! The credit model (paper §IV-B, Eqns 2–5).
//!
//! Each node `i` carries a credit value
//!
//! ```text
//! Cr_i = λ1·CrP_i + λ2·CrN_i                       (Eqn 2)
//! CrP_i = Σ_{k=1..n_i} w_k / ΔT                    (Eqn 3)
//! CrN_i = − Σ_{k=1..m_i} α(B_k) · ΔT / (t − t_k)   (Eqn 4)
//! α(B)  = α_l for lazy tips, α_d for double-spend  (Eqn 5)
//! ```
//!
//! The positive part rewards *recent* validated activity (only
//! transactions inside the latest ΔT window count), so inactive nodes
//! drift back to zero. The negative part decays hyperbolically but never
//! reaches zero — misbehaviour is never fully forgotten.
//!
//! Credit is a pure function of on-ledger facts (transaction weights and
//! detected misbehaviour), so it "cannot be forged or tampered" (§IV-B).

use biot_net::time::SimTime;
use biot_tangle::tx::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which misbehaviour was detected (Eqn 5's `B`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Misbehavior {
    /// Approving stale tips instead of fresh ones (§III "lazy tips").
    LazyTips,
    /// Attempting to spend the same token twice (§III).
    DoubleSpend,
}

/// Tunable parameters of the credit model.
///
/// Defaults are the paper's (§VI-A): λ1 = 1, λ2 = 0.5, ΔT = 30 s,
/// α_l = 0.5, α_d = 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CreditParams {
    /// Weight of the positive component (λ1).
    pub lambda1: f64,
    /// Weight of the negative component (λ2).
    pub lambda2: f64,
    /// The unit of time ΔT, in virtual milliseconds.
    pub delta_t_ms: u64,
    /// Punishment coefficient for lazy tips (α_l).
    pub alpha_lazy: f64,
    /// Punishment coefficient for double-spending (α_d).
    pub alpha_double_spend: f64,
    /// Floor for `t − t_k` in Eqn 4 (ms), preventing division by zero the
    /// instant a misbehaviour is recorded.
    pub min_elapsed_ms: u64,
}

impl Default for CreditParams {
    fn default() -> Self {
        Self {
            lambda1: 1.0,
            lambda2: 0.5,
            delta_t_ms: 30_000,
            alpha_lazy: 0.5,
            alpha_double_spend: 1.0,
            min_elapsed_ms: 100,
        }
    }
}

impl CreditParams {
    /// The punishment coefficient α(B) for a misbehaviour (Eqn 5).
    pub fn alpha(&self, b: Misbehavior) -> f64 {
        match b {
            Misbehavior::LazyTips => self.alpha_lazy,
            Misbehavior::DoubleSpend => self.alpha_double_spend,
        }
    }
}

/// A validated transaction contributing to CrP.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
struct TxRecord {
    at: SimTime,
    weight: f64,
}

/// A detected misbehaviour contributing to CrN.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
struct MisbehaviorRecord {
    at: SimTime,
    kind: Misbehavior,
}

/// Per-node behaviour history.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct NodeHistory {
    txs: Vec<TxRecord>,
    misbehaviors: Vec<MisbehaviorRecord>,
}

/// A credit snapshot: the two components and the combined value (Eqn 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CreditBreakdown {
    /// CrP (Eqn 3).
    pub positive: f64,
    /// CrN (Eqn 4), ≤ 0.
    pub negative: f64,
    /// Cr = λ1·CrP + λ2·CrN.
    pub combined: f64,
}

/// Tracks behaviour and computes credit for every node.
///
/// # Examples
///
/// ```
/// use biot_core::credit::{CreditParams, CreditRegistry, Misbehavior};
/// use biot_net::time::SimTime;
/// use biot_tangle::tx::NodeId;
///
/// let mut reg = CreditRegistry::new(CreditParams::default());
/// let node = NodeId([1; 32]);
/// reg.record_transaction(node, 2.0, SimTime::from_secs(1));
/// let good = reg.credit_of(node, SimTime::from_secs(2)).combined;
/// reg.record_misbehavior(node, Misbehavior::DoubleSpend, SimTime::from_secs(3));
/// let bad = reg.credit_of(node, SimTime::from_secs(4)).combined;
/// assert!(bad < good);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CreditRegistry {
    params: CreditParams,
    nodes: HashMap<NodeId, NodeHistory>,
}

impl CreditRegistry {
    /// Creates a registry with the given parameters.
    pub fn new(params: CreditParams) -> Self {
        Self {
            params,
            nodes: HashMap::new(),
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &CreditParams {
        &self.params
    }

    /// Records a validated transaction of `weight` issued by `node` at
    /// `at`. Weight is the number of validations the transaction has (the
    /// tangle's cumulative-weight metric); callers typically record weight
    /// 1 at attach time and may re-record as weight accumulates.
    pub fn record_transaction(&mut self, node: NodeId, weight: f64, at: SimTime) {
        self.nodes
            .entry(node)
            .or_default()
            .txs
            .push(TxRecord { at, weight });
    }

    /// Records a detected misbehaviour by `node` at `at`.
    pub fn record_misbehavior(&mut self, node: NodeId, kind: Misbehavior, at: SimTime) {
        self.nodes
            .entry(node)
            .or_default()
            .misbehaviors
            .push(MisbehaviorRecord { at, kind });
    }

    /// Number of misbehaviours on record for `node`.
    pub fn misbehavior_count(&self, node: NodeId) -> usize {
        self.nodes
            .get(&node)
            .map(|h| h.misbehaviors.len())
            .unwrap_or(0)
    }

    /// Computes CrP at `now` (Eqn 3): transactions inside the latest ΔT
    /// window, weights summed, divided by ΔT in seconds.
    ///
    /// An inactive node (no transactions in the window) scores 0 — the
    /// paper treats it as "not yet trusted" rather than negative.
    pub fn positive_credit(&self, node: NodeId, now: SimTime) -> f64 {
        let Some(history) = self.nodes.get(&node) else {
            return 0.0;
        };
        let window_start = now.as_millis().saturating_sub(self.params.delta_t_ms);
        let delta_t_secs = self.params.delta_t_ms as f64 / 1000.0;
        history
            .txs
            .iter()
            .filter(|r| r.at.as_millis() >= window_start && r.at <= now)
            .map(|r| r.weight)
            .sum::<f64>()
            / delta_t_secs
    }

    /// Computes CrN at `now` (Eqn 4): each misbehaviour contributes
    /// `−α(B)·ΔT/(t − t_k)`, with elapsed time floored at
    /// [`CreditParams::min_elapsed_ms`]. The contribution decays but never
    /// disappears.
    pub fn negative_credit(&self, node: NodeId, now: SimTime) -> f64 {
        let Some(history) = self.nodes.get(&node) else {
            return 0.0;
        };
        let delta_t_secs = self.params.delta_t_ms as f64 / 1000.0;
        -history
            .misbehaviors
            .iter()
            .filter(|r| r.at <= now)
            .map(|r| {
                let elapsed_ms = now.millis_since(r.at).max(self.params.min_elapsed_ms);
                let elapsed_secs = elapsed_ms as f64 / 1000.0;
                self.params.alpha(r.kind) * delta_t_secs / elapsed_secs
            })
            .sum::<f64>()
    }

    /// Computes the full credit breakdown at `now` (Eqn 2).
    pub fn credit_of(&self, node: NodeId, now: SimTime) -> CreditBreakdown {
        let positive = self.positive_credit(node, now);
        let negative = self.negative_credit(node, now);
        CreditBreakdown {
            positive,
            negative,
            combined: self.params.lambda1 * positive + self.params.lambda2 * negative,
        }
    }

    /// Discards transaction records that can no longer influence CrP
    /// (older than ΔT before `now`). Misbehaviour records are never
    /// discarded — their influence never fully decays (§IV-B).
    pub fn compact(&mut self, now: SimTime) {
        let cutoff = now.as_millis().saturating_sub(self.params.delta_t_ms);
        for h in self.nodes.values_mut() {
            h.txs.retain(|r| r.at.as_millis() >= cutoff);
        }
    }

    /// Nodes with any recorded history.
    pub fn known_nodes(&self) -> impl Iterator<Item = &NodeId> {
        self.nodes.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u8) -> NodeId {
        NodeId([n; 32])
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn unknown_node_has_zero_credit() {
        let reg = CreditRegistry::new(CreditParams::default());
        let c = reg.credit_of(node(1), t(10));
        assert_eq!(c.positive, 0.0);
        assert_eq!(c.negative, 0.0);
        assert_eq!(c.combined, 0.0);
    }

    #[test]
    fn positive_credit_is_weight_over_delta_t() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_transaction(node(1), 3.0, t(5));
        reg.record_transaction(node(1), 3.0, t(10));
        // CrP = (3+3)/30 = 0.2
        let c = reg.credit_of(node(1), t(20));
        assert!((c.positive - 0.2).abs() < 1e-9);
        assert_eq!(c.combined, c.positive); // λ1 = 1, no misbehaviour
    }

    #[test]
    fn transactions_age_out_of_the_window() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_transaction(node(1), 3.0, t(5));
        assert!(reg.positive_credit(node(1), t(10)) > 0.0);
        // ΔT = 30 s; by t = 36 s the record at 5 s is outside the window.
        assert_eq!(reg.positive_credit(node(1), t(36)), 0.0);
    }

    #[test]
    fn future_records_do_not_count_yet() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_transaction(node(1), 1.0, t(50));
        reg.record_misbehavior(node(1), Misbehavior::LazyTips, t(60));
        assert_eq!(reg.positive_credit(node(1), t(10)), 0.0);
        assert_eq!(reg.negative_credit(node(1), t(10)), 0.0);
    }

    #[test]
    fn negative_credit_formula_matches_eqn4() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        // At t = 40 s: elapsed = 30 s, CrN = −1·30/30 = −1.
        let n = reg.negative_credit(node(1), t(40));
        assert!((n + 1.0).abs() < 1e-9, "got {n}");
        // Combined uses λ2 = 0.5.
        let c = reg.credit_of(node(1), t(40));
        assert!((c.combined + 0.5).abs() < 1e-9);
    }

    #[test]
    fn lazy_tips_punished_half_as_much_as_double_spend() {
        let params = CreditParams::default();
        let mut reg_lazy = CreditRegistry::new(params);
        let mut reg_ds = CreditRegistry::new(params);
        reg_lazy.record_misbehavior(node(1), Misbehavior::LazyTips, t(10));
        reg_ds.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        let l = reg_lazy.negative_credit(node(1), t(40));
        let d = reg_ds.negative_credit(node(1), t(40));
        assert!((l - d / 2.0).abs() < 1e-9, "lazy {l}, double {d}");
    }

    #[test]
    fn fresh_misbehavior_is_severely_punished() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        // Immediately after (elapsed floored at 100 ms): CrN = −1·30/0.1 = −300.
        let n = reg.negative_credit(node(1), SimTime::from_millis(10_000));
        assert!((n + 300.0).abs() < 1e-6, "got {n}");
    }

    #[test]
    fn punishment_decays_but_never_vanishes() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(0));
        let at_30 = reg.negative_credit(node(1), t(30));
        let at_300 = reg.negative_credit(node(1), t(300));
        let at_3000 = reg.negative_credit(node(1), t(3000));
        assert!(at_30 < at_300 && at_300 < at_3000, "decay is monotone");
        assert!(at_3000 < 0.0, "never reaches zero");
    }

    #[test]
    fn repeated_attacks_accumulate() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        let one = reg.negative_credit(node(1), t(40));
        reg.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(40));
        let two = reg.negative_credit(node(1), t(70));
        assert!(two < one, "second attack deepens the penalty: {two} vs {one}");
    }

    #[test]
    fn lambda_weights_apply() {
        let params = CreditParams {
            lambda1: 2.0,
            lambda2: 4.0,
            ..CreditParams::default()
        };
        let mut reg = CreditRegistry::new(params);
        reg.record_transaction(node(1), 3.0, t(10));
        reg.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        let c = reg.credit_of(node(1), t(40));
        let expect = 2.0 * c.positive + 4.0 * c.negative;
        assert!((c.combined - expect).abs() < 1e-9);
    }

    #[test]
    fn compact_preserves_credit_semantics() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_transaction(node(1), 3.0, t(5));
        reg.record_transaction(node(1), 3.0, t(50));
        reg.record_misbehavior(node(1), Misbehavior::LazyTips, t(5));
        let before = reg.credit_of(node(1), t(60));
        reg.compact(t(60));
        let after = reg.credit_of(node(1), t(60));
        assert_eq!(before, after);
        // The old tx record is gone, the misbehaviour remains.
        assert_eq!(reg.misbehavior_count(node(1)), 1);
    }

    #[test]
    fn nodes_are_independent() {
        let mut reg = CreditRegistry::new(CreditParams::default());
        reg.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        reg.record_transaction(node(2), 5.0, t(10));
        assert!(reg.credit_of(node(1), t(20)).combined < 0.0);
        assert!(reg.credit_of(node(2), t(20)).combined > 0.0);
        assert_eq!(reg.known_nodes().count(), 2);
    }
}
