//! The credit model (paper §IV-B, Eqns 2–5) — re-exported from
//! [`biot_credit`].
//!
//! The model moved out of `biot-core` into its own event-sourced crate so
//! that persistence (`biot-store`), replication (`biot-gossip`), and the
//! experiment layers all consume one definition of credit. This module
//! keeps the old `biot_core::credit::*` paths working.
//!
//! * [`CreditEvent`] — the append-only facts (validated weight,
//!   misbehaviour) that credit is a pure function of.
//! * [`CreditLedger`] — the projection: incremental `credit_of` plus the
//!   naive `credit_of_recount` oracle.
//! * [`CreditParams`] / [`Misbehavior`] / [`CreditBreakdown`] — unchanged.

pub use biot_credit::event::{decode_event, encode_event, CreditCodecError};
pub use biot_credit::{CreditBreakdown, CreditEvent, CreditLedger, CreditParams, Misbehavior};

/// The pre-refactor name of the credit store. The mutable registry became
/// the event-sourced [`CreditLedger`]; the alias keeps old call sites
/// compiling (`new`, `record_transaction`, `record_misbehavior`,
/// `credit_of`, `compact`, `known_nodes` all survive with identical
/// semantics).
pub type CreditRegistry = CreditLedger;
