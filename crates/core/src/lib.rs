//! # biot-core
//!
//! The primary contribution of *B-IoT: Blockchain Driven Internet of
//! Things with Credit-Based Consensus Mechanism* (ICDCS 2019): a
//! credit-based proof-of-work consensus mechanism and a data authority
//! management method, layered on the DAG ledger of `biot-tangle`.
//!
//! ## Modules
//!
//! * [`pow`] — hash-prefix PoW (Eqn 6): solve, verify, virtual-time trial
//!   sampling.
//! * [`credit`] — the credit model (Eqns 2–5): positive activity credit,
//!   hyperbolically decaying punishment.
//! * [`difficulty`] — `Cr ∝ 1/D` policies mapping credit to difficulty.
//! * [`identity`] — RSA-backed node accounts.
//! * [`authz`] — manager-signed authorization lists (Eqn 1).
//! * [`keydist`] — the 3-message symmetric-key distribution of Fig 4.
//! * [`access`] — sealing/opening sensor data per sensitivity class,
//!   plus HKDF-based epoch key rotation.
//! * [`ratelimit`] — per-device token buckets metering request rates.
//! * [`tokens`] — token-ownership enforcement for spends.
//! * [`node`] — the LightNode / Gateway / Manager state machines and the
//!   Fig 6 workflow.
//!
//! ## Example: the Fig 6 workflow in miniature
//!
//! ```
//! use biot_core::difficulty::InverseProportionalPolicy;
//! use biot_core::identity::Account;
//! use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager};
//! use biot_core::pow::Difficulty;
//! use biot_net::time::SimTime;
//!
//! let mut rng = rand::thread_rng();
//! // 1. Manager initializes the gateway and the tangle.
//! let manager = Manager::new(Account::generate(&mut rng));
//! let mut gateway = Gateway::new(
//!     manager.public_key().clone(),
//!     Box::new(InverseProportionalPolicy::default()),
//!     GatewayConfig::default(),
//! );
//! let genesis = gateway.init_genesis(SimTime::ZERO);
//!
//! // 2. Manager authorizes an IoT device on-ledger.
//! let mut manager = manager;
//! let device = LightNode::new(Account::generate(&mut rng));
//! let id = manager.register_device(device.public_key().clone());
//! manager.authorize(id);
//! gateway.register_pubkey(device.public_key().clone());
//! let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
//! let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
//! gateway.apply_auth_list(list.tx, SimTime::ZERO)?;
//!
//! // 4–5. Device fetches tips, mines at its credit-based difficulty, submits.
//! let now = SimTime::from_secs(1);
//! let tips = gateway.random_tips(&mut rng).expect("tangle has tips");
//! let difficulty = gateway.difficulty_for(device.id(), now);
//! let prepared = device.prepare_reading(b"temp=21C", tips, now, difficulty, &mut rng);
//! gateway.submit(prepared.tx, now)?;
//! # Ok::<(), biot_core::node::SubmitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod authz;
pub mod credit;
pub mod difficulty;
pub mod identity;
pub mod keydist;
pub mod node;
pub mod pow;
pub mod ratelimit;
pub mod tokens;

pub use credit::{CreditEvent, CreditLedger, CreditParams, CreditRegistry, Misbehavior};
pub use difficulty::{DifficultyPolicy, FixedPolicy, InverseProportionalPolicy, LinearPolicy};
pub use identity::Account;
pub use node::{Gateway, GatewayConfig, LightNode, Manager, PreparedTx, SubmitError, VerifyConfig};
pub use pow::Difficulty;
pub use ratelimit::{RateLimitConfig, RateLimiter};
pub use tokens::{TokenError, TokenLedger};
