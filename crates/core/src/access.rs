//! Data authority management (paper §IV-C): sensitive sensor data is
//! AES-encrypted before it reaches the transparent ledger; only key
//! holders can read it.

use biot_crypto::aes::{Aes, AesError, AesKey};
use biot_crypto::rng::random_iv;
use biot_tangle::tx::Payload;
use rand::Rng;
use std::fmt;

/// Whether a device's readings need confidentiality.
///
/// "The function of each device is relatively fixed. For those devices
/// whose collected non-sensitive data, they do not need to encrypt sensor
/// data" (§IV-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sensitivity {
    /// Posted in the clear.
    Public,
    /// Encrypted under the distributed session key.
    Sensitive,
}

/// Errors from opening a protected payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// The payload is encrypted but this protector holds no key.
    NoKey,
    /// Decryption failed (wrong key or corrupted ciphertext).
    Decrypt(AesError),
    /// The payload variant carries no sensor data.
    NotData,
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::NoKey => write!(f, "no session key held for encrypted data"),
            AccessError::Decrypt(e) => write!(f, "decryption failed: {e}"),
            AccessError::NotData => write!(f, "payload carries no sensor data"),
        }
    }
}

impl std::error::Error for AccessError {}

/// Seals and opens sensor readings according to a device's sensitivity
/// class and (optionally held) session key.
///
/// # Examples
///
/// ```
/// use biot_core::access::{DataProtector, Sensitivity};
/// use biot_crypto::aes::AesKey;
///
/// let key = AesKey::Aes256([7; 32]);
/// let mut rng = rand::thread_rng();
///
/// let sensor = DataProtector::sensitive(key.clone());
/// let payload = sensor.seal(b"pressure=2.4bar", &mut rng);
/// // An authorized consumer with the key can read it…
/// let consumer = DataProtector::sensitive(key);
/// assert_eq!(consumer.open(&payload).unwrap(), b"pressure=2.4bar");
/// // …an outsider cannot.
/// let outsider = DataProtector::public();
/// assert!(outsider.open(&payload).is_err());
/// ```
#[derive(Clone)]
pub struct DataProtector {
    sensitivity: Sensitivity,
    key: Option<AesKey>,
}

impl fmt::Debug for DataProtector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataProtector")
            .field("sensitivity", &self.sensitivity)
            .field("has_key", &self.key.is_some())
            .finish()
    }
}

impl DataProtector {
    /// A protector for non-sensitive data: readings pass through in the
    /// clear.
    pub fn public() -> Self {
        Self {
            sensitivity: Sensitivity::Public,
            key: None,
        }
    }

    /// A protector for sensitive data holding the distributed session key.
    pub fn sensitive(key: AesKey) -> Self {
        Self {
            sensitivity: Sensitivity::Sensitive,
            key: Some(key),
        }
    }

    /// The sensitivity class.
    pub fn sensitivity(&self) -> Sensitivity {
        self.sensitivity
    }

    /// Installs or rotates the session key (a re-run of the Fig 4
    /// handshake), upgrading the protector to sensitive.
    pub fn install_key(&mut self, key: AesKey) {
        self.key = Some(key);
        self.sensitivity = Sensitivity::Sensitive;
    }

    /// Wraps a sensor reading into a ledger payload: plaintext for public
    /// devices, AES-CBC ciphertext with a fresh IV for sensitive ones.
    ///
    /// # Panics
    ///
    /// Panics if the protector is [`Sensitivity::Sensitive`] but holds no
    /// key — construct such devices via [`DataProtector::sensitive`] or
    /// [`install_key`](Self::install_key) first.
    pub fn seal<R: Rng + ?Sized>(&self, reading: &[u8], rng: &mut R) -> Payload {
        match self.sensitivity {
            Sensitivity::Public => Payload::Data(reading.to_vec()),
            Sensitivity::Sensitive => {
                let key = self
                    .key
                    .as_ref()
                    .expect("sensitive protector must hold a key");
                let iv = random_iv(rng);
                let ciphertext = Aes::new(key).encrypt_cbc(reading, &iv);
                Payload::EncryptedData { iv, ciphertext }
            }
        }
    }

    /// Recovers the sensor reading from a ledger payload.
    ///
    /// # Errors
    ///
    /// * [`AccessError::NotData`] for non-sensor payloads.
    /// * [`AccessError::NoKey`] when the payload is encrypted and no key is
    ///   held — the confidentiality guarantee in action.
    /// * [`AccessError::Decrypt`] for a wrong key or corrupted ciphertext.
    pub fn open(&self, payload: &Payload) -> Result<Vec<u8>, AccessError> {
        match payload {
            Payload::Data(d) => Ok(d.clone()),
            Payload::EncryptedData { iv, ciphertext } => {
                let key = self.key.as_ref().ok_or(AccessError::NoKey)?;
                Aes::new(key)
                    .decrypt_cbc(ciphertext, iv)
                    .map_err(AccessError::Decrypt)
            }
            _ => Err(AccessError::NotData),
        }
    }
}

/// Epoch-based key rotation on top of a single distributed master key.
///
/// The Fig 4 handshake distributes one symmetric key per device. Rather
/// than re-running the handshake to rotate keys, both sides derive
/// per-epoch keys from the master with HKDF — forward rotation without
/// extra round trips. (An extension beyond the paper; its §IV-C notes the
/// scheme "is flexible to update symmetric keys if needed".)
///
/// # Examples
///
/// ```
/// use biot_core::access::EpochKeyring;
/// use biot_crypto::aes::AesKey;
///
/// let master = AesKey::Aes256([9; 32]);
/// let device = EpochKeyring::new(master.clone(), b"factory-7");
/// let consumer = EpochKeyring::new(master, b"factory-7");
/// assert_eq!(
///     device.key_for_epoch(3).as_bytes(),
///     consumer.key_for_epoch(3).as_bytes()
/// );
/// assert_ne!(
///     device.key_for_epoch(3).as_bytes(),
///     device.key_for_epoch(4).as_bytes()
/// );
/// ```
#[derive(Clone)]
pub struct EpochKeyring {
    master: AesKey,
    context: Vec<u8>,
}

impl fmt::Debug for EpochKeyring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochKeyring")
            .field("context_len", &self.context.len())
            .finish()
    }
}

impl EpochKeyring {
    /// Creates a keyring over a distributed master key and a deployment
    /// context string (bound into every derived key).
    pub fn new(master: AesKey, context: &[u8]) -> Self {
        Self {
            master,
            context: context.to_vec(),
        }
    }

    /// Derives the AES-256 key for `epoch`.
    pub fn key_for_epoch(&self, epoch: u64) -> AesKey {
        let mut info = self.context.clone();
        info.extend_from_slice(b"|epoch|");
        info.extend_from_slice(&epoch.to_be_bytes());
        let okm = biot_crypto::kdf::hkdf(None, self.master.as_bytes(), &info, 32);
        AesKey::from_bytes(&okm).expect("32-byte HKDF output is a valid key")
    }

    /// A [`DataProtector`] sealed to `epoch`.
    pub fn protector_for_epoch(&self, epoch: u64) -> DataProtector {
        DataProtector::sensitive(self.key_for_epoch(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biot_tangle::tx::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epoch_keys_rotate_and_agree() {
        let mut rng = StdRng::seed_from_u64(10);
        let master = AesKey::Aes256([3; 32]);
        let a = EpochKeyring::new(master.clone(), b"line-1");
        let b = EpochKeyring::new(master.clone(), b"line-1");
        let other_ctx = EpochKeyring::new(master, b"line-2");
        // Same master+context+epoch → same key on both sides.
        let sealer = a.protector_for_epoch(7);
        let opener = b.protector_for_epoch(7);
        let payload = sealer.seal(b"batch 42 recipe", &mut rng);
        assert_eq!(opener.open(&payload).unwrap(), b"batch 42 recipe");
        // A different epoch or context cannot read it.
        for wrong in [a.protector_for_epoch(8), other_ctx.protector_for_epoch(7)] {
            match wrong.open(&payload) {
                Err(_) => {}
                Ok(pt) => assert_ne!(pt, b"batch 42 recipe".to_vec()),
            }
        }
    }

    #[test]
    fn epoch_keys_differ_from_master() {
        let master = AesKey::Aes256([5; 32]);
        let ring = EpochKeyring::new(master.clone(), b"ctx");
        assert_ne!(ring.key_for_epoch(0).as_bytes(), master.as_bytes());
    }

    fn key(b: u8) -> AesKey {
        AesKey::Aes256([b; 32])
    }

    #[test]
    fn public_data_passes_through() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = DataProtector::public();
        let payload = p.seal(b"temp=20C", &mut rng);
        assert_eq!(payload, Payload::Data(b"temp=20C".to_vec()));
        assert_eq!(p.open(&payload).unwrap(), b"temp=20C");
    }

    #[test]
    fn sensitive_data_is_ciphertext_on_ledger() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = DataProtector::sensitive(key(1));
        let payload = p.seal(b"formula=secret", &mut rng);
        match &payload {
            Payload::EncryptedData { ciphertext, .. } => {
                assert!(!ciphertext
                    .windows(b"secret".len())
                    .any(|w| w == b"secret"));
            }
            other => panic!("expected encrypted payload, got {other:?}"),
        }
        assert_eq!(p.open(&payload).unwrap(), b"formula=secret");
    }

    #[test]
    fn key_holder_reads_outsider_cannot() {
        let mut rng = StdRng::seed_from_u64(3);
        let device = DataProtector::sensitive(key(1));
        let payload = device.seal(b"secret", &mut rng);
        let authorized = DataProtector::sensitive(key(1));
        assert_eq!(authorized.open(&payload).unwrap(), b"secret");
        let no_key = DataProtector::public();
        assert_eq!(no_key.open(&payload), Err(AccessError::NoKey));
        let wrong_key = DataProtector::sensitive(key(2));
        assert!(matches!(
            wrong_key.open(&payload),
            Err(AccessError::Decrypt(_)) | Ok(_)
        ));
        if let Ok(pt) = wrong_key.open(&payload) {
            assert_ne!(pt, b"secret");
        }
    }

    #[test]
    fn fresh_iv_per_seal() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = DataProtector::sensitive(key(1));
        let a = p.seal(b"same reading", &mut rng);
        let b = p.seal(b"same reading", &mut rng);
        assert_ne!(a, b, "equal plaintexts must not produce equal payloads");
    }

    #[test]
    fn install_key_upgrades_to_sensitive() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = DataProtector::public();
        assert_eq!(p.sensitivity(), Sensitivity::Public);
        p.install_key(key(3));
        assert_eq!(p.sensitivity(), Sensitivity::Sensitive);
        let payload = p.seal(b"now secret", &mut rng);
        assert!(matches!(payload, Payload::EncryptedData { .. }));
    }

    #[test]
    fn non_data_payloads_rejected() {
        let p = DataProtector::public();
        let spend = Payload::Spend {
            token: [0; 32],
            to: NodeId([0; 32]),
        };
        assert_eq!(p.open(&spend), Err(AccessError::NotData));
    }

    #[test]
    #[should_panic]
    fn sensitive_without_key_panics_on_seal() {
        let mut rng = StdRng::seed_from_u64(6);
        // Construct an invalid state deliberately via install-then-strip is
        // impossible through the public API; simulate by building a public
        // protector and forcing sensitivity. The only route is internal, so
        // we exercise the panic through a sensitive protector with a
        // stripped key using the struct literal in this test module.
        let p = DataProtector {
            sensitivity: Sensitivity::Sensitive,
            key: None,
        };
        let _ = p.seal(b"x", &mut rng);
    }
}
