//! Token ownership: who may spend what.
//!
//! The tangle's conflict rule (one spend per token, §III) stops a node
//! from spending the *same* token twice — but says nothing about who may
//! spend it in the first place. Without an ownership check, any
//! authorized device could race the real owner and spend their token
//! first. [`TokenLedger`] closes that gap: the manager grants tokens to
//! devices (an operator action, like authorization), and gateways refuse
//! a spend whose issuer is not the current owner.

use biot_tangle::tx::{NodeId, Payload, Transaction};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Why a spend was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenError {
    /// The token was never granted to anyone.
    UnknownToken([u8; 32]),
    /// The issuer is not the token's current owner.
    NotOwner {
        /// Who tried to spend.
        spender: NodeId,
        /// Who actually owns the token.
        owner: NodeId,
    },
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenError::UnknownToken(_) => write!(f, "token was never granted"),
            TokenError::NotOwner { spender, owner } => {
                write!(f, "{spender} tried to spend a token owned by {owner}")
            }
        }
    }
}

impl std::error::Error for TokenError {}

/// Tracks token ownership: grants (operator action) and transfers
/// (accepted spends).
///
/// # Examples
///
/// ```
/// use biot_core::tokens::TokenLedger;
/// use biot_tangle::tx::NodeId;
///
/// let mut ledger = TokenLedger::new();
/// let token = [7u8; 32];
/// let alice = NodeId([1; 32]);
/// let bob = NodeId([2; 32]);
/// ledger.grant(token, alice);
/// assert_eq!(ledger.owner_of(&token), Some(alice));
/// // An accepted spend moves ownership.
/// ledger.transfer(token, bob);
/// assert_eq!(ledger.owner_of(&token), Some(bob));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TokenLedger {
    owners: HashMap<[u8; 32], NodeId>,
}

impl TokenLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `token` to `owner` (manager/operator action, analogous to
    /// device authorization). Re-granting replaces the owner.
    pub fn grant(&mut self, token: [u8; 32], owner: NodeId) {
        self.owners.insert(token, owner);
    }

    /// Current owner of `token`, if granted.
    pub fn owner_of(&self, token: &[u8; 32]) -> Option<NodeId> {
        self.owners.get(token).copied()
    }

    /// Number of granted tokens.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when no tokens are granted.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Validates that `tx` is allowed to spend what it spends.
    ///
    /// Non-spend payloads pass trivially.
    ///
    /// # Errors
    ///
    /// [`TokenError::UnknownToken`] for a never-granted token,
    /// [`TokenError::NotOwner`] when the issuer is not the current owner.
    pub fn validate(&self, tx: &Transaction) -> Result<(), TokenError> {
        let Payload::Spend { token, .. } = &tx.payload else {
            return Ok(());
        };
        match self.owners.get(token) {
            None => Err(TokenError::UnknownToken(*token)),
            Some(owner) if *owner == tx.issuer => Ok(()),
            Some(owner) => Err(TokenError::NotOwner {
                spender: tx.issuer,
                owner: *owner,
            }),
        }
    }

    /// Records an accepted spend: ownership moves to the recipient.
    pub fn transfer(&mut self, token: [u8; 32], to: NodeId) {
        self.owners.insert(token, to);
    }

    /// Applies an accepted transaction (no-op for non-spends).
    pub fn apply(&mut self, tx: &Transaction) {
        if let Payload::Spend { token, to } = &tx.payload {
            self.transfer(*token, *to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biot_tangle::tx::TransactionBuilder;

    fn node(n: u8) -> NodeId {
        NodeId([n; 32])
    }

    fn spend(issuer: NodeId, token: [u8; 32], to: NodeId) -> Transaction {
        TransactionBuilder::new(issuer)
            .payload(Payload::Spend { token, to })
            .build()
    }

    #[test]
    fn owner_may_spend_stranger_may_not() {
        let mut ledger = TokenLedger::new();
        let token = [1u8; 32];
        ledger.grant(token, node(1));
        assert!(ledger.validate(&spend(node(1), token, node(2))).is_ok());
        assert_eq!(
            ledger.validate(&spend(node(9), token, node(9))),
            Err(TokenError::NotOwner {
                spender: node(9),
                owner: node(1)
            })
        );
    }

    #[test]
    fn ungranted_token_rejected() {
        let ledger = TokenLedger::new();
        let token = [2u8; 32];
        assert_eq!(
            ledger.validate(&spend(node(1), token, node(2))),
            Err(TokenError::UnknownToken(token))
        );
    }

    #[test]
    fn apply_moves_ownership() {
        let mut ledger = TokenLedger::new();
        let token = [3u8; 32];
        ledger.grant(token, node(1));
        let tx = spend(node(1), token, node(2));
        ledger.validate(&tx).unwrap();
        ledger.apply(&tx);
        assert_eq!(ledger.owner_of(&token), Some(node(2)));
        // The previous owner can no longer spend it.
        assert!(ledger.validate(&spend(node(1), token, node(3))).is_err());
        // The new owner could (the tangle's one-spend rule is a separate,
        // stricter layer).
        assert!(ledger.validate(&spend(node(2), token, node(3))).is_ok());
    }

    #[test]
    fn non_spend_payloads_pass() {
        let ledger = TokenLedger::new();
        let tx = TransactionBuilder::new(node(1))
            .payload(Payload::Data(b"reading".to_vec()))
            .build();
        assert!(ledger.validate(&tx).is_ok());
        assert!(ledger.is_empty());
    }

    #[test]
    fn regrant_replaces_owner() {
        let mut ledger = TokenLedger::new();
        let token = [4u8; 32];
        ledger.grant(token, node(1));
        ledger.grant(token, node(2));
        assert_eq!(ledger.owner_of(&token), Some(node(2)));
        assert_eq!(ledger.len(), 1);
    }
}
