//! Hash-prefix proof-of-work (paper Eqn 6).
//!
//! A node bundles a new transaction with its two chosen tips by searching
//! for a nonce such that
//! `SHA-256(preimage || nonce)` has at least `D` leading zero bits, where
//! `D` is the node's current difficulty from the credit-based mechanism.
//!
//! Three execution modes exist:
//!
//! * [`solve`] — a deterministic single-threaded nonce search on the
//!   host CPU, used by the shape-validation benches (Fig 7).
//! * [`solve_parallel`] — the same search sharded across OS threads
//!   with an early-exit flag; the hot path for real mining.
//! * [`sample_trials`] — draws how many hash attempts a search *would*
//!   take from the geometric distribution, for virtual-time experiments.
//!
//! Both real searches hash through a SHA-256 **midstate**: the fixed
//! bundle preimage is compressed once, and each trial only absorbs the
//! 8-byte nonce plus padding (one or two compressions instead of
//! `⌈(len+8)/64⌉+1`).

use biot_crypto::sha256::{leading_zero_bits, Midstate, Sha256};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A proof-of-work difficulty: required number of leading zero bits.
///
/// The paper's prototype uses difficulties 1–14 on a Raspberry Pi 3B with
/// an initial value of 11 (§VI-A).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub struct Difficulty(u32);

impl Difficulty {
    /// Paper's minimum difficulty.
    pub const MIN: Difficulty = Difficulty(1);
    /// Paper's maximum difficulty for the Pi experiments.
    pub const MAX: Difficulty = Difficulty(14);
    /// Paper's initial difficulty (§VI-A).
    pub const INITIAL: Difficulty = Difficulty(11);

    /// Creates a difficulty clamped to `[MIN, MAX]`.
    pub fn new(bits: u32) -> Self {
        Difficulty(bits.clamp(Self::MIN.0, Self::MAX.0))
    }

    /// Creates a difficulty without clamping (for benches exploring the
    /// full range).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 255 (the SHA-256 digest length).
    pub fn unclamped(bits: u32) -> Self {
        assert!((1..=255).contains(&bits), "difficulty out of hash range");
        Difficulty(bits)
    }

    /// Required leading zero bits.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Expected number of hash evaluations to find a valid nonce: `2^D`.
    pub fn expected_trials(self) -> f64 {
        (self.0 as f64).exp2()
    }
}

impl fmt::Display for Difficulty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// The outcome of a successful nonce search.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowSolution {
    /// The found nonce.
    pub nonce: u64,
    /// The qualifying digest.
    pub hash: [u8; 32],
    /// Number of hash evaluations performed (for calibration).
    pub trials: u64,
}

/// Searches for a nonce satisfying `difficulty`, starting from
/// `start_nonce` and scanning upward.
///
/// # Examples
///
/// ```
/// use biot_core::pow::{solve, verify, Difficulty};
///
/// let d = Difficulty::new(8);
/// let solution = solve(b"tx-bundle", d, 0);
/// assert!(verify(b"tx-bundle", solution.nonce, d));
/// ```
pub fn solve(preimage: &[u8], difficulty: Difficulty, start_nonce: u64) -> PowSolution {
    let hasher = PowHasher::new(preimage);
    let mut nonce = start_nonce;
    let mut trials = 0u64;
    loop {
        let hash = hasher.hash(nonce);
        trials += 1;
        if leading_zero_bits(&hash) >= difficulty.bits() {
            return PowSolution { nonce, hash, trials };
        }
        nonce = nonce.wrapping_add(1);
    }
}

/// How often a parallel worker polls the shared stop flag, in trials.
///
/// A power of two so the check compiles to a mask; 64 trials at
/// difficulty 14 is ~0.4 % of the expected search, so the wasted work
/// after another worker wins is negligible.
const STOP_POLL_INTERVAL: u64 = 64;

/// Searches for a nonce satisfying `difficulty` with `threads` workers
/// sharding the nonce space.
///
/// Worker `i` scans the arithmetic progression
/// `start_nonce + i, start_nonce + i + threads, …`, so the union of all
/// workers covers exactly the nonces [`solve`] would visit. The first
/// worker to find a solution raises an [`AtomicBool`] and the rest stop
/// at their next poll; `trials` aggregates the hash evaluations of
/// **all** workers, keeping the credit-calibration semantics of
/// [`PowSolution::trials`].
///
/// `threads == 0` or `1` falls back to the deterministic single-threaded
/// [`solve`]. With more threads the returned nonce may differ from
/// `solve`'s (a later shard can win the race), but it always verifies.
///
/// # Examples
///
/// ```
/// use biot_core::pow::{solve_parallel, verify, Difficulty};
///
/// let d = Difficulty::new(8);
/// let solution = solve_parallel(b"tx-bundle", d, 4);
/// assert!(verify(b"tx-bundle", solution.nonce, d));
/// ```
pub fn solve_parallel(preimage: &[u8], difficulty: Difficulty, threads: usize) -> PowSolution {
    if threads <= 1 {
        return solve(preimage, difficulty, 0);
    }
    let hasher = PowHasher::new(preimage);
    let found = AtomicBool::new(false);
    let total_trials = AtomicU64::new(0);
    let solution = std::sync::Mutex::new(None::<PowSolution>);
    std::thread::scope(|scope| {
        for worker in 0..threads as u64 {
            let hasher = &hasher;
            let found = &found;
            let total_trials = &total_trials;
            let solution = &solution;
            scope.spawn(move || {
                let mut nonce = worker;
                let mut trials = 0u64;
                loop {
                    if trials.is_multiple_of(STOP_POLL_INTERVAL) && found.load(Ordering::Relaxed) {
                        break;
                    }
                    let hash = hasher.hash(nonce);
                    trials += 1;
                    if leading_zero_bits(&hash) >= difficulty.bits() {
                        found.store(true, Ordering::Relaxed);
                        let mut slot = solution.lock().expect("solution lock");
                        // Keep the lowest winning nonce for reproducibility
                        // when two workers finish in the same window.
                        if slot.as_ref().is_none_or(|s| nonce < s.nonce) {
                            *slot = Some(PowSolution { nonce, hash, trials: 0 });
                        }
                        break;
                    }
                    nonce = nonce.wrapping_add(threads as u64);
                }
                total_trials.fetch_add(trials, Ordering::Relaxed);
            });
        }
    });
    let mut sol = solution
        .into_inner()
        .expect("solution lock")
        .expect("some worker must find a solution");
    sol.trials = total_trials.into_inner();
    sol
}

/// Verifies that `nonce` satisfies `difficulty` for `preimage`.
pub fn verify(preimage: &[u8], nonce: u64, difficulty: Difficulty) -> bool {
    leading_zero_bits(&pow_hash(preimage, nonce)) >= difficulty.bits()
}

/// A reusable PoW hasher that compresses `preimage` once and replays
/// only the nonce suffix per trial (SHA-256 midstate mining).
#[derive(Clone, Debug)]
pub struct PowHasher {
    midstate: Midstate,
}

impl PowHasher {
    /// Absorbs the fixed preimage prefix.
    pub fn new(preimage: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(preimage);
        Self { midstate: h.midstate() }
    }

    /// The PoW digest for one nonce trial.
    pub fn hash(&self, nonce: u64) -> [u8; 32] {
        let mut h = Sha256::from_midstate(&self.midstate);
        h.update(&nonce.to_be_bytes());
        h.finalize()
    }
}

/// The PoW digest: `SHA-256(preimage || nonce_be)` (Eqn 6 with the two
/// parent hashes folded into `preimage`).
///
/// One-shot form for verification paths; streams the nonce into the
/// hasher rather than concatenating buffers. Mining loops should prefer
/// [`PowHasher`], which re-compresses the preimage only once.
pub fn pow_hash(preimage: &[u8], nonce: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(preimage);
    h.update(&nonce.to_be_bytes());
    h.finalize()
}

/// How many threads mining should use (the knob behind
/// [`solve_parallel`] at the node layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiningConfig {
    /// Worker threads for nonce searches. `0` or `1` selects the
    /// deterministic single-threaded solver.
    pub threads: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        // Deterministic by default: simulations and tests rely on
        // reproducible nonce choices unless a caller opts into threads.
        Self { threads: 1 }
    }
}

impl MiningConfig {
    /// A config using every available CPU (as reported by the OS).
    pub fn all_cores() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self { threads }
    }

    /// Runs a nonce search according to this config.
    pub fn solve(&self, preimage: &[u8], difficulty: Difficulty) -> PowSolution {
        if self.threads <= 1 {
            solve(preimage, difficulty, 0)
        } else {
            solve_parallel(preimage, difficulty, self.threads)
        }
    }
}

/// Samples how many hash attempts a search at `difficulty` would take —
/// geometric distribution with success probability `2^-D` — without doing
/// the work. Used by virtual-time simulation.
///
/// The result is at least 1.
pub fn sample_trials<R: Rng + ?Sized>(difficulty: Difficulty, rng: &mut R) -> u64 {
    let p = 1.0 / difficulty.expected_trials();
    // Inverse-CDF of the geometric distribution.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let trials = (u.ln() / (1.0 - p).ln()).ceil();
    trials.max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn difficulty_clamping() {
        assert_eq!(Difficulty::new(0), Difficulty::MIN);
        assert_eq!(Difficulty::new(99), Difficulty::MAX);
        assert_eq!(Difficulty::new(11), Difficulty::INITIAL);
        assert_eq!(Difficulty::unclamped(64).bits(), 64);
    }

    #[test]
    #[should_panic]
    fn unclamped_zero_panics() {
        Difficulty::unclamped(0);
    }

    #[test]
    fn expected_trials_doubles_per_bit() {
        assert_eq!(Difficulty::new(1).expected_trials(), 2.0);
        assert_eq!(Difficulty::new(11).expected_trials(), 2048.0);
    }

    #[test]
    fn solve_finds_valid_nonce() {
        for d in [1u32, 4, 8, 12] {
            let diff = Difficulty::new(d);
            let sol = solve(b"test preimage", diff, 0);
            assert!(verify(b"test preimage", sol.nonce, diff), "D={d}");
            assert!(sol.trials >= 1);
            assert_eq!(sol.hash, pow_hash(b"test preimage", sol.nonce));
        }
    }

    #[test]
    fn harder_difficulty_also_satisfies_easier() {
        let sol = solve(b"x", Difficulty::new(10), 0);
        assert!(verify(b"x", sol.nonce, Difficulty::new(5)));
    }

    #[test]
    fn verify_rejects_bad_nonce() {
        let diff = Difficulty::new(12);
        let sol = solve(b"y", diff, 0);
        // The nonce immediately before the solution cannot also be a
        // solution (solve scans upward from 0 and returns the first hit),
        // unless the solution was nonce 0 itself.
        if sol.nonce > 0 {
            assert!(!verify(b"y", sol.nonce - 1, diff));
        }
        assert!(!verify(b"different preimage", sol.nonce, diff));
    }

    #[test]
    fn start_nonce_is_respected() {
        let sol = solve(b"z", Difficulty::new(4), 1_000_000);
        assert!(sol.nonce >= 1_000_000);
    }

    #[test]
    fn trials_scale_with_difficulty() {
        // Average over several preimages: D=10 should need roughly 2^10
        // trials, far more than D=2.
        let mut easy = 0u64;
        let mut hard = 0u64;
        for i in 0..20u32 {
            let pre = i.to_be_bytes();
            easy += solve(&pre, Difficulty::new(2), 0).trials;
            hard += solve(&pre, Difficulty::new(10), 0).trials;
        }
        assert!(hard > easy * 10, "hard {hard} vs easy {easy}");
    }

    #[test]
    fn sampled_trials_mean_close_to_expected() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Difficulty::new(10); // expected 1024
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_trials(d, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1024.0).abs() < 60.0,
            "sampled mean {mean} far from 1024"
        );
    }

    #[test]
    fn sampled_trials_at_least_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(sample_trials(Difficulty::new(1), &mut rng) >= 1);
        }
    }

    #[test]
    fn display_form() {
        assert_eq!(Difficulty::new(11).to_string(), "D11");
    }

    #[test]
    fn pow_hasher_matches_pow_hash() {
        // Preimage lengths straddling the 56- and 64-byte padding
        // boundaries, where the midstate buffering is trickiest.
        for len in [0usize, 1, 7, 8, 55, 56, 57, 63, 64, 65, 127, 128, 200] {
            let preimage = vec![0x5Au8; len];
            let hasher = PowHasher::new(&preimage);
            for nonce in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
                assert_eq!(
                    hasher.hash(nonce),
                    pow_hash(&preimage, nonce),
                    "len {len} nonce {nonce}"
                );
            }
        }
    }

    #[test]
    fn solve_parallel_finds_verifiable_nonce() {
        for threads in [2usize, 3, 4] {
            let diff = Difficulty::new(10);
            let sol = solve_parallel(b"parallel preimage", diff, threads);
            assert!(
                verify(b"parallel preimage", sol.nonce, diff),
                "threads {threads}"
            );
            assert!(sol.trials >= 1);
            assert_eq!(sol.hash, pow_hash(b"parallel preimage", sol.nonce));
        }
    }

    #[test]
    fn solve_parallel_single_thread_is_deterministic_fallback() {
        let diff = Difficulty::new(8);
        let serial = solve(b"fallback", diff, 0);
        let parallel = solve_parallel(b"fallback", diff, 1);
        assert_eq!(serial.nonce, parallel.nonce);
        assert_eq!(serial.hash, parallel.hash);
        assert_eq!(serial.trials, parallel.trials);
    }

    #[test]
    fn solve_and_solve_parallel_verify_under_same_difficulty() {
        let diff = Difficulty::new(12);
        let serial = solve(b"same difficulty", diff, 0);
        let parallel = solve_parallel(b"same difficulty", diff, 4);
        assert!(verify(b"same difficulty", serial.nonce, diff));
        assert!(verify(b"same difficulty", parallel.nonce, diff));
    }

    #[test]
    fn mining_config_routes_by_thread_count() {
        let diff = Difficulty::new(8);
        let single = MiningConfig::default();
        assert_eq!(single.threads, 1);
        let sol = single.solve(b"knob", diff);
        assert_eq!(sol.nonce, solve(b"knob", diff, 0).nonce);
        let multi = MiningConfig { threads: 4 };
        assert!(verify(b"knob", multi.solve(b"knob", diff).nonce, diff));
        assert!(MiningConfig::all_cores().threads >= 1);
    }

    #[test]
    fn parallel_trials_aggregate_all_workers() {
        // Average over preimages: total trials across workers should be
        // in the same regime as the serial search (2^D expected), not a
        // fraction of it — proving all workers' counts are summed.
        let mut serial_total = 0u64;
        let mut parallel_total = 0u64;
        for i in 0..20u32 {
            let pre = i.to_be_bytes();
            serial_total += solve(&pre, Difficulty::new(8), 0).trials;
            parallel_total += solve_parallel(&pre, Difficulty::new(8), 4).trials;
        }
        // Parallel overshoots serial (workers past the winner do a few
        // extra trials) but must be within a small factor, and at least
        // a meaningful fraction of the serial count.
        assert!(parallel_total >= serial_total / 4, "parallel {parallel_total} vs serial {serial_total}");
        assert!(parallel_total <= serial_total * 8, "parallel {parallel_total} vs serial {serial_total}");
    }
}
