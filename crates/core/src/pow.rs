//! Hash-prefix proof-of-work (paper Eqn 6).
//!
//! A node bundles a new transaction with its two chosen tips by searching
//! for a nonce such that
//! `SHA-256(preimage || nonce)` has at least `D` leading zero bits, where
//! `D` is the node's current difficulty from the credit-based mechanism.
//!
//! Two execution modes exist:
//!
//! * [`solve`] — a real nonce search on the host CPU, used by the
//!   shape-validation benches (Fig 7).
//! * [`sample_trials`] — draws how many hash attempts a search *would*
//!   take from the geometric distribution, for virtual-time experiments.

use biot_crypto::sha256::{leading_zero_bits, sha256_concat};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A proof-of-work difficulty: required number of leading zero bits.
///
/// The paper's prototype uses difficulties 1–14 on a Raspberry Pi 3B with
/// an initial value of 11 (§VI-A).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub struct Difficulty(u32);

impl Difficulty {
    /// Paper's minimum difficulty.
    pub const MIN: Difficulty = Difficulty(1);
    /// Paper's maximum difficulty for the Pi experiments.
    pub const MAX: Difficulty = Difficulty(14);
    /// Paper's initial difficulty (§VI-A).
    pub const INITIAL: Difficulty = Difficulty(11);

    /// Creates a difficulty clamped to `[MIN, MAX]`.
    pub fn new(bits: u32) -> Self {
        Difficulty(bits.clamp(Self::MIN.0, Self::MAX.0))
    }

    /// Creates a difficulty without clamping (for benches exploring the
    /// full range).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 255 (the SHA-256 digest length).
    pub fn unclamped(bits: u32) -> Self {
        assert!((1..=255).contains(&bits), "difficulty out of hash range");
        Difficulty(bits)
    }

    /// Required leading zero bits.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Expected number of hash evaluations to find a valid nonce: `2^D`.
    pub fn expected_trials(self) -> f64 {
        (self.0 as f64).exp2()
    }
}

impl fmt::Display for Difficulty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// The outcome of a successful nonce search.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowSolution {
    /// The found nonce.
    pub nonce: u64,
    /// The qualifying digest.
    pub hash: [u8; 32],
    /// Number of hash evaluations performed (for calibration).
    pub trials: u64,
}

/// Searches for a nonce satisfying `difficulty`, starting from
/// `start_nonce` and scanning upward.
///
/// # Examples
///
/// ```
/// use biot_core::pow::{solve, verify, Difficulty};
///
/// let d = Difficulty::new(8);
/// let solution = solve(b"tx-bundle", d, 0);
/// assert!(verify(b"tx-bundle", solution.nonce, d));
/// ```
pub fn solve(preimage: &[u8], difficulty: Difficulty, start_nonce: u64) -> PowSolution {
    let mut nonce = start_nonce;
    let mut trials = 0u64;
    loop {
        let hash = pow_hash(preimage, nonce);
        trials += 1;
        if leading_zero_bits(&hash) >= difficulty.bits() {
            return PowSolution { nonce, hash, trials };
        }
        nonce = nonce.wrapping_add(1);
    }
}

/// Verifies that `nonce` satisfies `difficulty` for `preimage`.
pub fn verify(preimage: &[u8], nonce: u64, difficulty: Difficulty) -> bool {
    leading_zero_bits(&pow_hash(preimage, nonce)) >= difficulty.bits()
}

/// The PoW digest: `SHA-256(preimage || nonce_be)` (Eqn 6 with the two
/// parent hashes folded into `preimage`).
pub fn pow_hash(preimage: &[u8], nonce: u64) -> [u8; 32] {
    sha256_concat(&[preimage, &nonce.to_be_bytes()])
}

/// Samples how many hash attempts a search at `difficulty` would take —
/// geometric distribution with success probability `2^-D` — without doing
/// the work. Used by virtual-time simulation.
///
/// The result is at least 1.
pub fn sample_trials<R: Rng + ?Sized>(difficulty: Difficulty, rng: &mut R) -> u64 {
    let p = 1.0 / difficulty.expected_trials();
    // Inverse-CDF of the geometric distribution.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let trials = (u.ln() / (1.0 - p).ln()).ceil();
    trials.max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn difficulty_clamping() {
        assert_eq!(Difficulty::new(0), Difficulty::MIN);
        assert_eq!(Difficulty::new(99), Difficulty::MAX);
        assert_eq!(Difficulty::new(11), Difficulty::INITIAL);
        assert_eq!(Difficulty::unclamped(64).bits(), 64);
    }

    #[test]
    #[should_panic]
    fn unclamped_zero_panics() {
        Difficulty::unclamped(0);
    }

    #[test]
    fn expected_trials_doubles_per_bit() {
        assert_eq!(Difficulty::new(1).expected_trials(), 2.0);
        assert_eq!(Difficulty::new(11).expected_trials(), 2048.0);
    }

    #[test]
    fn solve_finds_valid_nonce() {
        for d in [1u32, 4, 8, 12] {
            let diff = Difficulty::new(d);
            let sol = solve(b"test preimage", diff, 0);
            assert!(verify(b"test preimage", sol.nonce, diff), "D={d}");
            assert!(sol.trials >= 1);
            assert_eq!(sol.hash, pow_hash(b"test preimage", sol.nonce));
        }
    }

    #[test]
    fn harder_difficulty_also_satisfies_easier() {
        let sol = solve(b"x", Difficulty::new(10), 0);
        assert!(verify(b"x", sol.nonce, Difficulty::new(5)));
    }

    #[test]
    fn verify_rejects_bad_nonce() {
        let diff = Difficulty::new(12);
        let sol = solve(b"y", diff, 0);
        // The nonce immediately before the solution cannot also be a
        // solution (solve scans upward from 0 and returns the first hit),
        // unless the solution was nonce 0 itself.
        if sol.nonce > 0 {
            assert!(!verify(b"y", sol.nonce - 1, diff));
        }
        assert!(!verify(b"different preimage", sol.nonce, diff));
    }

    #[test]
    fn start_nonce_is_respected() {
        let sol = solve(b"z", Difficulty::new(4), 1_000_000);
        assert!(sol.nonce >= 1_000_000);
    }

    #[test]
    fn trials_scale_with_difficulty() {
        // Average over several preimages: D=10 should need roughly 2^10
        // trials, far more than D=2.
        let mut easy = 0u64;
        let mut hard = 0u64;
        for i in 0..20u32 {
            let pre = i.to_be_bytes();
            easy += solve(&pre, Difficulty::new(2), 0).trials;
            hard += solve(&pre, Difficulty::new(10), 0).trials;
        }
        assert!(hard > easy * 10, "hard {hard} vs easy {easy}");
    }

    #[test]
    fn sampled_trials_mean_close_to_expected() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Difficulty::new(10); // expected 1024
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_trials(d, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1024.0).abs() < 60.0,
            "sampled mean {mean} far from 1024"
        );
    }

    #[test]
    fn sampled_trials_at_least_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(sample_trials(Difficulty::new(1), &mut rng) >= 1);
        }
    }

    #[test]
    fn display_form() {
        assert_eq!(Difficulty::new(11).to_string(), "D11");
    }
}
