//! Symmetric secret-key distribution without a central trust server
//! (paper §IV-C, Fig 4).
//!
//! Three messages establish a shared AES session key `SK_S` between the
//! manager and an IoT device, using the nodes' existing RSA keypairs:
//!
//! ```text
//! M1  manager → device : Enc_PKd(SK_S ‖ TS ‖ nonce_a),  Sign_SKm(…)
//! M2  device  → manager: Enc_SKs(nonce_b ‖ TS+1 ‖ nonce_a ‖ Sign_SKd(nonce_b ‖ TS+1))
//! M3  manager → device : Enc_SKs(nonce_b ‖ TS+2 ‖ Sign_SKm(nonce_b ‖ TS+2))
//! ```
//!
//! * Every message is signed, so tampering is detected.
//! * `TS` bounds each message's lifetime, resisting replay.
//! * `nonce_a` is a challenge proving the device decrypted M1;
//!   `nonce_b` is a challenge proving the manager holds the same `SK_S`.
//!
//! One deviation from the figure: the paper signs the plaintext *inside*
//! the RSA envelope of M1, but `sign(SK_S‖TS‖nonce)` plus the payload
//! exceeds a small RSA modulus. We sign the *ciphertext* instead
//! (encrypt-then-sign), which provides the same integrity and origin
//! authentication and is the textbook-recommended composition.

use crate::identity::Account;
use biot_crypto::aes::{Aes, AesKey};
use biot_crypto::rng::{random_aes256_key, random_iv, random_nonce};
use biot_crypto::rsa::RsaPublicKey;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Protocol configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyDistConfig {
    /// Maximum acceptable age (or clock skew) of a message, in virtual ms.
    pub freshness_window_ms: u64,
}

impl Default for KeyDistConfig {
    fn default() -> Self {
        Self {
            freshness_window_ms: 5_000,
        }
    }
}

/// Errors raised by either side of the handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDistError {
    /// A signature failed to verify.
    BadSignature,
    /// A timestamp fell outside the freshness window (replay or skew).
    StaleTimestamp {
        /// The message's timestamp.
        got: u64,
        /// The receiver's current time.
        now: u64,
    },
    /// A challenge nonce did not match.
    NonceMismatch,
    /// Asymmetric or symmetric decryption failed.
    DecryptFailed,
    /// The message body did not parse.
    Malformed,
    /// The session is not in the right state for this message.
    WrongState,
}

impl fmt::Display for KeyDistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyDistError::BadSignature => write!(f, "signature verification failed"),
            KeyDistError::StaleTimestamp { got, now } => {
                write!(f, "stale timestamp {got} at local time {now}")
            }
            KeyDistError::NonceMismatch => write!(f, "challenge nonce mismatch"),
            KeyDistError::DecryptFailed => write!(f, "decryption failed"),
            KeyDistError::Malformed => write!(f, "malformed message"),
            KeyDistError::WrongState => write!(f, "message arrived in the wrong protocol state"),
        }
    }
}

impl std::error::Error for KeyDistError {}

/// M1: RSA envelope carrying the session key, signed by the manager.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message1 {
    /// `Enc_PKd(SK_S ‖ TS ‖ nonce_a)`.
    pub ciphertext: Vec<u8>,
    /// `Sign_SKm(ciphertext)`.
    pub signature: Vec<u8>,
}

/// M2: AES envelope proving the device decrypted M1.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message2 {
    /// CBC initialization vector.
    pub iv: [u8; 16],
    /// `Enc_SKs(nonce_b ‖ TS+1 ‖ nonce_a ‖ Sign_SKd(nonce_b ‖ TS+1))`.
    pub ciphertext: Vec<u8>,
}

/// M3: AES envelope closing the handshake.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message3 {
    /// CBC initialization vector.
    pub iv: [u8; 16],
    /// `Enc_SKs(nonce_b ‖ TS+2 ‖ Sign_SKm(nonce_b ‖ TS+2))`.
    pub ciphertext: Vec<u8>,
}

const KEY_LEN: usize = 32;
const TS_LEN: usize = 8;
const NONCE_LEN: usize = 8;

fn check_fresh(ts: u64, now: u64, cfg: &KeyDistConfig) -> Result<(), KeyDistError> {
    if ts.abs_diff(now) > cfg.freshness_window_ms {
        Err(KeyDistError::StaleTimestamp { got: ts, now })
    } else {
        Ok(())
    }
}

/// Manager-side handshake state.
pub struct ManagerSession {
    session_key: AesKey,
    nonce_a: [u8; NONCE_LEN],
    ts: u64,
    completed: bool,
}

impl fmt::Debug for ManagerSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManagerSession")
            .field("ts", &self.ts)
            .field("completed", &self.completed)
            .finish()
    }
}

impl ManagerSession {
    /// Generates a fresh session key and builds M1 for `device_pk`.
    ///
    /// `now_ms` is the manager's virtual clock; it becomes the protocol's
    /// base timestamp `TS`.
    pub fn initiate<R: Rng + ?Sized>(
        manager: &Account,
        device_pk: &RsaPublicKey,
        now_ms: u64,
        rng: &mut R,
    ) -> (Self, Message1) {
        let session_key = random_aes256_key(rng);
        let nonce_a = random_nonce(rng);
        let mut plaintext = Vec::with_capacity(KEY_LEN + TS_LEN + NONCE_LEN);
        plaintext.extend_from_slice(session_key.as_bytes());
        plaintext.extend_from_slice(&now_ms.to_be_bytes());
        plaintext.extend_from_slice(&nonce_a);
        let ciphertext = device_pk
            .encrypt(&plaintext, rng)
            .expect("48-byte payload fits any supported modulus");
        let signature = manager.sign(&ciphertext);
        (
            Self {
                session_key,
                nonce_a,
                ts: now_ms,
                completed: false,
            },
            Message1 {
                ciphertext,
                signature,
            },
        )
    }

    /// Processes the device's M2 and, if everything checks out, emits M3.
    ///
    /// # Errors
    ///
    /// Any [`KeyDistError`]; after success the session is complete and a
    /// replayed M2 yields [`KeyDistError::WrongState`].
    pub fn handle_m2<R: Rng + ?Sized>(
        &mut self,
        manager: &Account,
        device_pk: &RsaPublicKey,
        m2: &Message2,
        now_ms: u64,
        cfg: &KeyDistConfig,
        rng: &mut R,
    ) -> Result<Message3, KeyDistError> {
        if self.completed {
            return Err(KeyDistError::WrongState);
        }
        let aes = Aes::new(&self.session_key);
        let plain = aes
            .decrypt_cbc(&m2.ciphertext, &m2.iv)
            .map_err(|_| KeyDistError::DecryptFailed)?;
        if plain.len() < NONCE_LEN + TS_LEN + NONCE_LEN {
            return Err(KeyDistError::Malformed);
        }
        let nonce_b: [u8; NONCE_LEN] = plain[..NONCE_LEN].try_into().unwrap();
        let ts1 = u64::from_be_bytes(plain[NONCE_LEN..NONCE_LEN + TS_LEN].try_into().unwrap());
        let nonce_a_echo = &plain[NONCE_LEN + TS_LEN..NONCE_LEN + TS_LEN + NONCE_LEN];
        let sig = &plain[NONCE_LEN + TS_LEN + NONCE_LEN..];

        if ts1 != self.ts + 1 {
            return Err(KeyDistError::StaleTimestamp { got: ts1, now: now_ms });
        }
        check_fresh(ts1, now_ms, cfg)?;
        if !biot_crypto::sha256::ct_eq(nonce_a_echo, &self.nonce_a) {
            return Err(KeyDistError::NonceMismatch);
        }
        let mut signed = Vec::with_capacity(NONCE_LEN + TS_LEN);
        signed.extend_from_slice(&nonce_b);
        signed.extend_from_slice(&ts1.to_be_bytes());
        if !device_pk.verify(&signed, sig) {
            return Err(KeyDistError::BadSignature);
        }

        // Build M3: nonce_b ‖ TS+2 ‖ Sign_SKm(nonce_b ‖ TS+2).
        let ts2 = self.ts + 2;
        let mut m3_signed = Vec::with_capacity(NONCE_LEN + TS_LEN);
        m3_signed.extend_from_slice(&nonce_b);
        m3_signed.extend_from_slice(&ts2.to_be_bytes());
        let m3_sig = manager.sign(&m3_signed);
        let mut body = m3_signed;
        body.extend_from_slice(&m3_sig);
        let iv = random_iv(rng);
        let ciphertext = aes.encrypt_cbc(&body, &iv);
        self.completed = true;
        Ok(Message3 { iv, ciphertext })
    }

    /// The established session key, available once the handshake completed.
    pub fn session_key(&self) -> Option<&AesKey> {
        self.completed.then_some(&self.session_key)
    }

    /// True once M2 was accepted and M3 sent.
    pub fn is_complete(&self) -> bool {
        self.completed
    }
}

/// Device-side handshake state.
pub struct DeviceSession {
    session_key: AesKey,
    nonce_b: [u8; NONCE_LEN],
    ts: u64,
    completed: bool,
}

impl fmt::Debug for DeviceSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceSession")
            .field("ts", &self.ts)
            .field("completed", &self.completed)
            .finish()
    }
}

impl DeviceSession {
    /// Processes M1 from the manager and produces M2.
    ///
    /// # Errors
    ///
    /// [`KeyDistError::BadSignature`] on a forged envelope,
    /// [`KeyDistError::StaleTimestamp`] on replay,
    /// [`KeyDistError::DecryptFailed`] / [`KeyDistError::Malformed`] on
    /// corruption.
    pub fn handle_m1<R: Rng + ?Sized>(
        device: &Account,
        manager_pk: &RsaPublicKey,
        m1: &Message1,
        now_ms: u64,
        cfg: &KeyDistConfig,
        rng: &mut R,
    ) -> Result<(Self, Message2), KeyDistError> {
        if !manager_pk.verify(&m1.ciphertext, &m1.signature) {
            return Err(KeyDistError::BadSignature);
        }
        let plain = device
            .private_key()
            .decrypt(&m1.ciphertext)
            .map_err(|_| KeyDistError::DecryptFailed)?;
        if plain.len() != KEY_LEN + TS_LEN + NONCE_LEN {
            return Err(KeyDistError::Malformed);
        }
        let session_key =
            AesKey::from_bytes(&plain[..KEY_LEN]).map_err(|_| KeyDistError::Malformed)?;
        let ts = u64::from_be_bytes(plain[KEY_LEN..KEY_LEN + TS_LEN].try_into().unwrap());
        let nonce_a: [u8; NONCE_LEN] = plain[KEY_LEN + TS_LEN..].try_into().unwrap();
        check_fresh(ts, now_ms, cfg)?;

        // Build M2.
        let nonce_b = random_nonce(rng);
        let ts1 = ts + 1;
        let mut signed = Vec::with_capacity(NONCE_LEN + TS_LEN);
        signed.extend_from_slice(&nonce_b);
        signed.extend_from_slice(&ts1.to_be_bytes());
        let sig = device.sign(&signed);
        // Body layout: nonce_b ‖ ts1 ‖ nonce_a ‖ sig.
        let mut full = Vec::with_capacity(NONCE_LEN + TS_LEN + NONCE_LEN + sig.len());
        full.extend_from_slice(&nonce_b);
        full.extend_from_slice(&ts1.to_be_bytes());
        full.extend_from_slice(&nonce_a);
        full.extend_from_slice(&sig);
        let aes = Aes::new(&session_key);
        let iv = random_iv(rng);
        let ciphertext = aes.encrypt_cbc(&full, &iv);
        Ok((
            Self {
                session_key,
                nonce_b,
                ts,
                completed: false,
            },
            Message2 { iv, ciphertext },
        ))
    }

    /// Processes the manager's M3, completing the handshake.
    ///
    /// # Errors
    ///
    /// Any [`KeyDistError`]; on success the session key becomes available.
    pub fn handle_m3(
        &mut self,
        manager_pk: &RsaPublicKey,
        m3: &Message3,
        now_ms: u64,
        cfg: &KeyDistConfig,
    ) -> Result<(), KeyDistError> {
        if self.completed {
            return Err(KeyDistError::WrongState);
        }
        let aes = Aes::new(&self.session_key);
        let plain = aes
            .decrypt_cbc(&m3.ciphertext, &m3.iv)
            .map_err(|_| KeyDistError::DecryptFailed)?;
        if plain.len() < NONCE_LEN + TS_LEN {
            return Err(KeyDistError::Malformed);
        }
        let nonce_b_echo = &plain[..NONCE_LEN];
        let ts2 = u64::from_be_bytes(plain[NONCE_LEN..NONCE_LEN + TS_LEN].try_into().unwrap());
        let sig = &plain[NONCE_LEN + TS_LEN..];
        if !biot_crypto::sha256::ct_eq(nonce_b_echo, &self.nonce_b) {
            return Err(KeyDistError::NonceMismatch);
        }
        if ts2 != self.ts + 2 {
            return Err(KeyDistError::StaleTimestamp { got: ts2, now: now_ms });
        }
        check_fresh(ts2, now_ms, cfg)?;
        if !manager_pk.verify(&plain[..NONCE_LEN + TS_LEN], sig) {
            return Err(KeyDistError::BadSignature);
        }
        self.completed = true;
        Ok(())
    }

    /// The established session key, available once the handshake completed.
    pub fn session_key(&self) -> Option<&AesKey> {
        self.completed.then_some(&self.session_key)
    }

    /// True once M3 was accepted.
    pub fn is_complete(&self) -> bool {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Harness {
        manager: Account,
        device: Account,
        cfg: KeyDistConfig,
        rng: StdRng,
    }

    fn harness(seed: u64) -> Harness {
        let mut rng = StdRng::seed_from_u64(seed);
        Harness {
            manager: Account::generate(&mut rng),
            device: Account::generate(&mut rng),
            cfg: KeyDistConfig::default(),
            rng,
        }
    }

    #[test]
    fn full_handshake_establishes_matching_keys() {
        let mut h = harness(1);
        let (mut ms, m1) =
            ManagerSession::initiate(&h.manager, h.device.public_key(), 1000, &mut h.rng);
        let (mut ds, m2) = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            1005,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap();
        let m3 = ms
            .handle_m2(&h.manager, h.device.public_key(), &m2, 1010, &h.cfg, &mut h.rng)
            .unwrap();
        ds.handle_m3(h.manager.public_key(), &m3, 1015, &h.cfg).unwrap();

        assert!(ms.is_complete() && ds.is_complete());
        assert_eq!(
            ms.session_key().unwrap().as_bytes(),
            ds.session_key().unwrap().as_bytes()
        );
    }

    #[test]
    fn session_key_unavailable_before_completion() {
        let mut h = harness(2);
        let (ms, m1) =
            ManagerSession::initiate(&h.manager, h.device.public_key(), 0, &mut h.rng);
        assert!(ms.session_key().is_none());
        let (ds, _m2) = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            0,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap();
        assert!(ds.session_key().is_none());
    }

    #[test]
    fn forged_m1_rejected() {
        let mut h = harness(3);
        let imposter = Account::generate(&mut h.rng);
        let (_, m1) = ManagerSession::initiate(&imposter, h.device.public_key(), 0, &mut h.rng);
        let err = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(), // device trusts the real manager
            &m1,
            0,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap_err();
        assert_eq!(err, KeyDistError::BadSignature);
    }

    #[test]
    fn tampered_m1_rejected() {
        let mut h = harness(4);
        let (_, mut m1) =
            ManagerSession::initiate(&h.manager, h.device.public_key(), 0, &mut h.rng);
        m1.ciphertext[0] ^= 1;
        let err = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            0,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap_err();
        assert_eq!(err, KeyDistError::BadSignature);
    }

    #[test]
    fn replayed_m1_rejected_as_stale() {
        let mut h = harness(5);
        let (_, m1) = ManagerSession::initiate(&h.manager, h.device.public_key(), 0, &mut h.rng);
        // Replay far outside the freshness window.
        let err = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            60_000,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap_err();
        assert!(matches!(err, KeyDistError::StaleTimestamp { .. }));
    }

    #[test]
    fn m2_from_wrong_device_rejected() {
        let mut h = harness(6);
        let evil = Account::generate(&mut h.rng);
        let (mut ms, m1) =
            ManagerSession::initiate(&h.manager, h.device.public_key(), 0, &mut h.rng);
        let (_ds, m2) = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            1,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap();
        // Manager believes it is talking to `evil`: signature check fails.
        let err = ms
            .handle_m2(&h.manager, evil.public_key(), &m2, 2, &h.cfg, &mut h.rng)
            .unwrap_err();
        assert_eq!(err, KeyDistError::BadSignature);
    }

    #[test]
    fn replayed_m2_rejected_after_completion() {
        let mut h = harness(7);
        let (mut ms, m1) =
            ManagerSession::initiate(&h.manager, h.device.public_key(), 0, &mut h.rng);
        let (_ds, m2) = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            1,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap();
        ms.handle_m2(&h.manager, h.device.public_key(), &m2, 2, &h.cfg, &mut h.rng)
            .unwrap();
        let err = ms
            .handle_m2(&h.manager, h.device.public_key(), &m2, 3, &h.cfg, &mut h.rng)
            .unwrap_err();
        assert_eq!(err, KeyDistError::WrongState);
    }

    #[test]
    fn tampered_m3_rejected() {
        let mut h = harness(8);
        let (mut ms, m1) =
            ManagerSession::initiate(&h.manager, h.device.public_key(), 0, &mut h.rng);
        let (mut ds, m2) = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            1,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap();
        let mut m3 = ms
            .handle_m2(&h.manager, h.device.public_key(), &m2, 2, &h.cfg, &mut h.rng)
            .unwrap();
        m3.ciphertext[0] ^= 0xFF;
        let err = ds.handle_m3(h.manager.public_key(), &m3, 3, &h.cfg).unwrap_err();
        assert!(matches!(
            err,
            KeyDistError::DecryptFailed | KeyDistError::Malformed | KeyDistError::NonceMismatch
        ));
        assert!(!ds.is_complete());
    }

    #[test]
    fn m3_replay_rejected() {
        let mut h = harness(9);
        let (mut ms, m1) =
            ManagerSession::initiate(&h.manager, h.device.public_key(), 0, &mut h.rng);
        let (mut ds, m2) = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            1,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap();
        let m3 = ms
            .handle_m2(&h.manager, h.device.public_key(), &m2, 2, &h.cfg, &mut h.rng)
            .unwrap();
        ds.handle_m3(h.manager.public_key(), &m3, 3, &h.cfg).unwrap();
        assert_eq!(
            ds.handle_m3(h.manager.public_key(), &m3, 4, &h.cfg),
            Err(KeyDistError::WrongState)
        );
    }

    #[test]
    fn established_key_encrypts_sensor_data() {
        let mut h = harness(10);
        let (mut ms, m1) =
            ManagerSession::initiate(&h.manager, h.device.public_key(), 0, &mut h.rng);
        let (mut ds, m2) = DeviceSession::handle_m1(
            &h.device,
            h.manager.public_key(),
            &m1,
            1,
            &h.cfg,
            &mut h.rng,
        )
        .unwrap();
        let m3 = ms
            .handle_m2(&h.manager, h.device.public_key(), &m2, 2, &h.cfg, &mut h.rng)
            .unwrap();
        ds.handle_m3(h.manager.public_key(), &m3, 3, &h.cfg).unwrap();

        // Device encrypts, manager decrypts.
        let device_aes = Aes::new(ds.session_key().unwrap());
        let manager_aes = Aes::new(ms.session_key().unwrap());
        let iv = random_iv(&mut h.rng);
        let ct = device_aes.encrypt_cbc(b"vibration=0.3g", &iv);
        assert_eq!(manager_aes.decrypt_cbc(&ct, &iv).unwrap(), b"vibration=0.3g");
    }
}
