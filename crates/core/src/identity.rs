//! Node identities: blockchain accounts backed by RSA keypairs.
//!
//! "Each sensor will generate a blockchain account when initialized, i.e.,
//! a pair of public/secret key (PK, SK), which is the unique identifier in
//! the system" (§IV-A). The key pair signs transactions and bootstraps the
//! symmetric key distribution of §IV-C.

use biot_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use biot_tangle::tx::NodeId;
use rand::Rng;
use std::fmt;

/// Default RSA modulus size for simulated devices.
///
/// 512 bits keeps virtual-time experiments fast; real deployments would
/// use ≥ 2048.
pub const DEFAULT_KEY_BITS: usize = 512;

/// A node account: keypair plus the derived on-ledger identity.
#[derive(Clone)]
pub struct Account {
    key: RsaPrivateKey,
    id: NodeId,
}

impl fmt::Debug for Account {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Account").field("id", &self.id).finish()
    }
}

impl Account {
    /// Generates a fresh account with [`DEFAULT_KEY_BITS`].
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generate_with_bits(DEFAULT_KEY_BITS, rng)
    }

    /// Generates a fresh account with an explicit modulus size.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 128` (see [`RsaPrivateKey::generate`]).
    pub fn generate_with_bits<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        let key = RsaPrivateKey::generate(bits, rng);
        let id = NodeId(key.public().fingerprint());
        Self { key, id }
    }

    /// The on-ledger identity (public-key fingerprint).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.key.public()
    }

    /// The private key (for signing and decryption).
    pub fn private_key(&self) -> &RsaPrivateKey {
        &self.key
    }

    /// Signs `message` with the account's secret key.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        self.key.sign(message)
    }

    /// Verifies a signature allegedly made by the holder of `pk`.
    pub fn verify_with(pk: &RsaPublicKey, message: &[u8], signature: &[u8]) -> bool {
        pk.verify(message, signature)
    }
}

/// Derives a [`NodeId`] from a public key — how gateways identify peers
/// they only know by key.
pub fn node_id_of(pk: &RsaPublicKey) -> NodeId {
    NodeId(pk.fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn id_matches_public_key_fingerprint() {
        let mut rng = StdRng::seed_from_u64(1);
        let acct = Account::generate(&mut rng);
        assert_eq!(acct.id(), node_id_of(acct.public_key()));
    }

    #[test]
    fn accounts_are_unique() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Account::generate(&mut rng);
        let b = Account::generate(&mut rng);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn sign_verify_through_account() {
        let mut rng = StdRng::seed_from_u64(3);
        let acct = Account::generate(&mut rng);
        let sig = acct.sign(b"register device");
        assert!(Account::verify_with(acct.public_key(), b"register device", &sig));
        assert!(!Account::verify_with(acct.public_key(), b"other", &sig));
    }

    #[test]
    fn debug_shows_only_id() {
        let mut rng = StdRng::seed_from_u64(4);
        let acct = Account::generate(&mut rng);
        let s = format!("{acct:?}");
        assert!(s.contains("id"));
        assert!(!s.to_lowercase().contains("private"));
    }
}
