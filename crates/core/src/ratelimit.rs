//! Per-device token-bucket rate limiting at gateways.
//!
//! Admission control (the authorization list) blocks *unauthorized*
//! flooders; the credit mechanism prices *detected* misbehaviour. A
//! compromised-but-authorized device spamming valid transactions slips
//! between the two, so gateways also meter request *rate*: each device
//! has a token bucket refilled in virtual time. This complements the
//! paper's DDoS discussion in §VI-C.

use biot_net::time::SimTime;
use biot_tangle::tx::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Token-bucket parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateLimitConfig {
    /// Maximum burst: bucket capacity in requests.
    pub burst: f64,
    /// Sustained rate: tokens refilled per second.
    pub per_second: f64,
}

impl Default for RateLimitConfig {
    /// 10-request burst, 2 sustained requests/second — generous for a
    /// sensor cadence, tight for a flood.
    fn default() -> Self {
        Self {
            burst: 10.0,
            per_second: 2.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last_refill: SimTime,
}

/// A per-node token-bucket rate limiter on virtual time.
///
/// # Examples
///
/// ```
/// use biot_core::ratelimit::{RateLimitConfig, RateLimiter};
/// use biot_net::time::SimTime;
/// use biot_tangle::tx::NodeId;
///
/// let mut limiter = RateLimiter::new(RateLimitConfig { burst: 2.0, per_second: 1.0 });
/// let node = NodeId([1; 32]);
/// let t = SimTime::from_secs(1);
/// assert!(limiter.allow(node, t));
/// assert!(limiter.allow(node, t));
/// assert!(!limiter.allow(node, t), "burst exhausted");
/// assert!(limiter.allow(node, SimTime::from_secs(2)), "refilled");
/// ```
#[derive(Clone, Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: HashMap<NodeId, Bucket>,
}

impl RateLimiter {
    /// Creates a limiter.
    ///
    /// # Panics
    ///
    /// Panics if `burst` or `per_second` is not positive and finite.
    pub fn new(config: RateLimitConfig) -> Self {
        assert!(
            config.burst > 0.0 && config.burst.is_finite(),
            "burst must be positive"
        );
        assert!(
            config.per_second > 0.0 && config.per_second.is_finite(),
            "per_second must be positive"
        );
        Self {
            config,
            buckets: HashMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> RateLimitConfig {
        self.config
    }

    /// Records a request from `node` at `now`; returns whether it is
    /// within the allowed rate. Denied requests consume no tokens.
    pub fn allow(&mut self, node: NodeId, now: SimTime) -> bool {
        let bucket = self.buckets.entry(node).or_insert(Bucket {
            tokens: self.config.burst,
            last_refill: now,
        });
        // Refill for time elapsed (virtual time never goes backwards in a
        // run, but clamp defensively).
        let elapsed_s = now.millis_since(bucket.last_refill) as f64 / 1000.0;
        bucket.tokens = (bucket.tokens + elapsed_s * self.config.per_second)
            .min(self.config.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current token count for `node` (diagnostics).
    pub fn tokens(&self, node: NodeId) -> Option<f64> {
        self.buckets.get(&node).map(|b| b.tokens)
    }

    /// How many nodes currently hold bucket state (diagnostics: the
    /// number [`compact`](Self::compact) exists to bound).
    pub fn tracked_nodes(&self) -> usize {
        self.buckets.len()
    }

    /// Drops state for nodes idle since before `cutoff` (memory hygiene).
    pub fn compact(&mut self, cutoff: SimTime) {
        self.buckets.retain(|_, b| b.last_refill >= cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u8) -> NodeId {
        NodeId([n; 32])
    }

    fn t_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn burst_then_block() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 3.0,
            per_second: 1.0,
        });
        let now = t_ms(0);
        assert!(l.allow(node(1), now));
        assert!(l.allow(node(1), now));
        assert!(l.allow(node(1), now));
        assert!(!l.allow(node(1), now));
    }

    #[test]
    fn refill_restores_tokens_gradually() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 2.0,
            per_second: 2.0,
        });
        assert!(l.allow(node(1), t_ms(0)));
        assert!(l.allow(node(1), t_ms(0)));
        assert!(!l.allow(node(1), t_ms(100)), "0.2 tokens is not enough");
        assert!(l.allow(node(1), t_ms(600)), "1.2 tokens after 0.6s");
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 2.0,
            per_second: 100.0,
        });
        l.allow(node(1), t_ms(0));
        // A long idle period must not bank more than `burst`.
        assert!(l.allow(node(1), t_ms(60_000)));
        assert!(l.allow(node(1), t_ms(60_000)));
        assert!(!l.allow(node(1), t_ms(60_000)));
    }

    #[test]
    fn nodes_have_independent_buckets() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 1.0,
            per_second: 1.0,
        });
        assert!(l.allow(node(1), t_ms(0)));
        assert!(!l.allow(node(1), t_ms(0)));
        assert!(l.allow(node(2), t_ms(0)), "node 2 unaffected");
    }

    #[test]
    fn denied_requests_consume_nothing() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 1.0,
            per_second: 1.0,
        });
        assert!(l.allow(node(1), t_ms(0)));
        for _ in 0..100 {
            assert!(!l.allow(node(1), t_ms(500)));
        }
        // Half a token at 500 ms regardless of denied attempts.
        assert!((l.tokens(node(1)).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn compact_drops_idle_nodes() {
        let mut l = RateLimiter::new(RateLimitConfig::default());
        l.allow(node(1), t_ms(0));
        l.allow(node(2), t_ms(10_000));
        l.compact(t_ms(5_000));
        assert!(l.tokens(node(1)).is_none());
        assert!(l.tokens(node(2)).is_some());
    }

    #[test]
    fn connection_churn_flood_is_compactable() {
        // An ingest front end keys buckets by connection, so a dialing
        // flood creates one bucket per connection: state must stay
        // bounded by periodic compaction, not grow with total arrivals.
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 4.0,
            per_second: 1.0,
        });
        let mut id = 0u64;
        for wave in 0u64..50 {
            let now = t_ms(wave * 1_000);
            for _ in 0..200 {
                let mut bytes = [0u8; 32];
                bytes[..8].copy_from_slice(&id.to_be_bytes());
                id += 1;
                assert!(l.allow(NodeId(bytes), now), "fresh bucket has burst");
            }
            // Everything idle for more than 2 s is a dead connection.
            l.compact(t_ms(wave.saturating_sub(2) * 1_000));
            assert!(
                l.tracked_nodes() <= 3 * 200,
                "wave {wave}: {} buckets survived compaction",
                l.tracked_nodes()
            );
        }
        assert_eq!(id, 10_000, "every arrival was metered");
    }

    #[test]
    fn compaction_never_changes_live_node_decisions() {
        let config = RateLimitConfig {
            burst: 3.0,
            per_second: 2.0,
        };
        // Same request schedule for one long-lived node, with and
        // without interleaved churn + compaction around it. The cutoff
        // trails the live node's own activity, so its bucket always
        // survives; every stranger is at most one round old and gets
        // dropped on the next compaction.
        let mut quiet = RateLimiter::new(config);
        let mut churned = RateLimiter::new(config);
        let live = node(0xEE);
        let mut quiet_decisions = Vec::new();
        let mut churned_decisions = Vec::new();
        let mut prev_ms = 0u64;
        for i in 0u64..200 {
            let ms = i * 37;
            quiet_decisions.push(quiet.allow(live, t_ms(ms)));
            for n in 0..5u8 {
                let mut bytes = [0xAAu8; 32];
                bytes[..8].copy_from_slice(&i.to_be_bytes());
                bytes[8] = n;
                churned.allow(NodeId(bytes), t_ms(ms));
            }
            churned.compact(t_ms(prev_ms));
            churned_decisions.push(churned.allow(live, t_ms(ms)));
            prev_ms = ms;
        }
        assert_eq!(quiet_decisions, churned_decisions);
        assert!(
            churned.tracked_nodes() <= 11,
            "live node + at most two rounds of strangers (cutoff is inclusive)"
        );
    }

    #[test]
    #[should_panic]
    fn zero_burst_panics() {
        RateLimiter::new(RateLimitConfig {
            burst: 0.0,
            per_second: 1.0,
        });
    }
}
