//! Per-device token-bucket rate limiting at gateways.
//!
//! Admission control (the authorization list) blocks *unauthorized*
//! flooders; the credit mechanism prices *detected* misbehaviour. A
//! compromised-but-authorized device spamming valid transactions slips
//! between the two, so gateways also meter request *rate*: each device
//! has a token bucket refilled in virtual time. This complements the
//! paper's DDoS discussion in §VI-C.

use biot_net::time::SimTime;
use biot_tangle::tx::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Token-bucket parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateLimitConfig {
    /// Maximum burst: bucket capacity in requests.
    pub burst: f64,
    /// Sustained rate: tokens refilled per second.
    pub per_second: f64,
}

impl Default for RateLimitConfig {
    /// 10-request burst, 2 sustained requests/second — generous for a
    /// sensor cadence, tight for a flood.
    fn default() -> Self {
        Self {
            burst: 10.0,
            per_second: 2.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last_refill: SimTime,
}

/// A per-node token-bucket rate limiter on virtual time.
///
/// # Examples
///
/// ```
/// use biot_core::ratelimit::{RateLimitConfig, RateLimiter};
/// use biot_net::time::SimTime;
/// use biot_tangle::tx::NodeId;
///
/// let mut limiter = RateLimiter::new(RateLimitConfig { burst: 2.0, per_second: 1.0 });
/// let node = NodeId([1; 32]);
/// let t = SimTime::from_secs(1);
/// assert!(limiter.allow(node, t));
/// assert!(limiter.allow(node, t));
/// assert!(!limiter.allow(node, t), "burst exhausted");
/// assert!(limiter.allow(node, SimTime::from_secs(2)), "refilled");
/// ```
#[derive(Clone, Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: HashMap<NodeId, Bucket>,
}

impl RateLimiter {
    /// Creates a limiter.
    ///
    /// # Panics
    ///
    /// Panics if `burst` or `per_second` is not positive and finite.
    pub fn new(config: RateLimitConfig) -> Self {
        assert!(
            config.burst > 0.0 && config.burst.is_finite(),
            "burst must be positive"
        );
        assert!(
            config.per_second > 0.0 && config.per_second.is_finite(),
            "per_second must be positive"
        );
        Self {
            config,
            buckets: HashMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> RateLimitConfig {
        self.config
    }

    /// Records a request from `node` at `now`; returns whether it is
    /// within the allowed rate. Denied requests consume no tokens.
    pub fn allow(&mut self, node: NodeId, now: SimTime) -> bool {
        let bucket = self.buckets.entry(node).or_insert(Bucket {
            tokens: self.config.burst,
            last_refill: now,
        });
        // Refill for time elapsed (virtual time never goes backwards in a
        // run, but clamp defensively).
        let elapsed_s = now.millis_since(bucket.last_refill) as f64 / 1000.0;
        bucket.tokens = (bucket.tokens + elapsed_s * self.config.per_second)
            .min(self.config.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current token count for `node` (diagnostics).
    pub fn tokens(&self, node: NodeId) -> Option<f64> {
        self.buckets.get(&node).map(|b| b.tokens)
    }

    /// Drops state for nodes idle since before `cutoff` (memory hygiene).
    pub fn compact(&mut self, cutoff: SimTime) {
        self.buckets.retain(|_, b| b.last_refill >= cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u8) -> NodeId {
        NodeId([n; 32])
    }

    fn t_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn burst_then_block() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 3.0,
            per_second: 1.0,
        });
        let now = t_ms(0);
        assert!(l.allow(node(1), now));
        assert!(l.allow(node(1), now));
        assert!(l.allow(node(1), now));
        assert!(!l.allow(node(1), now));
    }

    #[test]
    fn refill_restores_tokens_gradually() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 2.0,
            per_second: 2.0,
        });
        assert!(l.allow(node(1), t_ms(0)));
        assert!(l.allow(node(1), t_ms(0)));
        assert!(!l.allow(node(1), t_ms(100)), "0.2 tokens is not enough");
        assert!(l.allow(node(1), t_ms(600)), "1.2 tokens after 0.6s");
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 2.0,
            per_second: 100.0,
        });
        l.allow(node(1), t_ms(0));
        // A long idle period must not bank more than `burst`.
        assert!(l.allow(node(1), t_ms(60_000)));
        assert!(l.allow(node(1), t_ms(60_000)));
        assert!(!l.allow(node(1), t_ms(60_000)));
    }

    #[test]
    fn nodes_have_independent_buckets() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 1.0,
            per_second: 1.0,
        });
        assert!(l.allow(node(1), t_ms(0)));
        assert!(!l.allow(node(1), t_ms(0)));
        assert!(l.allow(node(2), t_ms(0)), "node 2 unaffected");
    }

    #[test]
    fn denied_requests_consume_nothing() {
        let mut l = RateLimiter::new(RateLimitConfig {
            burst: 1.0,
            per_second: 1.0,
        });
        assert!(l.allow(node(1), t_ms(0)));
        for _ in 0..100 {
            assert!(!l.allow(node(1), t_ms(500)));
        }
        // Half a token at 500 ms regardless of denied attempts.
        assert!((l.tokens(node(1)).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn compact_drops_idle_nodes() {
        let mut l = RateLimiter::new(RateLimitConfig::default());
        l.allow(node(1), t_ms(0));
        l.allow(node(2), t_ms(10_000));
        l.compact(t_ms(5_000));
        assert!(l.tokens(node(1)).is_none());
        assert!(l.tokens(node(2)).is_some());
    }

    #[test]
    #[should_panic]
    fn zero_burst_panics() {
        RateLimiter::new(RateLimitConfig {
            burst: 0.0,
            per_second: 1.0,
        });
    }
}
