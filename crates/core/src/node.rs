//! Node roles (paper §IV-A): light nodes (sensors), gateways (full
//! nodes), and the manager.
//!
//! * **Light nodes** verify two tips, run the credit-based PoW at their
//!   assigned difficulty, sign, and submit transactions to a gateway.
//! * **Gateways** maintain the tangle, enforce the authorization list,
//!   verify PoW and signatures, detect misbehaviour, and keep the credit
//!   registry.
//! * **The manager** is a distinguished full node whose public key is
//!   pinned at genesis; it publishes the authorization list (Eqn 1) and
//!   runs the key-distribution protocol of Fig 4.

use crate::access::DataProtector;
use crate::authz::{build_auth_list, AuthRegistry};
use crate::credit::{CreditBreakdown, CreditEvent, CreditLedger, CreditParams, Misbehavior};
use crate::difficulty::DifficultyPolicy;
use crate::identity::Account;
use crate::keydist::{KeyDistConfig, ManagerSession, Message1, Message2, Message3};
use crate::pow::{pow_hash, verify, Difficulty, MiningConfig};
use crate::ratelimit::{RateLimitConfig, RateLimiter};
use crate::tokens::{TokenError, TokenLedger};
use biot_crypto::rsa::RsaPublicKey;
use biot_crypto::sha256::leading_zero_bits;
use biot_net::time::SimTime;
use biot_tangle::conflict::{LazyTipPolicy, LazyVerdict};
use biot_tangle::graph::{Tangle, TangleError};
use biot_tangle::tips::{SelectorConfig, TipSelector};
use biot_tangle::tx::{NodeId, Payload, Transaction, TransactionBuilder, TxId};
use biot_tangle::view::TangleView;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Why a gateway refused a submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The issuer is not on the authorization list.
    Unauthorized(NodeId),
    /// The transaction signature failed against the registered public key.
    BadSignature(NodeId),
    /// The PoW nonce does not meet the issuer's current difficulty.
    InsufficientPow {
        /// Difficulty the issuer had to meet.
        required: Difficulty,
    },
    /// The issuer exceeded the gateway's per-device request rate.
    RateLimited(NodeId),
    /// The spend violates token ownership (ownership mode only).
    Token(TokenError),
    /// The tangle rejected the transaction (double-spend, unknown parents…).
    Tangle(TangleError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Unauthorized(n) => write!(f, "device {n} is not authorized"),
            SubmitError::BadSignature(n) => write!(f, "bad signature from {n}"),
            SubmitError::InsufficientPow { required } => {
                write!(f, "proof-of-work below required difficulty {required}")
            }
            SubmitError::RateLimited(n) => write!(f, "device {n} exceeded the request rate"),
            SubmitError::Token(e) => write!(f, "token ownership violation: {e}"),
            SubmitError::Tangle(e) => write!(f, "ledger rejected transaction: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<TangleError> for SubmitError {
    fn from(e: TangleError) -> Self {
        SubmitError::Tangle(e)
    }
}

/// Gateway configuration.
#[derive(Debug)]
pub struct GatewayConfig {
    /// Credit model parameters (paper §VI-A defaults).
    pub credit_params: CreditParams,
    /// Lazy-approval policy.
    pub lazy_policy: LazyTipPolicy,
    /// Cumulative weight at which a transaction counts as confirmed.
    pub confirmation_threshold: u64,
    /// Whether to require a valid issuer signature on every submission
    /// (on by default; benches may disable it to isolate PoW cost).
    pub verify_signatures: bool,
    /// Optional per-device token-bucket rate limit (off by default).
    pub rate_limit: Option<RateLimitConfig>,
    /// Strategy served by [`Gateway::random_tips`] (step 4 of the Fig 6
    /// workflow). Uniform by default — the historical behaviour; switch
    /// to a weighted config to starve lazy tips (§II-B).
    pub tip_selector: SelectorConfig,
    /// Record every accepted transaction (and the genesis) in an outbox
    /// for a gossip layer to broadcast — see
    /// [`Gateway::take_broadcasts`]. Off by default: standalone gateways
    /// should not accumulate an unread queue.
    pub record_broadcasts: bool,
    /// Record every applied [`CreditEvent`] in an outbox for persistence
    /// (`biot-store` WAL) and replication (`biot-gossip`) — see
    /// [`Gateway::take_credit_events`]. Off by default for the same
    /// reason as `record_broadcasts`.
    pub record_credit_events: bool,
    /// Seal confirmed cones after each [`Gateway::refresh`], keeping the
    /// per-attach weight walk bounded by the unconfirmed frontier instead
    /// of ledger depth. The value is the recency lag handed to
    /// [`Tangle::seal_frontier`]: how many recently attached transactions
    /// to keep *outside* the seal so in-flight walks still see mutable
    /// entries. `None` (the default) never seals — the historical
    /// behaviour, and the right choice for short runs.
    pub seal_lag: Option<usize>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            credit_params: CreditParams::default(),
            lazy_policy: LazyTipPolicy::default(),
            confirmation_threshold: 3,
            verify_signatures: true,
            rate_limit: None,
            tip_selector: SelectorConfig::default(),
            record_broadcasts: false,
            record_credit_events: false,
            seal_lag: None,
        }
    }
}

/// Counters of everything a gateway has processed, by outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayStats {
    /// Submissions accepted onto the ledger.
    pub accepted: u64,
    /// Refused: issuer not on the authorization list.
    pub rejected_unauthorized: u64,
    /// Refused: per-device rate limit.
    pub rejected_rate_limited: u64,
    /// Refused: bad signature.
    pub rejected_bad_signature: u64,
    /// Refused: PoW below the required difficulty.
    pub rejected_insufficient_pow: u64,
    /// Refused by the ledger (double-spend, unknown parent, duplicate).
    pub rejected_ledger: u64,
    /// Lazy-tip approvals accepted but punished.
    pub lazy_punished: u64,
    /// Transactions absorbed via gossip.
    pub gossip_received: u64,
}

/// How many threads [`Gateway::submit_batch`] uses for the pure admission
/// checks (signature + PoW), mirroring [`MiningConfig`] for mining.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyConfig {
    /// Worker threads for batch signature/PoW verification. `0` or `1`
    /// checks serially on the calling thread.
    pub threads: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        // Deterministic by default, like MiningConfig: simulations opt
        // into parallelism explicitly.
        Self { threads: 1 }
    }
}

impl VerifyConfig {
    /// A config using every available CPU (as reported by the OS).
    pub fn all_cores() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self { threads }
    }
}

/// The pure (state-independent) part of admission, computed per
/// transaction — off-thread for batches. Stateful gates (authorization,
/// rate limit, difficulty, tokens, attach) stay serial.
#[derive(Clone, Copy, Debug)]
struct AdmissionCheck {
    /// Signature verdict: `None` when verification is disabled or the
    /// issuer's key is unknown (both pass, as in sequential submit).
    sig_ok: Option<bool>,
    /// Leading zero bits of the PoW digest. The *required* difficulty is
    /// re-read serially at attach time (credit evolves mid-batch), so
    /// storing the achieved zeros keeps batch admission bit-identical to
    /// sequential submits.
    pow_zeros: u32,
}

/// A full node: tangle replica, admission control, credit bookkeeping.
pub struct Gateway {
    tangle: Tangle,
    credits: CreditLedger,
    authz: AuthRegistry,
    policy: Box<dyn DifficultyPolicy + Send + Sync>,
    config: GatewayConfig,
    /// Known device public keys (registered when authorized).
    directory: HashMap<NodeId, RsaPublicKey>,
    /// Trusted manager keys indexed by fingerprint id, so the per-submit
    /// manager lookup is a hash probe instead of re-hashing every key.
    manager_keys: HashMap<NodeId, RsaPublicKey>,
    limiter: Option<RateLimiter>,
    /// Optional token-ownership enforcement (off unless enabled).
    tokens: Option<TokenLedger>,
    verify: VerifyConfig,
    /// Strategy behind [`Gateway::random_tips`], built from
    /// [`GatewayConfig::tip_selector`].
    selector: Box<dyn TipSelector + Send + Sync>,
    stats: GatewayStats,
    /// Accepted transactions awaiting pickup by a gossip layer (filled
    /// only when [`GatewayConfig::record_broadcasts`] is on).
    outbox: Vec<Transaction>,
    /// Applied credit events awaiting pickup by the persistence or
    /// gossip layer (filled only when
    /// [`GatewayConfig::record_credit_events`] is on).
    credit_outbox: Vec<CreditEvent>,
}

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("ledger_len", &self.tangle.len())
            .field("devices", &self.directory.len())
            .finish()
    }
}

impl Gateway {
    /// Creates a gateway trusting `manager_pk` (pinned at genesis) and
    /// using `policy` to map credit to difficulty.
    pub fn new(
        manager_pk: RsaPublicKey,
        policy: Box<dyn DifficultyPolicy + Send + Sync>,
        config: GatewayConfig,
    ) -> Self {
        let manager_id = crate::identity::node_id_of(&manager_pk);
        let limiter = config.rate_limit.map(RateLimiter::new);
        let selector = config.tip_selector.build();
        Self {
            tangle: Tangle::new(),
            credits: CreditLedger::new(config.credit_params),
            authz: AuthRegistry::new(manager_pk.clone()),
            policy,
            config,
            directory: HashMap::new(),
            manager_keys: HashMap::from([(manager_id, manager_pk)]),
            limiter,
            tokens: None,
            verify: VerifyConfig::default(),
            selector,
            stats: GatewayStats::default(),
            outbox: Vec::new(),
            credit_outbox: Vec::new(),
        }
    }

    /// Applies a credit event to the ledger and, when
    /// [`GatewayConfig::record_credit_events`] is on, queues it for the
    /// persistence/gossip layer.
    fn apply_credit_event(&mut self, ev: CreditEvent) {
        self.credits.apply(&ev);
        if self.config.record_credit_events {
            // Same-instant grants merge in the ledger (one record of the
            // summed weight), so the recorded evidence must merge the same
            // way: two bit-identical events would be collapsed into one by
            // any dedup layer downstream (gossip keys events by content),
            // and replicas folding the outbox would undercount.
            if let (
                Some(CreditEvent::Validated { node: ln, weight: lw, at: la }),
                CreditEvent::Validated { node, weight, at },
            ) = (self.credit_outbox.last_mut(), &ev)
            {
                if ln == node && la == at {
                    *lw += weight;
                    return;
                }
            }
            self.credit_outbox.push(ev);
        }
    }

    /// Sets how batch admission checks run (thread count).
    pub fn set_verify_config(&mut self, verify: VerifyConfig) {
        self.verify = verify;
    }

    /// The current batch-verification configuration.
    pub fn verify_config(&self) -> VerifyConfig {
        self.verify
    }

    /// Swaps the tip-selection strategy served by
    /// [`random_tips`](Self::random_tips).
    pub fn set_tip_selector(&mut self, selector: SelectorConfig) {
        self.config.tip_selector = selector;
        self.selector = selector.build();
    }

    /// The configured tip-selection strategy.
    pub fn tip_selector(&self) -> SelectorConfig {
        self.config.tip_selector
    }

    /// Turns on token-ownership enforcement: spends are refused unless the
    /// issuer currently owns the token (see [`crate::tokens`]).
    pub fn enable_token_ledger(&mut self) -> &mut Self {
        self.tokens.get_or_insert_with(TokenLedger::new);
        self
    }

    /// Grants a token to a device (operator action; requires
    /// [`enable_token_ledger`](Self::enable_token_ledger) first).
    ///
    /// # Panics
    ///
    /// Panics if the token ledger is not enabled.
    pub fn grant_token(&mut self, token: [u8; 32], owner: NodeId) {
        self.tokens
            .as_mut()
            .expect("token ledger not enabled")
            .grant(token, owner);
    }

    /// The token ledger, when enabled.
    pub fn token_ledger(&self) -> Option<&TokenLedger> {
        self.tokens.as_ref()
    }

    /// Trusts an additional manager (the paper permits several per
    /// factory, §IV-A). Operator action only — never triggered on-ledger.
    pub fn trust_manager(&mut self, pk: RsaPublicKey) {
        self.manager_keys
            .insert(crate::identity::node_id_of(&pk), pk.clone());
        self.authz.trust_manager(pk);
    }

    /// Processing counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Bootstraps the ledger with a genesis issued by the primary manager.
    pub fn init_genesis(&mut self, now: SimTime) -> TxId {
        let primary = crate::identity::node_id_of(self.authz.manager_pk());
        let id = self.tangle.attach_genesis(primary, now.as_millis());
        if self.config.record_broadcasts {
            if let Some(tx) = self.tangle.get(&id) {
                self.outbox.push(tx.clone());
            }
        }
        id
    }

    /// Drains the broadcast outbox: every transaction this gateway
    /// accepted since the last call, in attach order. A gossip layer
    /// (see `biot-gossip`) calls this periodically and announces the
    /// drained transactions to peers. Empty unless
    /// [`GatewayConfig::record_broadcasts`] is set.
    pub fn take_broadcasts(&mut self) -> Vec<Transaction> {
        std::mem::take(&mut self.outbox)
    }

    /// Registers a device's public key so its signatures can be checked.
    pub fn register_pubkey(&mut self, pk: RsaPublicKey) {
        self.directory.insert(crate::identity::node_id_of(&pk), pk);
    }

    /// The ledger replica.
    pub fn tangle(&self) -> &Tangle {
        &self.tangle
    }

    /// A point-in-time, read-lock-free snapshot of the ledger for
    /// concurrent tip selection and weight queries (see
    /// [`biot_tangle::view`]). The sealed epoch is shared by `Arc`, so
    /// the cost is proportional to the unconfirmed frontier, not ledger
    /// depth. `recency_tail` bounds how much of the recency window the
    /// view carries for lazy-tip checks.
    pub fn tangle_view(&self, recency_tail: usize) -> TangleView {
        self.tangle.view(recency_tail)
    }

    /// The credit ledger (read access for experiments).
    pub fn credits(&self) -> &CreditLedger {
        &self.credits
    }

    /// Drains the credit-event outbox: every [`CreditEvent`] this gateway
    /// has applied since the last call, in application order. Only filled
    /// when [`GatewayConfig::record_credit_events`] is set. Persist these
    /// (`biot-store`) to survive restarts, or relay them (`biot-gossip`)
    /// so replicas converge on credit and difficulty.
    pub fn take_credit_events(&mut self) -> Vec<CreditEvent> {
        std::mem::take(&mut self.credit_outbox)
    }

    /// Applies credit events received from a peer gateway (the
    /// credit-side analogue of [`receive_broadcast`](Self::receive_broadcast)):
    /// folds them into the ledger without re-queueing them in the outbox —
    /// the originating gateway already did the bookkeeping.
    pub fn absorb_credit_events(&mut self, events: &[CreditEvent]) {
        for ev in events {
            self.credits.apply(ev);
        }
    }

    /// The authorization registry.
    pub fn authz(&self) -> &AuthRegistry {
        &self.authz
    }

    /// RPC: a light node asks which difficulty it must meet right now —
    /// the self-adaptive heart of the credit-based PoW (§IV-B).
    pub fn difficulty_for(&self, node: NodeId, now: SimTime) -> Difficulty {
        let credit = self.credits.credit_of(node, now).combined;
        self.policy.difficulty_for(credit)
    }

    /// RPC: full credit breakdown for a node (used by Fig 8).
    pub fn credit_of(&self, node: NodeId, now: SimTime) -> CreditBreakdown {
        self.credits.credit_of(node, now)
    }

    /// RPC: two random tips for a light node to validate (step 4 of the
    /// Fig 6 workflow).
    pub fn random_tips<R: Rng>(&self, rng: &mut R) -> Option<(TxId, TxId)> {
        self.selector.select_tips(&self.tangle, rng)
    }

    /// RPC: two random tips *with their full transactions*, so a light
    /// node can run [`LightNode::validate_tip`] before approving them
    /// (step 5 of Fig 6).
    pub fn random_tip_transactions<R: Rng>(
        &self,
        rng: &mut R,
    ) -> Option<(Transaction, Transaction)> {
        let (a, b) = self.random_tips(rng)?;
        Some((self.tangle.get(&a)?.clone(), self.tangle.get(&b)?.clone()))
    }

    /// RPC: an approval proof that `head` (typically a current tip)
    /// transitively approves `target`. A storage-constrained light node
    /// verifies the proof locally with nothing but SHA-256 — see
    /// [`biot_tangle::proof::ApprovalProof::verify`].
    pub fn prove_approval(
        &self,
        head: TxId,
        target: TxId,
    ) -> Option<biot_tangle::proof::ApprovalProof> {
        biot_tangle::proof::build_proof(&self.tangle, head, target)
    }

    /// Processes a submission from a light node: admission → signature →
    /// PoW → lazy judgement → attach → credit bookkeeping.
    ///
    /// Lazy approvals are **accepted** but punished through credit; a
    /// double-spend is rejected *and* punished, per the paper's threat
    /// handling (§VI-C).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(&mut self, tx: Transaction, now: SimTime) -> Result<TxId, SubmitError> {
        self.submit_inner(tx, now, None)
    }

    /// Processes a batch of submissions, running the pure admission checks
    /// (signature + PoW hashing) across [`VerifyConfig`] worker threads
    /// before attaching serially in order.
    ///
    /// Outcomes are **bit-identical** to calling [`submit`](Self::submit)
    /// on each transaction in sequence, whatever the thread count: the
    /// parallel phase only computes order-independent facts (signature
    /// verdict, achieved PoW zero bits), while every stateful gate —
    /// authorization, rate limiting, the credit-driven difficulty bar,
    /// token ownership, attach, credit bookkeeping — replays serially.
    pub fn submit_batch(
        &mut self,
        txs: Vec<Transaction>,
        now: SimTime,
    ) -> Vec<Result<TxId, SubmitError>> {
        let threads = self.verify.threads.max(1).min(txs.len().max(1));
        let checks: Vec<AdmissionCheck> = if threads <= 1 {
            txs.iter().map(|tx| self.admission_check(tx)).collect()
        } else {
            let this: &Gateway = &*self;
            let mut slots: Vec<Option<AdmissionCheck>> = vec![None; txs.len()];
            let chunk = txs.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (tx_chunk, slot_chunk) in txs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (tx, slot) in tx_chunk.iter().zip(slot_chunk.iter_mut()) {
                            *slot = Some(this.admission_check(tx));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|c| c.expect("every chunk worker fills its slots"))
                .collect()
        };
        txs.into_iter()
            .zip(checks)
            .map(|(tx, check)| self.submit_inner(tx, now, Some(check)))
            .collect()
    }

    /// The issuer's registered key, if any (managers and devices live in
    /// separate maps so a device cannot shadow a manager id).
    fn key_of(&self, issuer: &NodeId, is_manager: bool) -> Option<&RsaPublicKey> {
        if is_manager {
            self.manager_keys.get(issuer)
        } else {
            self.directory.get(issuer)
        }
    }

    /// Computes the pure admission facts for one transaction. Safe to run
    /// concurrently with other reads: touches only immutable gateway state.
    fn admission_check(&self, tx: &Transaction) -> AdmissionCheck {
        let is_manager = self.manager_keys.contains_key(&tx.issuer);
        let sig_ok = if self.config.verify_signatures {
            self.key_of(&tx.issuer, is_manager)
                .map(|pk| pk.verify(&tx.signing_bytes(), &tx.signature))
        } else {
            None
        };
        let pow_zeros = leading_zero_bits(&pow_hash(&tx.pow_preimage(), tx.nonce));
        AdmissionCheck { sig_ok, pow_zeros }
    }

    fn submit_inner(
        &mut self,
        tx: Transaction,
        now: SimTime,
        precheck: Option<AdmissionCheck>,
    ) -> Result<TxId, SubmitError> {
        let issuer = tx.issuer;
        let is_manager = self.manager_keys.contains_key(&issuer);
        // 1. Admission: managers are implicitly trusted; devices must be on
        //    the authorization list (defeats Sybil/DDoS, §VI-C).
        if !is_manager && !self.authz.is_authorized(&issuer) {
            self.stats.rejected_unauthorized += 1;
            return Err(SubmitError::Unauthorized(issuer));
        }
        // 1b. Rate metering (optional): even authorized devices cannot
        //     flood faster than the configured bucket.
        if !is_manager {
            if let Some(limiter) = &mut self.limiter {
                if !limiter.allow(issuer, now) {
                    self.stats.rejected_rate_limited += 1;
                    return Err(SubmitError::RateLimited(issuer));
                }
            }
        }
        // Reuse the batch precheck when present; otherwise compute it now
        // — after the cheap gates, so rate-limited floods never cost a
        // signature verification.
        let check = match precheck {
            Some(c) => c,
            None => self.admission_check(&tx),
        };
        // 2. Signature, when the issuer's key is known.
        if check.sig_ok == Some(false) {
            self.stats.rejected_bad_signature += 1;
            return Err(SubmitError::BadSignature(issuer));
        }
        // 3. Credit-based PoW check, against the difficulty the issuer's
        //    credit demands *right now*.
        let required = self.difficulty_for(issuer, now);
        if check.pow_zeros < required.bits() {
            self.stats.rejected_insufficient_pow += 1;
            return Err(SubmitError::InsufficientPow { required });
        }
        // 3b. Token ownership (optional): a spend must come from the
        //     current owner — otherwise any peer could race the owner.
        if let Some(tokens) = &self.tokens {
            if let Err(e) = tokens.validate(&tx) {
                self.stats.rejected_ledger += 1;
                return Err(SubmitError::Token(e));
            }
        }
        // 4. Lazy-tip judgement (before attach — see LazyTipPolicy docs).
        let verdict = self.config.lazy_policy.judge(&self.tangle, &tx, now.as_millis());
        // 5. Attach; a double-spend is both rejected and punished.
        match self.tangle.attach(tx, now.as_millis()) {
            Ok(id) => {
                self.stats.accepted += 1;
                if let Some(accepted) = self.tangle.get(&id) {
                    if let Some(tokens) = &mut self.tokens {
                        tokens.apply(accepted);
                    }
                    if self.config.record_broadcasts {
                        self.outbox.push(accepted.clone());
                    }
                }
                if let LazyVerdict::Lazy(_) = verdict {
                    self.stats.lazy_punished += 1;
                    self.apply_credit_event(CreditEvent::misbehaved(
                        issuer,
                        Misbehavior::LazyTips,
                        now,
                    ));
                } else {
                    // Honest activity earns credit; weight 1 at attach time
                    // (approvals later deepen it via `refresh`). Same-instant
                    // grants merge into one ledger record, so a batch submit
                    // grows the issuer's history by one record, not N.
                    self.apply_credit_event(CreditEvent::validated(issuer, 1.0, now));
                }
                Ok(id)
            }
            Err(e @ TangleError::DoubleSpend { .. }) => {
                self.stats.rejected_ledger += 1;
                self.apply_credit_event(CreditEvent::misbehaved(
                    issuer,
                    Misbehavior::DoubleSpend,
                    now,
                ));
                Err(e.into())
            }
            Err(e) => {
                self.stats.rejected_ledger += 1;
                Err(e.into())
            }
        }
    }

    /// Applies an authorization-list transaction: verifies it came from
    /// the manager, updates the registry, attaches to the ledger.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] as for [`submit`](Self::submit); additionally the
    /// signature inside the list payload must verify.
    pub fn apply_auth_list(&mut self, tx: Transaction, now: SimTime) -> Result<TxId, SubmitError> {
        self.authz
            .apply(&tx.payload)
            .map_err(|_| SubmitError::BadSignature(tx.issuer))?;
        self.submit(tx, now)
    }

    /// Gossip receipt from a peer gateway: attach without credit effects
    /// (the originating gateway already did the bookkeeping).
    ///
    /// Returns `Ok` for duplicates (idempotent sync).
    pub fn receive_broadcast(&mut self, tx: Transaction, now: SimTime) -> Result<(), TangleError> {
        if let Payload::AuthList { .. } = &tx.payload {
            // Keep admission state in sync on replicas too.
            let _ = self.authz.apply(&tx.payload);
        }
        match self.tangle.attach(tx, now.as_millis()) {
            Ok(_) | Err(TangleError::Duplicate(_)) => {
                self.stats.gossip_received += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Re-records credit for issuers whose transactions gained weight, and
    /// confirms transactions past the threshold. Call periodically (e.g.
    /// once per ΔT).
    pub fn refresh(&mut self, now: SimTime) -> Vec<TxId> {
        let confirmed = self
            .tangle
            .confirm_with_threshold(self.config.confirmation_threshold);
        for id in &confirmed {
            if let Some(tx) = self.tangle.get(id) {
                let w = self.tangle.cumulative_weight(id) as f64;
                let issuer = tx.issuer;
                // `confirm_with_threshold` only yields Pending→Confirmed
                // transitions, so each transaction's weight is granted
                // exactly once — repeated refreshes never re-record it.
                self.apply_credit_event(CreditEvent::validated(issuer, w, now));
            }
        }
        self.credits.compact(now);
        if let Some(lag) = self.config.seal_lag {
            // Credit for the freshly confirmed transactions is recorded
            // above from their live weights, so sealing them now loses
            // nothing: their future growth is absorbed by the pass
            // counter and still reported exactly by `cumulative_weight`.
            self.tangle.seal_frontier(lag);
        }
        confirmed
    }

    /// Records an externally detected misbehaviour (e.g. a peer gateway
    /// reported a double-spend attempt it rejected).
    pub fn report_misbehavior(&mut self, node: NodeId, kind: Misbehavior, now: SimTime) {
        self.apply_credit_event(CreditEvent::misbehaved(node, kind, now));
    }

    /// Adopts a recovered ledger (e.g. from `biot-store` after a restart)
    /// and rebuilds admission state by replaying every authorization-list
    /// payload in attach order — the list *is* on the ledger (Eqn 1), so
    /// nothing beyond the tangle needs separate persistence.
    ///
    /// Credit history is **not** reconstructed here: misbehaviour whose
    /// transactions were rejected never reached the tangle, so it cannot
    /// be derived from it. Use [`restore`](Self::restore) with the credit
    /// events recovered from the store's WAL to bring credit back too —
    /// adopting only the tangle silently amnesties every punished node.
    pub fn adopt_tangle(&mut self, tangle: Tangle) {
        let mut lists: Vec<&Transaction> = tangle
            .iter()
            .filter(|tx| matches!(tx.payload, Payload::AuthList { .. }))
            .collect();
        lists.sort_by_key(|tx| tangle.attach_seq(&tx.id()).unwrap_or(0));
        for tx in lists {
            // Invalid lists can only exist on a corrupted replica; skip
            // rather than brick the gateway.
            let _ = self.authz.apply(&tx.payload);
        }
        self.tangle = tangle;
    }

    /// Full restart recovery: adopts the recovered tangle **and** replays
    /// the persisted credit events, so negative credit — and the
    /// difficulty clamp it drives — survives the restart (§IV-B:
    /// misbehaviour is never fully forgotten). The ledger is rebuilt from
    /// scratch, so restoring twice is idempotent.
    pub fn restore(&mut self, tangle: Tangle, credit_events: &[CreditEvent]) {
        self.adopt_tangle(tangle);
        self.credits = CreditLedger::from_events(self.config.credit_params, credit_events);
    }
}

/// A prepared transaction plus the PoW cost that produced it.
#[derive(Clone, Debug)]
pub struct PreparedTx {
    /// The signed, PoW-stamped transaction.
    pub tx: Transaction,
    /// Hash evaluations the nonce search took (drives virtual-time cost).
    pub trials: u64,
    /// The difficulty it was mined at.
    pub difficulty: Difficulty,
}

/// A light node: a sensor with an account and a data protector.
pub struct LightNode {
    account: Account,
    protector: DataProtector,
    mining: MiningConfig,
}

impl fmt::Debug for LightNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LightNode")
            .field("id", &self.account.id())
            .field("protector", &self.protector)
            .field("mining", &self.mining)
            .finish()
    }
}

impl LightNode {
    /// Creates a light node from an account, posting public data.
    ///
    /// Mining defaults to the deterministic single-threaded solver; call
    /// [`set_mining_config`](Self::set_mining_config) to shard the nonce
    /// search across threads.
    pub fn new(account: Account) -> Self {
        Self {
            account,
            protector: DataProtector::public(),
            mining: MiningConfig::default(),
        }
    }

    /// Sets how PoW nonce searches run (thread count).
    pub fn set_mining_config(&mut self, mining: MiningConfig) {
        self.mining = mining;
    }

    /// The current mining configuration.
    pub fn mining_config(&self) -> MiningConfig {
        self.mining
    }

    /// The node identity.
    pub fn id(&self) -> NodeId {
        self.account.id()
    }

    /// The node's public key (for registration with gateways).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.account.public_key()
    }

    /// Borrows the account (for key-distribution participation).
    pub fn account(&self) -> &Account {
        &self.account
    }

    /// Installs the session key received via Fig 4, switching the node to
    /// sensitive-data mode.
    pub fn install_session_key(&mut self, key: biot_crypto::aes::AesKey) {
        self.protector.install_key(key);
    }

    /// The data protector (for tests and consumers).
    pub fn protector(&self) -> &DataProtector {
        &self.protector
    }

    /// Validates a candidate tip before approving it (step 5 of the
    /// Fig 6 workflow: "validate these two tips and bundle…").
    ///
    /// A light node holds no ledger, so its checks are the stateless
    /// ones: the tip's PoW clears at least the network-minimum
    /// difficulty, and its structure is sane (non-genesis tips reference
    /// real parents). Stateful checks (conflicts, authorization) are the
    /// gateway's job.
    pub fn validate_tip(tx: &Transaction, min_difficulty: Difficulty) -> bool {
        if tx.is_genesis() {
            // The genesis is trusted by construction (its id is part of
            // the network configuration).
            return true;
        }
        if tx.trunk == TxId::GENESIS_PARENT || tx.branch == TxId::GENESIS_PARENT {
            return false;
        }
        verify(&tx.pow_preimage(), tx.nonce, min_difficulty)
    }

    /// Builds, mines, and signs a sensor-data transaction on the given
    /// tips (steps 4–5 of the Fig 6 workflow).
    pub fn prepare_reading<R: Rng + ?Sized>(
        &self,
        reading: &[u8],
        tips: (TxId, TxId),
        now: SimTime,
        difficulty: Difficulty,
        rng: &mut R,
    ) -> PreparedTx {
        let payload = self.protector.seal(reading, rng);
        self.prepare_payload(payload, tips, now, difficulty)
    }

    /// Builds, mines, and signs a token spend.
    pub fn prepare_spend(
        &self,
        token: [u8; 32],
        to: NodeId,
        tips: (TxId, TxId),
        now: SimTime,
        difficulty: Difficulty,
    ) -> PreparedTx {
        self.prepare_payload(Payload::Spend { token, to }, tips, now, difficulty)
    }

    /// Builds, mines, and signs an arbitrary payload.
    pub fn prepare_payload(
        &self,
        payload: Payload,
        tips: (TxId, TxId),
        now: SimTime,
        difficulty: Difficulty,
    ) -> PreparedTx {
        let draft = TransactionBuilder::new(self.account.id())
            .parents(tips.0, tips.1)
            .payload(payload)
            .timestamp_ms(now.as_millis())
            .build();
        let solution = self.mining.solve(&draft.pow_preimage(), difficulty);
        let mut tx = draft;
        tx.nonce = solution.nonce;
        tx.signature = self.account.sign(&tx.signing_bytes());
        PreparedTx {
            tx,
            trials: solution.trials,
            difficulty,
        }
    }
}

/// The manager: a distinguished full node that owns device management and
/// key distribution.
pub struct Manager {
    account: Account,
    authorized: Vec<NodeId>,
    sessions: HashMap<NodeId, ManagerSession>,
    directory: HashMap<NodeId, RsaPublicKey>,
    keydist_config: KeyDistConfig,
    mining: MiningConfig,
}

impl fmt::Debug for Manager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Manager")
            .field("id", &self.account.id())
            .field("authorized", &self.authorized.len())
            .finish()
    }
}

impl Manager {
    /// Creates a manager from an account.
    pub fn new(account: Account) -> Self {
        Self {
            account,
            authorized: Vec::new(),
            sessions: HashMap::new(),
            directory: HashMap::new(),
            keydist_config: KeyDistConfig::default(),
            mining: MiningConfig::default(),
        }
    }

    /// Sets how PoW nonce searches run (thread count).
    pub fn set_mining_config(&mut self, mining: MiningConfig) {
        self.mining = mining;
    }

    /// The manager's identity.
    pub fn id(&self) -> NodeId {
        self.account.id()
    }

    /// The manager's public key — this is what gets pinned into gateways'
    /// genesis configuration.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.account.public_key()
    }

    /// Borrows the account.
    pub fn account(&self) -> &Account {
        &self.account
    }

    /// Registers a device's public key in the manager's directory.
    pub fn register_device(&mut self, pk: RsaPublicKey) -> NodeId {
        let id = crate::identity::node_id_of(&pk);
        self.directory.insert(id, pk);
        id
    }

    /// Marks a registered device authorized (effective after the next
    /// published list).
    pub fn authorize(&mut self, device: NodeId) {
        if !self.authorized.contains(&device) {
            self.authorized.push(device);
        }
    }

    /// Revokes a device (effective after the next published list).
    pub fn deauthorize(&mut self, device: NodeId) {
        self.authorized.retain(|d| d != &device);
    }

    /// Builds, mines, and signs the authorization-list transaction
    /// (Eqn 1) on the given tips.
    pub fn prepare_auth_list(
        &self,
        tips: (TxId, TxId),
        now: SimTime,
        difficulty: Difficulty,
    ) -> PreparedTx {
        let payload = build_auth_list(self.authorized.clone(), &self.account);
        let draft = TransactionBuilder::new(self.account.id())
            .parents(tips.0, tips.1)
            .payload(payload)
            .timestamp_ms(now.as_millis())
            .build();
        let solution = self.mining.solve(&draft.pow_preimage(), difficulty);
        let mut tx = draft;
        tx.nonce = solution.nonce;
        tx.signature = self.account.sign(&tx.signing_bytes());
        PreparedTx {
            tx,
            trials: solution.trials,
            difficulty,
        }
    }

    /// Starts the Fig 4 key distribution toward `device`, returning M1.
    ///
    /// # Panics
    ///
    /// Panics if the device was never registered.
    pub fn start_key_distribution<R: Rng + ?Sized>(
        &mut self,
        device: NodeId,
        now: SimTime,
        rng: &mut R,
    ) -> Message1 {
        let pk = self
            .directory
            .get(&device)
            .expect("device must be registered before key distribution");
        let (session, m1) = ManagerSession::initiate(&self.account, pk, now.as_millis(), rng);
        self.sessions.insert(device, session);
        m1
    }

    /// Handles a device's M2, producing M3.
    ///
    /// # Errors
    ///
    /// [`crate::keydist::KeyDistError`] on any verification failure;
    /// [`crate::keydist::KeyDistError::WrongState`] when no session is
    /// open for `device`.
    pub fn handle_m2<R: Rng + ?Sized>(
        &mut self,
        device: NodeId,
        m2: &Message2,
        now: SimTime,
        rng: &mut R,
    ) -> Result<Message3, crate::keydist::KeyDistError> {
        let pk = self
            .directory
            .get(&device)
            .ok_or(crate::keydist::KeyDistError::WrongState)?
            .clone();
        let session = self
            .sessions
            .get_mut(&device)
            .ok_or(crate::keydist::KeyDistError::WrongState)?;
        session.handle_m2(
            &self.account,
            &pk,
            m2,
            now.as_millis(),
            &self.keydist_config,
            rng,
        )
    }

    /// The session key established with `device`, if the handshake
    /// completed.
    pub fn session_key(&self, device: NodeId) -> Option<&biot_crypto::aes::AesKey> {
        self.sessions.get(&device).and_then(|s| s.session_key())
    }

    /// The key-distribution configuration (shared with devices).
    pub fn keydist_config(&self) -> &KeyDistConfig {
        &self.keydist_config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::InverseProportionalPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        manager: Manager,
        gateway: Gateway,
        device: LightNode,
        rng: StdRng,
    }

    fn world(seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let manager = Manager::new(Account::generate(&mut rng));
        let device = LightNode::new(Account::generate(&mut rng));
        let gateway = Gateway::new(
            manager.public_key().clone(),
            Box::new(InverseProportionalPolicy::default()),
            GatewayConfig::default(),
        );
        World {
            manager,
            gateway,
            device,
            rng,
        }
    }

    /// Boots genesis, registers + authorizes the device, publishes the list.
    fn boot(w: &mut World) -> TxId {
        let t0 = SimTime::ZERO;
        let genesis = w.gateway.init_genesis(t0);
        let dev_id = w.manager.register_device(w.device.public_key().clone());
        w.manager.authorize(dev_id);
        w.gateway.register_pubkey(w.device.public_key().clone());
        let d = w.gateway.difficulty_for(w.manager.id(), t0);
        let prepared = w.manager.prepare_auth_list((genesis, genesis), t0, d);
        w.gateway.apply_auth_list(prepared.tx, t0).unwrap();
        genesis
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn end_to_end_reading_submission() {
        let mut w = world(1);
        boot(&mut w);
        let now = t(1);
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(w.device.id(), now);
        assert_eq!(d, Difficulty::INITIAL, "no history yet → base difficulty");
        let prepared = w
            .device
            .prepare_reading(b"temp=20C", tips, now, d, &mut w.rng);
        let id = w.gateway.submit(prepared.tx, now).unwrap();
        assert!(w.gateway.tangle().contains(&id));
    }

    #[test]
    fn unauthorized_device_rejected() {
        let mut w = world(2);
        let genesis = w.gateway.init_genesis(SimTime::ZERO);
        // No auth list published.
        let prepared = w.device.prepare_reading(
            b"x",
            (genesis, genesis),
            t(1),
            Difficulty::INITIAL,
            &mut w.rng,
        );
        assert_eq!(
            w.gateway.submit(prepared.tx, t(1)),
            Err(SubmitError::Unauthorized(w.device.id()))
        );
    }

    #[test]
    fn deauthorized_device_rejected_after_new_list() {
        let mut w = world(3);
        let genesis = boot(&mut w);
        // Revoke and publish an empty list.
        w.manager.deauthorize(w.device.id());
        let d = w.gateway.difficulty_for(w.manager.id(), t(1));
        let prepared = w.manager.prepare_auth_list((genesis, genesis), t(1), d);
        w.gateway.apply_auth_list(prepared.tx, t(1)).unwrap();
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let p = w
            .device
            .prepare_reading(b"x", tips, t(2), Difficulty::new(11), &mut w.rng);
        assert!(matches!(
            w.gateway.submit(p.tx, t(2)),
            Err(SubmitError::Unauthorized(_))
        ));
    }

    #[test]
    fn insufficient_pow_rejected() {
        let mut w = world(4);
        boot(&mut w);
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        // Mine at difficulty 1 while the gateway demands 11.
        let p = w
            .device
            .prepare_reading(b"x", tips, t(1), Difficulty::new(1), &mut w.rng);
        // A D1 nonce *may* accidentally satisfy D11 (probability 2^-10);
        // retry the draft if so to keep the test deterministic-enough.
        match w.gateway.submit(p.tx.clone(), t(1)) {
            Err(SubmitError::InsufficientPow { required }) => {
                assert_eq!(required, Difficulty::INITIAL);
            }
            Ok(_) => {
                // Astronomically unlikely but not impossible; accept.
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn forged_signature_rejected() {
        let mut w = world(5);
        boot(&mut w);
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let mut p = w
            .device
            .prepare_reading(b"x", tips, t(1), Difficulty::INITIAL, &mut w.rng);
        p.tx.signature = vec![0u8; p.tx.signature.len()];
        assert_eq!(
            w.gateway.submit(p.tx, t(1)),
            Err(SubmitError::BadSignature(w.device.id()))
        );
    }

    #[test]
    fn activity_lowers_difficulty() {
        let mut w = world(6);
        boot(&mut w);
        let mut now = t(1);
        for i in 0..5 {
            let tips = w.gateway.random_tips(&mut w.rng).unwrap();
            let d = w.gateway.difficulty_for(w.device.id(), now);
            let p = w.device.prepare_reading(
                format!("reading {i}").as_bytes(),
                tips,
                now,
                d,
                &mut w.rng,
            );
            w.gateway.submit(p.tx, now).unwrap();
            now += 2_000;
        }
        let d_active = w.gateway.difficulty_for(w.device.id(), now);
        assert!(
            d_active < Difficulty::INITIAL,
            "active node difficulty {d_active} should drop below 11"
        );
    }

    #[test]
    fn double_spend_rejected_and_punished() {
        let mut w = world(7);
        boot(&mut w);
        let token = [0xAA; 32];
        let now = t(1);
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(w.device.id(), now);
        let p1 = w
            .device
            .prepare_spend(token, w.manager.id(), tips, now, d);
        w.gateway.submit(p1.tx, now).unwrap();

        let later = t(2);
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d2 = w.gateway.difficulty_for(w.device.id(), later);
        let p2 = w.device.prepare_spend(token, w.device.id(), tips, later, d2);
        let err = w.gateway.submit(p2.tx, later).unwrap_err();
        assert!(matches!(err, SubmitError::Tangle(TangleError::DoubleSpend { .. })));

        // Punishment: credit strongly negative, difficulty at the clamp.
        let credit = w.gateway.credit_of(w.device.id(), t(3)).combined;
        assert!(credit < -1.0, "credit {credit} should collapse");
        assert_eq!(
            w.gateway.difficulty_for(w.device.id(), t(3)),
            Difficulty::MAX
        );
    }

    #[test]
    fn lazy_tips_accepted_but_punished() {
        let mut w = world(8);
        let genesis = boot(&mut w);
        // Advance well past the genesis so approving it is lazy.
        let now = t(60);
        let d = w.gateway.difficulty_for(w.device.id(), now);
        let p = w
            .device
            .prepare_reading(b"lazy", (genesis, genesis), now, d, &mut w.rng);
        let id = w.gateway.submit(p.tx, now).unwrap();
        assert!(w.gateway.tangle().contains(&id), "lazy tx still attaches");
        assert!(
            w.gateway.credit_of(w.device.id(), t(61)).combined < 0.0,
            "lazy approval must cost credit"
        );
    }

    #[test]
    fn refresh_confirms_and_rewards() {
        let mut w = world(9);
        boot(&mut w);
        let mut now = t(1);
        let mut first = None;
        for i in 0..6 {
            let tips = w.gateway.random_tips(&mut w.rng).unwrap();
            let d = w.gateway.difficulty_for(w.device.id(), now);
            let p = w.device.prepare_reading(
                format!("r{i}").as_bytes(),
                tips,
                now,
                d,
                &mut w.rng,
            );
            let id = w.gateway.submit(p.tx, now).unwrap();
            first.get_or_insert(id);
            now += 1_000;
        }
        let confirmed = w.gateway.refresh(now);
        assert!(!confirmed.is_empty(), "early txs should confirm");
    }

    #[test]
    fn gossip_receipt_is_idempotent() {
        let mut w = world(10);
        boot(&mut w);
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(w.device.id(), t(1));
        let p = w
            .device
            .prepare_reading(b"x", tips, t(1), d, &mut w.rng);
        w.gateway.submit(p.tx.clone(), t(1)).unwrap();
        // Receiving one's own broadcast back is fine.
        w.gateway.receive_broadcast(p.tx, t(1)).unwrap();
    }

    #[test]
    fn rate_limit_blocks_authorized_flooder() {
        let mut rng = StdRng::seed_from_u64(20);
        let manager = Manager::new(Account::generate(&mut rng));
        let device = LightNode::new(Account::generate(&mut rng));
        let mut gateway = Gateway::new(
            manager.public_key().clone(),
            Box::new(InverseProportionalPolicy::default()),
            GatewayConfig {
                rate_limit: Some(crate::ratelimit::RateLimitConfig {
                    burst: 3.0,
                    per_second: 1.0,
                }),
                ..GatewayConfig::default()
            },
        );
        let genesis = gateway.init_genesis(SimTime::ZERO);
        let mut manager = manager;
        let dev_id = manager.register_device(device.public_key().clone());
        manager.authorize(dev_id);
        gateway.register_pubkey(device.public_key().clone());
        let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
        let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
        // The manager itself is never rate limited.
        gateway.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

        // Flood: only the burst gets through at one instant.
        let now = t(1);
        let mut accepted = 0;
        let mut limited = 0;
        for i in 0..6 {
            let tips = gateway.random_tips(&mut rng).unwrap();
            let diff = gateway.difficulty_for(dev_id, now);
            let p = device.prepare_reading(format!("f{i}").as_bytes(), tips, now, diff, &mut rng);
            match gateway.submit(p.tx, now) {
                Ok(_) => accepted += 1,
                Err(SubmitError::RateLimited(n)) => {
                    assert_eq!(n, dev_id);
                    limited += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(accepted, 3);
        assert_eq!(limited, 3);
        // After a pause the device can post again.
        let later = t(3);
        let tips = gateway.random_tips(&mut rng).unwrap();
        let diff = gateway.difficulty_for(dev_id, later);
        let p = device.prepare_reading(b"after pause", tips, later, diff, &mut rng);
        assert!(gateway.submit(p.tx, later).is_ok());
    }

    #[test]
    fn tip_transactions_rpc_supports_validation() {
        let mut w = world(33);
        boot(&mut w);
        let (ta, tb) = w.gateway.random_tip_transactions(&mut w.rng).unwrap();
        assert!(LightNode::validate_tip(&ta, Difficulty::MIN));
        assert!(LightNode::validate_tip(&tb, Difficulty::MIN));
        // The full flow: validate, then approve exactly those tips.
        let tips = (ta.id(), tb.id());
        let d = w.gateway.difficulty_for(w.device.id(), t(1));
        let p = w.device.prepare_reading(b"validated", tips, t(1), d, &mut w.rng);
        assert_eq!(p.tx.trunk, ta.id());
        w.gateway.submit(p.tx, t(1)).unwrap();
    }

    #[test]
    fn light_node_tip_validation() {
        let mut w = world(32);
        boot(&mut w);
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(w.device.id(), t(1));
        let p = w.device.prepare_reading(b"tip", tips, t(1), d, &mut w.rng);
        let min = Difficulty::MIN;
        // A properly mined transaction validates as a tip.
        assert!(LightNode::validate_tip(&p.tx, min));
        // The genesis is trusted.
        let genesis_id = w.gateway.tangle().genesis().unwrap();
        let genesis = w.gateway.tangle().get(&genesis_id).unwrap();
        assert!(LightNode::validate_tip(genesis, min));
        // A nonce-less forgery fails the PoW check (with overwhelming
        // probability at difficulty ≥ 8).
        let mut forged = p.tx.clone();
        forged.nonce = forged.nonce.wrapping_add(1);
        assert!(!LightNode::validate_tip(&forged, Difficulty::new(8)));
        // A fake-genesis reference fails structurally.
        let mut fake = p.tx;
        fake.trunk = TxId::GENESIS_PARENT;
        assert!(!LightNode::validate_tip(&fake, min));
    }

    #[test]
    fn token_ownership_prevents_spend_racing() {
        let mut w = world(34);
        boot(&mut w);
        // Enable ownership mode; grant a token to a second device while
        // the first (w.device) tries to steal it.
        let owner = LightNode::new(Account::generate(&mut w.rng));
        let owner_id = w.manager.register_device(owner.public_key().clone());
        w.manager.authorize(owner_id);
        w.gateway.register_pubkey(owner.public_key().clone());
        let genesis = w.gateway.tangle().genesis().unwrap();
        let d = w.gateway.difficulty_for(w.manager.id(), t(1));
        let list = w.manager.prepare_auth_list((genesis, genesis), t(1), d);
        w.gateway.apply_auth_list(list.tx, t(1)).unwrap();

        w.gateway.enable_token_ledger();
        let token = [0x70u8; 32];
        w.gateway.grant_token(token, owner_id);

        // The thief is authorized and does honest PoW — but does not own
        // the token.
        let now = t(2);
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(w.device.id(), now);
        let theft = w.device.prepare_spend(token, w.device.id(), tips, now, d);
        assert!(matches!(
            w.gateway.submit(theft.tx, now),
            Err(SubmitError::Token(crate::tokens::TokenError::NotOwner { .. }))
        ));

        // The owner spends it fine; ownership moves to the recipient.
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(owner_id, now);
        let spend = owner.prepare_spend(token, w.device.id(), tips, now, d);
        w.gateway.submit(spend.tx, now).unwrap();
        assert_eq!(
            w.gateway.token_ledger().unwrap().owner_of(&token),
            Some(w.device.id())
        );
        // A second spend by the old owner is refused on ownership grounds
        // (and would be a tangle double-spend besides).
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(owner_id, t(3));
        let again = owner.prepare_spend(token, owner_id, tips, t(3), d);
        assert!(w.gateway.submit(again.tx, t(3)).is_err());
    }

    #[test]
    fn second_manager_can_publish_lists() {
        let mut w = world(30);
        let genesis = boot(&mut w);
        // A second manager appears; the gateway operator trusts it.
        let manager2 = Manager::new(Account::generate(&mut w.rng));
        w.gateway.trust_manager(manager2.public_key().clone());
        let mut manager2 = manager2;
        let extra = LightNode::new(Account::generate(&mut w.rng));
        let extra_id = manager2.register_device(extra.public_key().clone());
        manager2.authorize(extra_id);
        w.gateway.register_pubkey(extra.public_key().clone());
        let d = w.gateway.difficulty_for(manager2.id(), t(1));
        let list = manager2.prepare_auth_list((genesis, genesis), t(1), d);
        w.gateway.apply_auth_list(list.tx, t(1)).unwrap();
        assert!(w.gateway.authz().is_authorized(&extra_id));
        // An untrusted third manager still cannot.
        let rogue = Manager::new(Account::generate(&mut w.rng));
        let mut rogue = rogue;
        rogue.authorize(NodeId([9; 32]));
        let d = Difficulty::INITIAL;
        let list = rogue.prepare_auth_list((genesis, genesis), t(2), d);
        assert!(w.gateway.apply_auth_list(list.tx, t(2)).is_err());
    }

    #[test]
    fn stats_count_outcomes() {
        let mut w = world(31);
        boot(&mut w);
        assert_eq!(w.gateway.stats().accepted, 1, "the auth list itself");
        // Accepted reading.
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(w.device.id(), t(1));
        let p = w.device.prepare_reading(b"ok", tips, t(1), d, &mut w.rng);
        w.gateway.submit(p.tx, t(1)).unwrap();
        // Unauthorized submission.
        let stranger = LightNode::new(Account::generate(&mut w.rng));
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let p = stranger.prepare_reading(b"no", tips, t(1), Difficulty::INITIAL, &mut w.rng);
        let _ = w.gateway.submit(p.tx, t(1));
        let stats = w.gateway.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected_unauthorized, 1);
    }

    /// Builds one world and a mixed batch of transactions against its
    /// post-boot ledger: honest readings, a forged signature, an
    /// unauthorized stranger, and a valid signature over insufficient PoW.
    /// Worlds built from the same seed are bit-identical (seeded rng), so
    /// the batch is valid against any same-seed world.
    fn mixed_batch(w: &mut World, now: SimTime) -> Vec<Transaction> {
        let mut txs = Vec::new();
        for i in 0..4 {
            let tips = w.gateway.random_tips(&mut w.rng).unwrap();
            let d = w.gateway.difficulty_for(w.device.id(), now);
            let p = w
                .device
                .prepare_reading(format!("r{i}").as_bytes(), tips, now, d, &mut w.rng);
            txs.push(p.tx);
        }
        // Forged signature on an otherwise valid transaction.
        let mut forged = txs[1].clone();
        forged.payload = Payload::Data(b"forged".to_vec());
        forged.signature = vec![0u8; forged.signature.len()];
        txs.push(forged);
        // Unauthorized stranger with honest work.
        let stranger = LightNode::new(Account::generate(&mut w.rng));
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let p = stranger.prepare_reading(b"no", tips, now, Difficulty::INITIAL, &mut w.rng);
        txs.push(p.tx);
        // Valid signature, botched nonce: almost surely under D11 (and if
        // the wrecked nonce accidentally clears the bar, it does so in
        // every same-seed world, so equivalence still holds).
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(w.device.id(), now);
        let p = w.device.prepare_reading(b"weak", tips, now, d, &mut w.rng);
        let mut weak = p.tx;
        weak.nonce = weak.nonce.wrapping_add(1);
        weak.signature = w.device.account().sign(&weak.signing_bytes());
        txs.push(weak);
        txs
    }

    #[test]
    fn batch_submit_matches_sequential_exactly() {
        let build = || {
            let mut w = world(40);
            boot(&mut w);
            w
        };
        let mut seq_world = build();
        let mut batch_world = build();
        batch_world
            .gateway
            .set_verify_config(VerifyConfig { threads: 4 });
        let now = t(1);
        let txs = mixed_batch(&mut seq_world, now);

        let sequential: Vec<_> = txs
            .iter()
            .cloned()
            .map(|tx| seq_world.gateway.submit(tx, now))
            .collect();
        let batched = batch_world.gateway.submit_batch(txs, now);

        assert_eq!(sequential, batched);
        assert_eq!(seq_world.gateway.stats(), batch_world.gateway.stats());
        assert_eq!(
            seq_world.gateway.tangle().len(),
            batch_world.gateway.tangle().len()
        );
        // The mixed batch exercised every admission outcome. (Credit can
        // evolve mid-batch — e.g. a lazy-tip punishment raising the bar
        // for a later reading — which is exactly what the serial attach
        // phase must reproduce, so only lower bounds are asserted for the
        // credit-dependent outcomes.)
        let stats = batch_world.gateway.stats();
        assert!(stats.accepted >= 3, "auth list + readings: {stats:?}");
        assert_eq!(stats.rejected_bad_signature, 1);
        assert_eq!(stats.rejected_unauthorized, 1);
        assert!(stats.rejected_insufficient_pow >= 1, "{stats:?}");
    }

    #[test]
    fn batch_submit_single_thread_matches_too() {
        let build = || {
            let mut w = world(41);
            boot(&mut w);
            w
        };
        let mut seq_world = build();
        let mut batch_world = build();
        assert_eq!(batch_world.gateway.verify_config(), VerifyConfig::default());
        let now = t(2);
        let txs = mixed_batch(&mut seq_world, now);
        let sequential: Vec<_> = txs
            .iter()
            .cloned()
            .map(|tx| seq_world.gateway.submit(tx, now))
            .collect();
        let batched = batch_world.gateway.submit_batch(txs, now);
        assert_eq!(sequential, batched);
        assert_eq!(seq_world.gateway.stats(), batch_world.gateway.stats());
    }

    #[test]
    fn batch_submit_empty_is_noop() {
        let mut w = world(42);
        boot(&mut w);
        let before = w.gateway.stats();
        assert!(w.gateway.submit_batch(Vec::new(), t(1)).is_empty());
        assert_eq!(w.gateway.stats(), before);
    }

    #[test]
    fn broadcast_outbox_records_accepted_only() {
        let mut rng = StdRng::seed_from_u64(50);
        let manager = Manager::new(Account::generate(&mut rng));
        let device = LightNode::new(Account::generate(&mut rng));
        let mut gateway = Gateway::new(
            manager.public_key().clone(),
            Box::new(InverseProportionalPolicy::default()),
            GatewayConfig {
                record_broadcasts: true,
                ..GatewayConfig::default()
            },
        );
        let genesis = gateway.init_genesis(SimTime::ZERO);
        let mut manager = manager;
        let dev_id = manager.register_device(device.public_key().clone());
        manager.authorize(dev_id);
        gateway.register_pubkey(device.public_key().clone());
        let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
        let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
        gateway.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

        // Genesis + auth list so far, in attach order.
        let drained = gateway.take_broadcasts();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].id(), genesis);
        assert!(gateway.take_broadcasts().is_empty(), "drain empties the outbox");

        // An accepted reading lands in the outbox; a rejected stranger
        // and a gossip receipt do not.
        let tips = gateway.random_tips(&mut rng).unwrap();
        let diff = gateway.difficulty_for(dev_id, t(1));
        let p = device.prepare_reading(b"ok", tips, t(1), diff, &mut rng);
        let accepted_id = gateway.submit(p.tx.clone(), t(1)).unwrap();
        let stranger = LightNode::new(Account::generate(&mut rng));
        let tips = gateway.random_tips(&mut rng).unwrap();
        let bad = stranger.prepare_reading(b"no", tips, t(1), Difficulty::INITIAL, &mut rng);
        let _ = gateway.submit(bad.tx, t(1));
        gateway.receive_broadcast(p.tx, t(1)).unwrap();
        let drained = gateway.take_broadcasts();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id(), accepted_id);
    }

    #[test]
    fn key_distribution_through_roles() {
        let mut w = world(11);
        boot(&mut w);
        let dev_id = w.device.id();
        let m1 = w.manager.start_key_distribution(dev_id, t(1), &mut w.rng);
        let cfg = *w.manager.keydist_config();
        let (mut ds, m2) = crate::keydist::DeviceSession::handle_m1(
            w.device.account(),
            w.manager.public_key(),
            &m1,
            1_000,
            &cfg,
            &mut w.rng,
        )
        .unwrap();
        let m3 = w.manager.handle_m2(dev_id, &m2, t(1), &mut w.rng).unwrap();
        ds.handle_m3(w.manager.public_key(), &m3, 1_002, &cfg).unwrap();
        let key = ds.session_key().unwrap().clone();
        w.device.install_session_key(key.clone());
        assert_eq!(
            w.manager.session_key(dev_id).unwrap().as_bytes(),
            key.as_bytes()
        );

        // Device now posts ciphertext.
        let tips = w.gateway.random_tips(&mut w.rng).unwrap();
        let d = w.gateway.difficulty_for(dev_id, t(2));
        let p = w
            .device
            .prepare_reading(b"secret recipe", tips, t(2), d, &mut w.rng);
        assert!(matches!(p.tx.payload, Payload::EncryptedData { .. }));
        w.gateway.submit(p.tx, t(2)).unwrap();
    }
}
