//! Mapping credit to PoW difficulty (`Cr ∝ 1/D`, paper §IV-B).
//!
//! The paper states the proportionality but not the exact function; the
//! default [`InverseProportionalPolicy`] realizes it with clamping to the
//! paper's difficulty range and separate gains for reward and punishment.
//! A [`LinearPolicy`] and [`FixedPolicy`] exist for the ablation bench
//! (DESIGN.md experiment A2) and the "original PoW" control of Fig 9.

use crate::pow::Difficulty;
use std::fmt;

/// Maps a node's current credit to its PoW difficulty.
pub trait DifficultyPolicy: fmt::Debug {
    /// The difficulty a node with credit `credit` must meet.
    fn difficulty_for(&self, credit: f64) -> Difficulty;
}

/// The paper-faithful policy: `Cr ∝ 1/D`, anchored at `base` for `Cr = 0`.
///
/// * `Cr ≥ 0`: `D = round(base / (1 + gain_reward·Cr))` — active honest
///   nodes mine with fewer zero bits.
/// * `Cr < 0`: `D = round(base · (1 + gain_punish·|Cr|))` — misbehaving
///   nodes face rapidly growing work.
///
/// Both arms clamp to `[min, max]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InverseProportionalPolicy {
    /// Difficulty at zero credit (paper: 11).
    pub base: u32,
    /// Lower clamp (paper: 1).
    pub min: u32,
    /// Upper clamp (paper: 14).
    pub max: u32,
    /// Gain applied to positive credit.
    pub gain_reward: f64,
    /// Gain applied to negative credit.
    pub gain_punish: f64,
}

impl Default for InverseProportionalPolicy {
    /// The calibration used throughout the experiments: `base = 11`,
    /// range 1–14, reward gain 1.0, punish gain 0.65.
    ///
    /// With the default [`crate::credit::CreditParams`], an honest node
    /// issuing ~3 weighted transactions per ΔT holds `Cr ≈ 0.2–0.5` and
    /// mines at difficulty 7–9 (vs 11), while a fresh double-spend drives
    /// `Cr` to ≈ −150 and the difficulty to the clamp at 14 — matching the
    /// qualitative behaviour of the paper's Figs 8–9.
    fn default() -> Self {
        Self {
            base: Difficulty::INITIAL.bits(),
            min: Difficulty::MIN.bits(),
            max: Difficulty::MAX.bits(),
            gain_reward: 1.0,
            gain_punish: 0.65,
        }
    }
}

impl DifficultyPolicy for InverseProportionalPolicy {
    fn difficulty_for(&self, credit: f64) -> Difficulty {
        let raw = if credit >= 0.0 {
            self.base as f64 / (1.0 + self.gain_reward * credit)
        } else {
            self.base as f64 * (1.0 + self.gain_punish * credit.abs())
        };
        let clamped = raw.round().clamp(self.min as f64, self.max as f64);
        Difficulty::unclamped(clamped as u32)
    }
}

/// A linear alternative for the ablation: `D = base − slope·Cr`, clamped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearPolicy {
    /// Difficulty at zero credit.
    pub base: u32,
    /// Lower clamp.
    pub min: u32,
    /// Upper clamp.
    pub max: u32,
    /// Difficulty bits removed per unit of credit.
    pub slope: f64,
}

impl Default for LinearPolicy {
    fn default() -> Self {
        Self {
            base: Difficulty::INITIAL.bits(),
            min: Difficulty::MIN.bits(),
            max: Difficulty::MAX.bits(),
            slope: 6.0,
        }
    }
}

impl DifficultyPolicy for LinearPolicy {
    fn difficulty_for(&self, credit: f64) -> Difficulty {
        let raw = self.base as f64 - self.slope * credit;
        let clamped = raw.round().clamp(self.min as f64, self.max as f64);
        Difficulty::unclamped(clamped as u32)
    }
}

/// Ignores credit entirely — the "original PoW" control in Fig 9.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixedPolicy(
    /// The constant difficulty.
    pub Difficulty,
);

impl DifficultyPolicy for FixedPolicy {
    fn difficulty_for(&self, _credit: f64) -> Difficulty {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_credit_gives_base() {
        let p = InverseProportionalPolicy::default();
        assert_eq!(p.difficulty_for(0.0).bits(), 11);
        let l = LinearPolicy::default();
        assert_eq!(l.difficulty_for(0.0).bits(), 11);
    }

    #[test]
    fn positive_credit_lowers_difficulty() {
        let p = InverseProportionalPolicy::default();
        let d0 = p.difficulty_for(0.0);
        let d1 = p.difficulty_for(0.3);
        let d2 = p.difficulty_for(1.0);
        assert!(d1 < d0);
        assert!(d2 < d1);
        // Honest steady state from the doc comment: Cr ≈ 0.2–0.5 → D 7–9.
        let honest = p.difficulty_for(0.3).bits();
        assert!((7..=9).contains(&honest), "honest D = {honest}");
    }

    #[test]
    fn negative_credit_raises_difficulty_to_clamp() {
        let p = InverseProportionalPolicy::default();
        assert!(p.difficulty_for(-1.0) > p.difficulty_for(0.0));
        // Fresh double-spend: Cr ≈ −150 → clamp at 14.
        assert_eq!(p.difficulty_for(-150.0).bits(), 14);
        // Extreme values stay clamped.
        assert_eq!(p.difficulty_for(-1e12).bits(), 14);
    }

    #[test]
    fn huge_positive_credit_clamps_at_min() {
        let p = InverseProportionalPolicy::default();
        assert_eq!(p.difficulty_for(1e12).bits(), 1);
        let l = LinearPolicy::default();
        assert_eq!(l.difficulty_for(1e12).bits(), 1);
    }

    #[test]
    fn monotonicity_over_credit_range() {
        let p = InverseProportionalPolicy::default();
        let mut last = p.difficulty_for(-200.0);
        let mut credit = -200.0;
        while credit <= 5.0 {
            let d = p.difficulty_for(credit);
            assert!(d <= last, "difficulty must not increase with credit");
            last = d;
            credit += 0.1;
        }
    }

    #[test]
    fn linear_policy_slope() {
        let l = LinearPolicy::default();
        // slope 6: Cr = 0.5 → D = 11 − 3 = 8.
        assert_eq!(l.difficulty_for(0.5).bits(), 8);
        assert_eq!(l.difficulty_for(-0.5).bits(), 14);
    }

    #[test]
    fn fixed_policy_is_constant() {
        let f = FixedPolicy(Difficulty::INITIAL);
        for cr in [-100.0, 0.0, 100.0] {
            assert_eq!(f.difficulty_for(cr), Difficulty::INITIAL);
        }
    }

    #[test]
    fn policies_are_object_safe() {
        let policies: Vec<Box<dyn DifficultyPolicy>> = vec![
            Box::new(InverseProportionalPolicy::default()),
            Box::new(LinearPolicy::default()),
            Box::new(FixedPolicy(Difficulty::new(5))),
        ];
        for p in &policies {
            let _ = p.difficulty_for(0.0);
        }
    }
}
