//! Smart-factory workload generation (the paper's case study, §IV-A).

use biot_core::access::Sensitivity;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a simulated wireless sensor measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Ambient temperature (non-sensitive).
    Temperature,
    /// Relative humidity (non-sensitive).
    Humidity,
    /// Machine vibration (non-sensitive).
    Vibration,
    /// Machine operating parameters — the proprietary "solutions" factories
    /// share through B-IoT (§IV-A.4); sensitive.
    RecipeParameters,
    /// Production counters for auditing; sensitive.
    ProductionCount,
}

impl SensorKind {
    /// Whether readings of this kind require confidentiality.
    pub fn sensitivity(self) -> Sensitivity {
        match self {
            SensorKind::Temperature | SensorKind::Humidity | SensorKind::Vibration => {
                Sensitivity::Public
            }
            SensorKind::RecipeParameters | SensorKind::ProductionCount => Sensitivity::Sensitive,
        }
    }

    /// All kinds, for round-robin fleet construction.
    pub fn all() -> [SensorKind; 5] {
        [
            SensorKind::Temperature,
            SensorKind::Humidity,
            SensorKind::Vibration,
            SensorKind::RecipeParameters,
            SensorKind::ProductionCount,
        ]
    }
}

/// A simulated sensor: reading cadence plus a generator for plausible
/// reading bytes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    /// What it measures.
    pub kind: SensorKind,
    /// Reporting period in virtual milliseconds.
    pub period_ms: u64,
    /// Uniform jitter added to each period, in milliseconds.
    pub jitter_ms: u64,
}

impl SensorSpec {
    /// A sensible default cadence per kind (environmental sensors report
    /// slowly, machine telemetry quickly).
    pub fn with_default_cadence(kind: SensorKind) -> Self {
        let (period_ms, jitter_ms) = match kind {
            SensorKind::Temperature | SensorKind::Humidity => (10_000, 2_000),
            SensorKind::Vibration => (2_000, 500),
            SensorKind::RecipeParameters => (30_000, 5_000),
            SensorKind::ProductionCount => (5_000, 1_000),
        };
        Self {
            kind,
            period_ms,
            jitter_ms,
        }
    }

    /// Generates the reading bytes at virtual time `t_ms`.
    pub fn reading_at<R: Rng + ?Sized>(&self, t_ms: u64, rng: &mut R) -> Vec<u8> {
        match self.kind {
            SensorKind::Temperature => {
                let v = 20.0 + 3.0 * ((t_ms as f64 / 60_000.0).sin()) + rng.gen_range(-0.5..0.5);
                format!("temp_c={v:.2}").into_bytes()
            }
            SensorKind::Humidity => {
                let v = 45.0 + rng.gen_range(-5.0..5.0);
                format!("rh_pct={v:.1}").into_bytes()
            }
            SensorKind::Vibration => {
                let v: f64 = rng.gen_range(0.01..0.8);
                format!("vib_g={v:.3}").into_bytes()
            }
            SensorKind::RecipeParameters => {
                let speed = rng.gen_range(800..1200);
                let temp = rng.gen_range(180..220);
                format!("recipe:spindle_rpm={speed};die_temp_c={temp}").into_bytes()
            }
            SensorKind::ProductionCount => {
                let n = t_ms / 5_000;
                format!("units_total={n}").into_bytes()
            }
        }
    }

    /// Samples the next reporting delay.
    pub fn next_delay_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.jitter_ms == 0 {
            self.period_ms
        } else {
            self.period_ms + rng.gen_range(0..=self.jitter_ms)
        }
    }
}

/// Builds a mixed fleet of `n` sensors cycling through all kinds.
pub fn default_fleet(n: usize) -> Vec<SensorSpec> {
    SensorKind::all()
        .into_iter()
        .cycle()
        .take(n)
        .map(SensorSpec::with_default_cadence)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sensitivity_classes() {
        assert_eq!(SensorKind::Temperature.sensitivity(), Sensitivity::Public);
        assert_eq!(
            SensorKind::RecipeParameters.sensitivity(),
            Sensitivity::Sensitive
        );
    }

    #[test]
    fn readings_are_plausible_text() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in SensorKind::all() {
            let spec = SensorSpec::with_default_cadence(kind);
            let r = spec.reading_at(12_345, &mut rng);
            let s = String::from_utf8(r).expect("readings are UTF-8");
            assert!(s.contains('='), "{kind:?}: {s}");
        }
    }

    #[test]
    fn delays_respect_period_and_jitter() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SensorSpec {
            kind: SensorKind::Vibration,
            period_ms: 1000,
            jitter_ms: 200,
        };
        for _ in 0..100 {
            let d = spec.next_delay_ms(&mut rng);
            assert!((1000..=1200).contains(&d));
        }
        let no_jitter = SensorSpec {
            jitter_ms: 0,
            ..spec
        };
        assert_eq!(no_jitter.next_delay_ms(&mut rng), 1000);
    }

    #[test]
    fn fleet_cycles_kinds() {
        let fleet = default_fleet(7);
        assert_eq!(fleet.len(), 7);
        assert_eq!(fleet[0].kind, SensorKind::Temperature);
        assert_eq!(fleet[5].kind, SensorKind::Temperature);
        assert_eq!(fleet[3].kind, SensorKind::RecipeParameters);
    }

    #[test]
    fn production_count_is_monotone_in_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = SensorSpec::with_default_cadence(SensorKind::ProductionCount);
        let early = String::from_utf8(spec.reading_at(10_000, &mut rng)).unwrap();
        let late = String::from_utf8(spec.reading_at(100_000, &mut rng)).unwrap();
        let parse = |s: &str| s.split('=').nth(1).unwrap().parse::<u64>().unwrap();
        assert!(parse(&late) > parse(&early));
    }
}
