//! DAG vs chain throughput comparison (DESIGN.md experiment A1), plus a
//! wall-clock gateway admission benchmark.
//!
//! The paper's §II claims DAG-structured blockchains beat chain-structured
//! ones on throughput for IoT workloads because consensus is asynchronous:
//! transactions validate each other continuously instead of queueing for
//! the next block. This module drives the *same* Poisson workload through
//! `biot_tangle::Tangle` and `biot_chain::Blockchain` on the discrete-event
//! kernel and measures effective committed transactions per second.
//!
//! [`run_gateway_admission`] complements the virtual-time comparison with
//! real CPU work: it boots a full gateway, pre-mines a signed batch, and
//! times [`Gateway::submit_batch`] under a [`VerifyConfig`] thread count —
//! the Fig 7/8 experiments' admission path, RSA and SHA-256 included.

use biot_chain::{Block, BlockId, Blockchain, ChainTransaction};
use biot_core::difficulty::InverseProportionalPolicy;
use biot_core::identity::Account;
use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager, VerifyConfig};
use biot_core::pow::Difficulty;
use biot_net::queue::EventQueue;
use biot_net::time::SimTime;
use biot_tangle::graph::Tangle;
use biot_tangle::tips::SelectorConfig;
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Workload and system parameters for one comparison point.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputConfig {
    /// Offered load: transaction arrivals per second (Poisson).
    pub offered_tps: f64,
    /// Virtual run length.
    pub duration: SimTime,
    /// Per-transaction validation cost at a gateway, ms (tangle side).
    pub tangle_validate_ms: u64,
    /// Mean block interval, seconds (chain side).
    pub block_interval_s: f64,
    /// Maximum transactions per block (chain side).
    pub block_capacity: usize,
    /// Block propagation delay, ms — two blocks mined within this window
    /// fork, and one side's work is wasted (chain side).
    pub propagation_ms: u64,
    /// Tip-selection strategy for the tangle side (default uniform — the
    /// A1 baseline; weighted/depth-constrained configs shift where the
    /// 2 ms validation budget goes, see EXPERIMENTS.md).
    pub selector: SelectorConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            offered_tps: 50.0,
            duration: SimTime::from_secs(300),
            tangle_validate_ms: 2,
            block_interval_s: 10.0,
            block_capacity: 100,
            propagation_ms: 500,
            selector: SelectorConfig::default(),
            seed: 7,
        }
    }
}

/// Measured result for one ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Transactions offered by the workload.
    pub offered: u64,
    /// Transactions effectively committed.
    pub committed: u64,
    /// Committed transactions per second.
    pub effective_tps: f64,
    /// Mean commit latency (arrival → commit), seconds.
    pub mean_latency_s: f64,
    /// Work wasted on fork losers (chain) or dropped by backlog (tangle).
    pub wasted: u64,
}

#[derive(Clone, Copy, Debug)]
enum WorkloadEvent {
    Arrival(u64),
    Mine,
}

/// Poisson inter-arrival sample in milliseconds.
fn next_arrival_ms<R: Rng + ?Sized>(tps: f64, rng: &mut R) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    ((-u.ln() / tps) * 1000.0).max(1.0) as u64
}

/// Runs the Poisson workload through the tangle: each arrival waits for
/// gateway validation capacity (a single busy server), then attaches and
/// is immediately usable; asynchronous approvals confirm it later.
pub fn run_tangle(config: &ThroughputConfig) -> ThroughputResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut tangle = Tangle::new();
    let issuer = NodeId([1; 32]);
    tangle.attach_genesis(issuer, 0);
    let selector = config.selector.build();

    let mut queue: EventQueue<WorkloadEvent> = EventQueue::new();
    queue.schedule_in(next_arrival_ms(config.offered_tps, &mut rng), WorkloadEvent::Arrival(0));

    let mut offered = 0u64;
    let mut committed = 0u64;
    let mut wasted = 0u64;
    let mut latency_total_s = 0.0;
    // The gateway is a single server: validation serializes.
    let mut server_free_at = SimTime::ZERO;
    let duration_ms = config.duration.as_millis();
    let mut seq = 0u64;

    while let Some((now, ev)) = queue.pop() {
        if now.as_millis() > duration_ms {
            break;
        }
        match ev {
            WorkloadEvent::Arrival(n) => {
                offered += 1;
                // Next arrival.
                seq += 1;
                queue.schedule_in(
                    next_arrival_ms(config.offered_tps, &mut rng),
                    WorkloadEvent::Arrival(seq),
                );
                // Validation occupies the server.
                let start = now.max(server_free_at);
                let finish = start + config.tangle_validate_ms;
                server_free_at = finish;
                if finish.as_millis() > duration_ms {
                    wasted += 1; // backlog past the horizon
                    continue;
                }
                let (trunk, branch) = selector
                    .select_tips(&tangle, &mut rng)
                    .expect("genesis present");
                let tx = TransactionBuilder::new(issuer)
                    .parents(trunk, branch)
                    .payload(Payload::Data(n.to_be_bytes().to_vec()))
                    .timestamp_ms(now.as_millis())
                    .nonce(n)
                    .build();
                if tangle.attach(tx, finish.as_millis()).is_ok() {
                    committed += 1;
                    latency_total_s += (finish.as_millis() - now.as_millis()) as f64 / 1000.0;
                } else {
                    wasted += 1;
                }
            }
            WorkloadEvent::Mine => unreachable!("tangle has no mining events"),
        }
    }

    ThroughputResult {
        offered,
        committed,
        effective_tps: committed as f64 / config.duration.as_secs_f64(),
        mean_latency_s: if committed > 0 {
            latency_total_s / committed as f64
        } else {
            0.0
        },
        wasted,
    }
}

/// Runs the same workload through the chain baseline: arrivals queue in a
/// mempool; blocks are mined at exponential intervals; two blocks inside
/// the propagation window fork and the loser's transactions are wasted.
pub fn run_chain(config: &ThroughputConfig) -> ThroughputResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut chain = Blockchain::new();
    let miner = NodeId([9; 32]);
    chain
        .add_block(
            Block {
                prev: BlockId::GENESIS_PARENT,
                miner,
                timestamp_ms: 0,
                nonce: 0,
                txs: vec![],
            },
            0,
        )
        .expect("genesis");

    let mut queue: EventQueue<WorkloadEvent> = EventQueue::new();
    queue.schedule_in(next_arrival_ms(config.offered_tps, &mut rng), WorkloadEvent::Arrival(0));
    let mine_delay = |rng: &mut StdRng| {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        ((-u.ln() * config.block_interval_s) * 1000.0).max(1.0) as u64
    };
    queue.schedule_in(mine_delay(&mut rng), WorkloadEvent::Mine);

    let mut offered = 0u64;
    let mut committed = 0u64;
    let mut wasted = 0u64;
    let mut latency_total_s = 0.0;
    let mut arrival_times: std::collections::VecDeque<u64> = Default::default();
    let mut last_block_at: Option<u64> = None;
    let duration_ms = config.duration.as_millis();
    let mut nonce = 1u64;
    let mut seq = 0u64;

    while let Some((now, ev)) = queue.pop() {
        if now.as_millis() > duration_ms {
            break;
        }
        match ev {
            WorkloadEvent::Arrival(n) => {
                offered += 1;
                seq += 1;
                queue.schedule_in(
                    next_arrival_ms(config.offered_tps, &mut rng),
                    WorkloadEvent::Arrival(seq),
                );
                chain.submit_tx(ChainTransaction {
                    issuer: NodeId([2; 32]),
                    payload: Payload::Data(n.to_be_bytes().to_vec()),
                    timestamp_ms: now.as_millis(),
                });
                arrival_times.push_back(now.as_millis());
            }
            WorkloadEvent::Mine => {
                queue.schedule_in(mine_delay(&mut rng), WorkloadEvent::Mine);
                // Fork: a block mined within the propagation window of the
                // previous one races it; one side loses. We model the loss
                // by discarding this block's transactions.
                let forked = last_block_at
                    .map(|t| now.as_millis().saturating_sub(t) < config.propagation_ms)
                    .unwrap_or(false);
                last_block_at = Some(now.as_millis());
                let txs = chain.take_mempool(config.block_capacity);
                let n_txs = txs.len() as u64;
                if forked {
                    wasted += n_txs;
                    for _ in 0..n_txs {
                        arrival_times.pop_front();
                    }
                    continue;
                }
                let head = chain.head().expect("head exists");
                let block = Block {
                    prev: head,
                    miner,
                    timestamp_ms: now.as_millis(),
                    nonce,
                    txs,
                };
                nonce += 1;
                if chain.add_block(block, now.as_millis()).is_ok() {
                    committed += n_txs;
                    for _ in 0..n_txs {
                        if let Some(arrived) = arrival_times.pop_front() {
                            latency_total_s +=
                                (now.as_millis().saturating_sub(arrived)) as f64 / 1000.0;
                        }
                    }
                }
            }
        }
    }

    ThroughputResult {
        offered,
        committed,
        effective_tps: committed as f64 / config.duration.as_secs_f64(),
        mean_latency_s: if committed > 0 {
            latency_total_s / committed as f64
        } else {
            0.0
        },
        wasted,
    }
}

/// A row of the A1 sweep: one offered load, both systems.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Offered load in tx/s.
    pub offered_tps: f64,
    /// Tangle result.
    pub tangle: ThroughputResult,
    /// Chain result.
    pub chain: ThroughputResult,
}

/// Sweeps offered load and returns one row per point.
pub fn sweep(offered: &[f64], base: &ThroughputConfig) -> Vec<ComparisonRow> {
    offered
        .iter()
        .map(|&tps| {
            let cfg = ThroughputConfig {
                offered_tps: tps,
                ..base.clone()
            };
            ComparisonRow {
                offered_tps: tps,
                tangle: run_tangle(&cfg),
                chain: run_chain(&cfg),
            }
        })
        .collect()
}

/// Parameters for the wall-clock gateway admission benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Number of authorized devices issuing transactions.
    pub devices: usize,
    /// Total transactions in the batch (spread round-robin over devices).
    pub txs: usize,
    /// Thread count for the gateway's batch admission checks.
    pub verify: VerifyConfig,
    /// RNG seed for keys, tips, and payload padding.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            devices: 8,
            txs: 64,
            verify: VerifyConfig::default(),
            seed: 11,
        }
    }
}

/// Measured result of one admission run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AdmissionResult {
    /// Transactions submitted in the batch.
    pub submitted: u64,
    /// Transactions accepted onto the ledger.
    pub accepted: u64,
    /// Wall-clock seconds spent inside `submit_batch`.
    pub wall_secs: f64,
    /// Accepted transactions per wall-clock second.
    pub admission_tps: f64,
}

/// Boots a manager + gateway + device fleet, pre-mines and signs a batch
/// of readings, then times [`Gateway::submit_batch`] — wall clock, real
/// signatures, real PoW digests.
///
/// Every transaction is mined at [`Difficulty::MAX`]: mid-batch credit
/// evolution (e.g. lazy-tip punishment) can only *raise* a device's bar,
/// and MAX clears any bar, so the accepted count is identical across
/// [`VerifyConfig`] thread counts and the knob isolates verification cost.
pub fn run_gateway_admission(cfg: &AdmissionConfig) -> AdmissionResult {
    assert!(cfg.devices > 0, "need at least one device");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(InverseProportionalPolicy::default()),
        GatewayConfig::default(),
    );
    gateway.set_verify_config(cfg.verify);
    let t0 = SimTime::ZERO;
    let genesis = gateway.init_genesis(t0);
    let devices: Vec<LightNode> = (0..cfg.devices)
        .map(|_| LightNode::new(Account::generate(&mut rng)))
        .collect();
    for dev in &devices {
        let id = manager.register_device(dev.public_key().clone());
        manager.authorize(id);
        gateway.register_pubkey(dev.public_key().clone());
    }
    let d = gateway.difficulty_for(manager.id(), t0);
    let list = manager.prepare_auth_list((genesis, genesis), t0, d);
    gateway
        .apply_auth_list(list.tx, t0)
        .expect("manager list must be accepted");

    // Pre-mine and sign the whole batch against the post-boot ledger, so
    // the timed section below is admission only.
    let now = SimTime::from_secs(1);
    let mut txs = Vec::with_capacity(cfg.txs);
    for i in 0..cfg.txs {
        let dev = &devices[i % devices.len()];
        let tips = gateway.random_tips(&mut rng).expect("tips present");
        let p = dev.prepare_reading(
            format!("reading {i}").as_bytes(),
            tips,
            now,
            Difficulty::MAX,
            &mut rng,
        );
        txs.push(p.tx);
    }

    let submitted = txs.len() as u64;
    let start = std::time::Instant::now();
    let results = gateway.submit_batch(txs, now);
    let wall_secs = start.elapsed().as_secs_f64();
    let accepted = results.iter().filter(|r| r.is_ok()).count() as u64;
    AdmissionResult {
        submitted,
        accepted,
        wall_secs,
        admission_tps: if wall_secs > 0.0 {
            accepted as f64 / wall_secs
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ThroughputConfig {
        ThroughputConfig {
            duration: SimTime::from_secs(60),
            ..ThroughputConfig::default()
        }
    }

    #[test]
    fn tangle_keeps_up_at_moderate_load() {
        let r = run_tangle(&quick());
        assert!(r.offered > 2000, "offered {}", r.offered);
        let ratio = r.committed as f64 / r.offered as f64;
        assert!(ratio > 0.95, "tangle commits {ratio}");
        assert!(r.mean_latency_s < 0.1);
    }

    #[test]
    fn chain_is_capped_by_block_capacity() {
        // Offered 50 tps, capacity 100 tx / 10 s = 10 tps → chain saturates.
        let r = run_chain(&quick());
        let cap = 100.0 / 10.0;
        assert!(
            r.effective_tps < cap * 1.3,
            "chain tps {} must hug the {cap} cap",
            r.effective_tps
        );
        assert!(r.committed < r.offered / 2);
    }

    #[test]
    fn tangle_beats_chain_at_high_load() {
        let cfg = quick();
        let t = run_tangle(&cfg);
        let c = run_chain(&cfg);
        assert!(
            t.effective_tps > c.effective_tps * 3.0,
            "tangle {} vs chain {}",
            t.effective_tps,
            c.effective_tps
        );
        assert!(t.mean_latency_s < c.mean_latency_s);
    }

    #[test]
    fn chain_wastes_work_on_forks() {
        let cfg = ThroughputConfig {
            // Aggressive blocks + slow propagation → frequent forks.
            block_interval_s: 1.0,
            propagation_ms: 600,
            ..quick()
        };
        let r = run_chain(&cfg);
        assert!(r.wasted > 0, "expected fork losses");
    }

    #[test]
    fn low_load_is_easy_for_both() {
        let cfg = ThroughputConfig {
            offered_tps: 2.0,
            ..quick()
        };
        let t = run_tangle(&cfg);
        let c = run_chain(&cfg);
        assert!(t.committed as f64 / t.offered as f64 > 0.95);
        // The chain commits most arrivals too (latency is its weakness).
        assert!(c.committed as f64 / c.offered as f64 > 0.7, "chain ratio");
        assert!(c.mean_latency_s > t.mean_latency_s);
    }

    #[test]
    fn sweep_produces_rows_in_order() {
        let rows = sweep(&[1.0, 10.0], &quick());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].offered_tps, 1.0);
        assert!(rows[1].tangle.offered > rows[0].tangle.offered);
    }

    #[test]
    fn gateway_admission_accepts_batch_on_any_thread_count() {
        let base = AdmissionConfig {
            devices: 4,
            txs: 12,
            seed: 5,
            ..AdmissionConfig::default()
        };
        let serial = run_gateway_admission(&base);
        let parallel = run_gateway_admission(&AdmissionConfig {
            verify: VerifyConfig { threads: 4 },
            ..base
        });
        assert_eq!(serial.submitted, 12);
        assert_eq!(serial.accepted, 12, "MAX-difficulty batch fully admits");
        assert_eq!(parallel.accepted, serial.accepted);
        assert_eq!(parallel.submitted, serial.submitted);
        assert!(serial.wall_secs > 0.0);
        assert!(serial.admission_tps > 0.0);
    }
}
