//! Light-node load generation for the ingest front end.
//!
//! Drives an [`IngestServer`] with hundreds to thousands of concurrent
//! light-node connections **over real sockets**, and reports sustained
//! admission throughput plus ack round-trip latency percentiles. One
//! process, two threads: the server thread runs the reactor against a
//! live [`Gateway`], the driver thread multiplexes every client
//! connection (non-blocking, same framing the devices would use).
//!
//! PoW is real but pre-mined: the world builder mines and signs every
//! transaction up front at [`Difficulty::MIN`] under a
//! [`FixedPolicy`], so the measurement isolates the ingestion path —
//! socket readiness, framing, admission, acking — from nonce-search
//! cost, which `BENCH_pow.json` already characterizes.

use biot_core::difficulty::FixedPolicy;
use biot_core::identity::Account;
use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager, VerifyConfig};
use biot_core::pow::Difficulty;
use biot_gossip::tcp::TcpTransport;
use biot_gossip::transport::Transport;
use biot_ingest::protocol::{
    decode_server, encode_client, AckCode, ClientMsg, ServerMsg,
};
use biot_ingest::reactor::PollerKind;
use biot_ingest::server::{IngestConfig, IngestServer, IngestStats};
use biot_ingest::MonotonicClock;
use biot_net::time::SimTime;
use biot_tangle::conflict::LazyTipPolicy;
use biot_tangle::tx::{Payload, Transaction, TxId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deterministic world for ingestion experiments: a gateway that
/// admits at fixed minimum difficulty, plus a pool of pre-mined,
/// pre-signed transactions anchored at the genesis.
pub struct IngestWorld {
    /// The gateway, genesis attached and device keys registered.
    pub gateway: Gateway,
    /// The genesis transaction id.
    pub genesis: TxId,
    /// Pre-mined transactions, all unique, all admissible in any order.
    pub pool: Vec<Transaction>,
}

/// Builds an [`IngestWorld`] deterministically from `seed`: same seed,
/// same accounts, same transactions, bit-identical gateway — which is
/// what lets the equivalence test replay one server's admission stream
/// through a twin.
pub fn build_world(seed: u64, devices: usize, pool_size: usize) -> IngestWorld {
    assert!(devices > 0, "need at least one device");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(FixedPolicy(Difficulty::MIN)),
        GatewayConfig {
            // Parents stay (genesis, genesis) for the whole run; don't
            // punish that as lazy — this harness measures ingestion, not
            // tip hygiene.
            lazy_policy: LazyTipPolicy {
                max_parent_age_ms: u64::MAX,
                max_parent_approvers: usize::MAX,
            },
            ..GatewayConfig::default()
        },
    );
    let genesis = gateway.init_genesis(SimTime::ZERO);

    let nodes: Vec<LightNode> = (0..devices)
        .map(|_| LightNode::new(Account::generate(&mut rng)))
        .collect();
    for node in &nodes {
        let id = manager.register_device(node.public_key().clone());
        manager.authorize(id);
        gateway.register_pubkey(node.public_key().clone());
    }
    let d0 = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d0);
    gateway
        .apply_auth_list(list.tx, SimTime::ZERO)
        .expect("auth list applies at boot");

    // Unique payload per transaction → unique id; MIN difficulty makes
    // the nonce search a handful of hashes.
    let mut pool = Vec::with_capacity(pool_size);
    for i in 0..pool_size {
        let node = &nodes[i % devices];
        let payload = Payload::Data((i as u64).to_be_bytes().to_vec());
        let prepared = node.prepare_payload(
            payload,
            (genesis, genesis),
            SimTime::from_millis(i as u64),
            Difficulty::MIN,
        );
        pool.push(prepared.tx);
    }
    IngestWorld { gateway, genesis, pool }
}

/// Loadgen knobs.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// World seed (accounts and pre-mined pool).
    pub seed: u64,
    /// Concurrent client connections that actually send transactions.
    pub connections: usize,
    /// Additional connections that register with the reactor but never
    /// send a byte — the mostly-idle device fleet. This is the knob that
    /// separates a readiness reactor from a naive per-connection scan:
    /// idle sockets cost the scan baseline a syscall per tick each, and
    /// cost epoll nothing.
    pub idle_connections: usize,
    /// Distinct device accounts shared by the connections (RSA keygen is
    /// the expensive part of setup; a handful is plenty).
    pub devices: usize,
    /// Frames each connection sends.
    pub frames_per_conn: usize,
    /// Transactions per frame (`1` sends `SubmitTx`, else `SubmitBatch`).
    pub batch_size: usize,
    /// Gap between one connection's frames — the arrival rate knob: each
    /// connection offers `batch_size / arrival_interval` tx/s.
    pub arrival_interval: Duration,
    /// Abort the run after this long even if acks are missing.
    pub deadline: Duration,
    /// Server-side configuration (poller kind lives here).
    pub ingest: IngestConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            seed: 0xB107,
            connections: 64,
            idle_connections: 0,
            devices: 4,
            frames_per_conn: 4,
            batch_size: 8,
            arrival_interval: Duration::from_millis(20),
            deadline: Duration::from_secs(60),
            ingest: IngestConfig::default(),
        }
    }
}

/// What a loadgen run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Connections that completed their schedule.
    pub connections: usize,
    /// Transactions sent across all connections.
    pub sent_txs: usize,
    /// Per-ack-code transaction counts, indexed by [`AckCode`] order.
    pub acked: AckTally,
    /// Wall time from first frame to last ack, milliseconds.
    pub elapsed_ms: u64,
    /// Sustained admitted transactions per second.
    pub admitted_per_sec: f64,
    /// Median ack round-trip, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile ack round-trip, milliseconds.
    pub p99_ms: f64,
    /// Server-side counters at shutdown.
    pub server: IngestStats,
    /// The poller that actually ran (epoll may fall back to scan).
    pub poller: PollerKind,
}

/// Transaction counts by ack outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AckTally {
    /// `Accepted` acks.
    pub accepted: usize,
    /// `RateLimited` acks.
    pub rate_limited: usize,
    /// `Busy` acks.
    pub busy: usize,
    /// Everything else (gateway rejections).
    pub rejected: usize,
}

impl AckTally {
    fn count(&mut self, code: AckCode) {
        match code {
            AckCode::Accepted => self.accepted += 1,
            AckCode::RateLimited => self.rate_limited += 1,
            AckCode::Busy => self.busy += 1,
            _ => self.rejected += 1,
        }
    }

    /// Total acked transactions.
    pub fn total(&self) -> usize {
        self.accepted + self.rate_limited + self.busy + self.rejected
    }
}

/// One multiplexed client connection and its send schedule.
struct Client {
    transport: TcpTransport,
    /// Frames not yet sent (each already encoded).
    to_send: VecDeque<(Vec<u8>, usize)>,
    /// Send instants of frames whose acks are outstanding (FIFO — the
    /// server acks in frame order).
    awaiting: VecDeque<Instant>,
    next_send: Instant,
    acked_frames: usize,
    sent_frames: usize,
}

/// Runs the full experiment: boots the server on an ephemeral port,
/// connects `config.connections` clients, drives the schedule, and
/// collects both sides' numbers.
///
/// # Panics
///
/// Panics on socket failures (bind/connect) — a loadgen that cannot set
/// up its sockets has no meaningful partial result.
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    let world = build_world(
        config.seed,
        config.devices,
        config.connections * config.frames_per_conn * config.batch_size,
    );
    let mut gateway = world.gateway;
    gateway.set_verify_config(VerifyConfig::default());

    let mut server =
        IngestServer::bind("127.0.0.1:0", config.ingest).expect("bind ingest server");
    let addr = server.local_addr().expect("server addr");
    let poller = server.poller_kind();

    let stop = Arc::new(AtomicBool::new(false));
    let server_stop = Arc::clone(&stop);
    let server_thread = std::thread::spawn(move || {
        let clock = MonotonicClock::new();
        while !server_stop.load(Ordering::Relaxed) {
            server
                .poll(&mut gateway, clock.now(), 10)
                .expect("server poll");
        }
        server.stats()
    });

    let report = drive_clients(config, addr, &world.pool);
    stop.store(true, Ordering::Relaxed);
    let server_stats = server_thread.join().expect("server thread");

    LoadgenReport {
        server: server_stats,
        poller,
        ..report
    }
}

/// Multiplexes every client on the calling thread until the schedule
/// completes or the deadline passes.
fn drive_clients(config: &LoadgenConfig, addr: SocketAddr, pool: &[Transaction]) -> LoadgenReport {
    let start = Instant::now();
    // The idle fleet connects first: it must already be registered with
    // the reactor while the active connections run their schedules.
    let idle: Vec<TcpTransport> = (0..config.idle_connections)
        .map(|_| TcpTransport::connect(addr).expect("idle connect"))
        .collect();
    let mut clients = Vec::with_capacity(config.connections);
    let mut next_tx = 0usize;
    for c in 0..config.connections {
        let mut to_send = VecDeque::with_capacity(config.frames_per_conn);
        for _ in 0..config.frames_per_conn {
            let txs: Vec<Transaction> =
                pool[next_tx..next_tx + config.batch_size].to_vec();
            next_tx += config.batch_size;
            let count = txs.len();
            let msg = if count == 1 {
                ClientMsg::SubmitTx(txs.into_iter().next().expect("one tx"))
            } else {
                ClientMsg::SubmitBatch(txs)
            };
            to_send.push_back((encode_client(&msg), count));
        }
        let transport = TcpTransport::connect(addr).expect("client connect");
        clients.push(Client {
            transport,
            to_send,
            awaiting: VecDeque::new(),
            // Stagger first sends across one arrival interval so the
            // fleet doesn't fire in lockstep.
            next_send: start + config.arrival_interval * (c as u32) / (config.connections as u32),
            acked_frames: 0,
            sent_frames: 0,
        });
    }

    let total_frames = config.connections * config.frames_per_conn;
    let mut sent_txs = 0usize;
    let mut tally = AckTally::default();
    let mut latencies: Vec<f64> = Vec::with_capacity(total_frames);
    let mut done_frames = 0usize;
    let mut completed_conns = 0usize;

    while done_frames < total_frames && start.elapsed() < config.deadline {
        let mut progressed = false;
        let now = Instant::now();
        for client in &mut clients {
            if !client.transport.is_open()
                || (client.to_send.is_empty() && client.awaiting.is_empty())
            {
                // Closed, or schedule complete: stop spending driver
                // syscalls on it (the server side stays registered).
                continue;
            }
            // Send phase: at most one frame per pass per connection.
            if now >= client.next_send {
                if let Some((frame, count)) = client.to_send.pop_front() {
                    match client.transport.send(&frame) {
                        Ok(()) => {
                            client.awaiting.push_back(Instant::now());
                            client.next_send = now + config.arrival_interval;
                            client.sent_frames += 1;
                            sent_txs += count;
                            progressed = true;
                        }
                        Err(_) => {
                            // Transport backpressure or closed: retry the
                            // frame next pass (closed conns are skipped).
                            client.to_send.push_front((frame, count));
                        }
                    }
                }
            }
            // Receive phase: drain every ack currently buffered.
            while let Ok(Some(frame)) = client.transport.try_recv() {
                let ServerMsg::Ack(results) =
                    decode_server(&frame).expect("well-formed ack");
                let sent_at = client
                    .awaiting
                    .pop_front()
                    .expect("one outstanding frame per ack");
                latencies.push(sent_at.elapsed().as_secs_f64() * 1e3);
                for r in &results {
                    tally.count(r.code);
                }
                client.acked_frames += 1;
                done_frames += 1;
                progressed = true;
                if client.acked_frames == config.frames_per_conn {
                    completed_conns += 1;
                }
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let elapsed = start.elapsed();
    drop(idle);

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };

    LoadgenReport {
        connections: completed_conns,
        sent_txs,
        acked: tally,
        elapsed_ms: elapsed.as_millis() as u64,
        admitted_per_sec: tally.accepted as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        server: IngestStats::default(), // filled by run_loadgen
        poller: PollerKind::Scan,       // filled by run_loadgen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_building_is_deterministic() {
        let a = build_world(7, 2, 6);
        let b = build_world(7, 2, 6);
        let ids_a: Vec<TxId> = a.pool.iter().map(|t| t.id()).collect();
        let ids_b: Vec<TxId> = b.pool.iter().map(|t| t.id()).collect();
        assert_eq!(ids_a, ids_b);
        assert_eq!(a.genesis, b.genesis);
        // All pool entries unique.
        let mut dedup = ids_a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids_a.len());
    }

    #[test]
    fn pool_txs_admit_directly() {
        let world = build_world(11, 2, 8);
        let mut gateway = world.gateway;
        let results = gateway.submit_batch(world.pool, SimTime::from_secs(1));
        assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
    }

    #[test]
    fn small_loadgen_round_trips_over_sockets() {
        let config = LoadgenConfig {
            connections: 8,
            frames_per_conn: 3,
            batch_size: 4,
            arrival_interval: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(&config);
        assert_eq!(report.connections, 8, "all clients complete");
        assert_eq!(report.sent_txs, 8 * 3 * 4);
        assert_eq!(report.acked.total(), report.sent_txs);
        assert_eq!(report.acked.accepted, report.sent_txs, "{report:?}");
        assert_eq!(report.server.txs_admitted as usize, report.sent_txs);
    }
}
