//! Raspberry Pi 3B timing calibration.
//!
//! The paper's experiments ran on a Raspberry Pi Model 3B (Quad Core @
//! 1.2 GHz). We reproduce them in virtual time, so we need a model of how
//! long PoW and AES take on that hardware. The model is calibrated to the
//! paper's own measured anchor points.
//!
//! **A note on the paper's internal scales.** Fig 7 reports PoW times of
//! 0.162 s at D=1, 10.98 s at D=12, and 245.3 s at D=14 — a curve whose
//! per-step growth is itself growing (their "difficulty" is an IOTA-style
//! unit, not zero *bits*). Fig 9 then reports 0.7 s per transaction at the
//! initial difficulty 11, which is inconsistent with Fig 7's ≈7.5 s at
//! D=11. We therefore expose per-figure calibrations:
//! [`PiCalibration::fig7`] interpolates the Fig 7 anchors exactly, and
//! [`PiCalibration::exponential`] anchors a clean `t = c·2^(D−b)` law at a
//! chosen point (Fig 9 uses `0.7 s @ D11`; Fig 8 uses `40 s @ D14`).
//! EXPERIMENTS.md discusses the discrepancy.

use biot_core::pow::Difficulty;
use rand::Rng;

/// Expected PoW running time as a function of difficulty, calibrated to
/// the Raspberry Pi 3B.
#[derive(Clone, Debug, PartialEq)]
pub struct PiCalibration {
    /// `(difficulty, expected_seconds)` anchors, ascending by difficulty.
    anchors: Vec<(u32, f64)>,
}

impl PiCalibration {
    /// Builds a calibration from anchor points.
    ///
    /// Between anchors the expected time is interpolated log-linearly;
    /// outside the anchor range the nearest segment's growth rate is
    /// extrapolated.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two anchors are given, they are not strictly
    /// ascending in difficulty, or any time is non-positive.
    pub fn from_anchors(anchors: Vec<(u32, f64)>) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        for w in anchors.windows(2) {
            assert!(w[0].0 < w[1].0, "anchors must ascend in difficulty");
        }
        assert!(anchors.iter().all(|a| a.1 > 0.0), "times must be positive");
        Self { anchors }
    }

    /// The Fig 7 calibration: the paper's measured anchors
    /// `(1, 0.162 s)`, `(12, 10.98 s)`, `(14, 245.3 s)`.
    pub fn fig7() -> Self {
        Self::from_anchors(vec![(1, 0.162), (12, 10.98), (14, 245.3)])
    }

    /// A pure exponential law `t(D) = t_base · 2^(D − d_base)`.
    ///
    /// This matches the zero-bits semantics of our PoW (each extra bit
    /// doubles expected work).
    pub fn exponential(d_base: u32, t_base_secs: f64) -> Self {
        Self::from_anchors(vec![(d_base, t_base_secs), (d_base + 1, t_base_secs * 2.0)])
    }

    /// The Fig 9 calibration: 0.7 s at the initial difficulty 11
    /// (the paper's "original PoW" average), doubling per bit.
    pub fn fig9() -> Self {
        Self::exponential(11, 0.7)
    }

    /// The Fig 8 calibration: chosen so a maximally-punished node (D=14)
    /// needs ≈40 s per PoW, reproducing the ~37 s recovery gap of
    /// Fig 8(a).
    pub fn fig8() -> Self {
        Self::exponential(14, 40.0)
    }

    /// Expected PoW time in seconds at `difficulty`.
    pub fn expected_pow_secs(&self, difficulty: Difficulty) -> f64 {
        let d = difficulty.bits() as f64;
        let a = &self.anchors;
        // Find the segment containing d (or the nearest for extrapolation).
        let seg = if d <= a[0].0 as f64 {
            (a[0], a[1])
        } else if d >= a[a.len() - 1].0 as f64 {
            (a[a.len() - 2], a[a.len() - 1])
        } else {
            let idx = a.windows(2).position(|w| (w[1].0 as f64) >= d).unwrap();
            (a[idx], a[idx + 1])
        };
        let (d0, t0) = (seg.0 .0 as f64, seg.0 .1);
        let (d1, t1) = (seg.1 .0 as f64, seg.1 .1);
        // Log-linear interpolation: ln t is linear in d on the segment.
        let slope = (t1.ln() - t0.ln()) / (d1 - d0);
        (t0.ln() + slope * (d - d0)).exp()
    }

    /// Samples an actual PoW duration at `difficulty`: exponential with
    /// the calibrated mean (nonce search is memoryless).
    pub fn sample_pow_secs<R: Rng + ?Sized>(&self, difficulty: Difficulty, rng: &mut R) -> f64 {
        let mean = self.expected_pow_secs(difficulty);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// The implied hash rate at `difficulty` (hashes/second): expected
    /// trials divided by expected time.
    pub fn hash_rate(&self, difficulty: Difficulty) -> f64 {
        difficulty.expected_trials() / self.expected_pow_secs(difficulty)
    }
}

/// AES-CBC encryption timing on the Pi (Fig 10): a linear model
/// `t = overhead + per_byte · n`, fitted to the paper's anchors
/// (64 B → 0.205 ms, 256 KiB → 373 ms, 1 MiB → 1 491 ms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AesTiming {
    /// Fixed per-call overhead in milliseconds.
    pub overhead_ms: f64,
    /// Cost per plaintext byte in milliseconds.
    pub per_byte_ms: f64,
}

impl Default for AesTiming {
    fn default() -> Self {
        // per_byte from the 1 MiB anchor; overhead from the 64 B anchor.
        let per_byte_ms = 1491.0 / (1 << 20) as f64;
        let overhead_ms = 0.205 - 64.0 * per_byte_ms;
        Self {
            overhead_ms,
            per_byte_ms,
        }
    }
}

impl AesTiming {
    /// Expected encryption time in milliseconds for an `n`-byte message.
    pub fn expected_ms(&self, n: usize) -> f64 {
        self.overhead_ms + self.per_byte_ms * n as f64
    }

    /// Expected encryption time in seconds.
    pub fn expected_secs(&self, n: usize) -> f64 {
        self.expected_ms(n) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig7_hits_its_anchors() {
        let c = PiCalibration::fig7();
        assert!((c.expected_pow_secs(Difficulty::new(1)) - 0.162).abs() < 1e-9);
        assert!((c.expected_pow_secs(Difficulty::new(12)) - 10.98).abs() < 1e-6);
        assert!((c.expected_pow_secs(Difficulty::new(14)) - 245.3).abs() < 1e-6);
    }

    #[test]
    fn fig7_interpolates_monotonically() {
        let c = PiCalibration::fig7();
        let mut last = 0.0;
        for d in 1..=14 {
            let t = c.expected_pow_secs(Difficulty::new(d));
            assert!(t > last, "D{d}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn fig7_growth_accelerates_past_twelve() {
        let c = PiCalibration::fig7();
        let r_low = c.expected_pow_secs(Difficulty::new(11))
            / c.expected_pow_secs(Difficulty::new(10));
        let r_high = c.expected_pow_secs(Difficulty::new(14))
            / c.expected_pow_secs(Difficulty::new(13));
        assert!(r_high > r_low * 2.0, "tail must grow faster: {r_low} vs {r_high}");
    }

    #[test]
    fn exponential_law_doubles_per_bit() {
        let c = PiCalibration::fig9();
        let t11 = c.expected_pow_secs(Difficulty::new(11));
        let t12 = c.expected_pow_secs(Difficulty::new(12));
        let t8 = c.expected_pow_secs(Difficulty::new(8));
        assert!((t11 - 0.7).abs() < 1e-9);
        assert!((t12 / t11 - 2.0).abs() < 1e-9);
        assert!((t8 - 0.7 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn fig8_anchor() {
        let c = PiCalibration::fig8();
        assert!((c.expected_pow_secs(Difficulty::new(14)) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_mean_matches_expectation() {
        let c = PiCalibration::fig9();
        let mut rng = StdRng::seed_from_u64(1);
        let d = Difficulty::new(11);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| c.sample_pow_secs(d, &mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.7).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn hash_rate_is_positive_and_sane() {
        let c = PiCalibration::fig9();
        let r = c.hash_rate(Difficulty::new(11));
        // 2^11 / 0.7 ≈ 2926 H/s.
        assert!((r - 2925.7).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn one_anchor_panics() {
        PiCalibration::from_anchors(vec![(1, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn descending_anchors_panic() {
        PiCalibration::from_anchors(vec![(5, 1.0), (3, 2.0)]);
    }

    #[test]
    fn aes_timing_hits_paper_anchors() {
        let t = AesTiming::default();
        // 64 B anchor is exact by construction.
        assert!((t.expected_ms(64) - 0.205).abs() < 1e-9);
        // 1 MiB anchor is exact by construction.
        assert!((t.expected_ms(1 << 20) - 1491.0).abs() < 0.2);
        // 256 KiB should come out near the paper's 373 ms.
        let t256k = t.expected_ms(256 * 1024);
        assert!((t256k - 373.0).abs() < 10.0, "256 KiB: {t256k} ms");
        // 64 KiB near 93.22 ms.
        let t64k = t.expected_ms(64 * 1024);
        assert!((t64k - 93.22).abs() < 1.0, "64 KiB: {t64k} ms");
    }

    #[test]
    fn aes_timing_is_monotone() {
        let t = AesTiming::default();
        assert!(t.expected_ms(128) > t.expected_ms(64));
        assert!(t.expected_secs(1000) > 0.0);
    }
}
