//! Networked multi-gateway simulation: the full §IV-A architecture on the
//! discrete-event kernel.
//!
//! Several gateways replicate the tangle by gossiping transactions over
//! `biot-net`'s lossy, partitionable links; light nodes submit to their
//! nearest gateway and fail over when it dies. This is the layer the
//! single-node runner (Figs 8–9) deliberately omits, and what backs the
//! resilience experiments: messages can be lost, delayed, or blocked, and
//! replicas must still converge.

use biot_core::credit::Misbehavior;
use biot_core::difficulty::InverseProportionalPolicy;
use biot_core::identity::Account;
use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager, SubmitError};
use biot_tangle::graph::TangleError;
use biot_tangle::tx::NodeId;
use biot_net::latency::UniformLatency;
use biot_net::network::{Envelope, Network, NodeAddr};
use biot_net::queue::EventQueue;
use biot_net::time::SimTime;
use biot_tangle::tx::{Transaction, TxId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Messages exchanged in the cluster.
#[derive(Clone, Debug)]
pub enum ClusterMsg {
    /// A light node submits a mined transaction to a gateway.
    Submit(Transaction),
    /// A gateway gossips an accepted transaction to a peer gateway.
    Gossip(Transaction),
    /// A device asks its gateway to process a reading at this instant
    /// (driver-internal tick).
    DeviceTick {
        /// Index into the cluster's device list.
        device: usize,
    },
    /// Periodic anti-entropy: every gateway pushes transactions its peers
    /// are missing (driver-internal tick).
    SyncTick,
    /// A gateway tells its peers about detected misbehaviour, so
    /// punishment follows the attacker to every replica (otherwise an
    /// attacker escapes its difficulty penalty by switching gateways).
    MisbehaviorReport {
        /// The offending node.
        node: NodeId,
        /// What it did.
        kind: Misbehavior,
    },
}

/// Configuration of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of gateways (full nodes).
    pub n_gateways: usize,
    /// Number of light nodes.
    pub n_devices: usize,
    /// Virtual run length.
    pub duration: SimTime,
    /// Mean interval between readings per device, ms.
    pub report_interval_ms: u64,
    /// Message loss probability on every link.
    pub loss: f64,
    /// Gateway to kill halfway through the run (tests failover), if any.
    pub kill_gateway_at: Option<(usize, SimTime)>,
    /// Anti-entropy interval: how often gateways reconcile ledgers, ms.
    /// Repeated sync rounds recover from gossip loss.
    pub sync_interval_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            n_gateways: 3,
            n_devices: 4,
            duration: SimTime::from_secs(60),
            report_interval_ms: 4_000,
            loss: 0.0,
            kill_gateway_at: None,
            sync_interval_ms: 5_000,
            seed: 17,
        }
    }
}

/// Result of a cluster run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClusterResult {
    /// Transactions accepted at each gateway (by submission, not gossip).
    pub accepted_per_gateway: Vec<u64>,
    /// Ledger length per gateway at the end.
    pub ledger_len_per_gateway: Vec<usize>,
    /// Submissions that failed because the target gateway was down or the
    /// message was lost.
    pub failed_submissions: u64,
    /// Gossip messages delivered.
    pub gossip_delivered: u64,
    /// Fraction of transactions present on *all* live gateways at the end.
    pub convergence: f64,
    /// Misbehaviour reports gossiped between gateways.
    pub misbehavior_reports: u64,
}

/// Runs a cluster scenario.
///
/// Devices are assigned to gateways round-robin; every accepted submission
/// is gossiped to all peer gateways; devices whose home gateway is down
/// fail over to the next live one.
pub fn run_cluster(config: &ClusterConfig) -> ClusterResult {
    assert!(config.n_gateways >= 1, "need at least one gateway");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- Boot: manager key pinned in every gateway's genesis config ------
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateways: Vec<Option<Gateway>> = (0..config.n_gateways)
        .map(|_| {
            let mut g = Gateway::new(
                manager.public_key().clone(),
                Box::new(InverseProportionalPolicy::default()),
                GatewayConfig::default(),
            );
            g.init_genesis(SimTime::ZERO);
            Some(g)
        })
        .collect();
    let genesis = gateways[0].as_ref().unwrap().tangle().genesis().unwrap();

    let devices: Vec<LightNode> = (0..config.n_devices)
        .map(|_| LightNode::new(Account::generate(&mut rng)))
        .collect();
    for d in &devices {
        let id = manager.register_device(d.public_key().clone());
        manager.authorize(id);
        for g in gateways.iter_mut().flatten() {
            g.register_pubkey(d.public_key().clone());
        }
    }
    // Publish the list on every replica.
    {
        let g0 = gateways[0].as_mut().unwrap();
        let d = g0.difficulty_for(manager.id(), SimTime::ZERO);
        let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
        for g in gateways.iter_mut().flatten() {
            g.apply_auth_list(list.tx.clone(), SimTime::ZERO)
                .expect("auth list applies");
        }
    }

    // --- Network ----------------------------------------------------------
    // Addresses: gateways are 0..n_gateways, devices follow.
    let gw_addr = |i: usize| NodeAddr(i as u32);
    let dev_addr = |i: usize| NodeAddr((config.n_gateways + i) as u32);
    let mut net: Network<ClusterMsg> = Network::new();
    net.set_latency(Box::new(UniformLatency::new(2, 15)));
    net.set_loss(config.loss);
    let mut queue: EventQueue<Envelope<ClusterMsg>> = EventQueue::new();

    // Schedule first ticks.
    for (i, _) in devices.iter().enumerate() {
        queue.schedule_in(
            (i as u64 + 1) * 250,
            Envelope {
                from: dev_addr(i),
                to: dev_addr(i),
                msg: ClusterMsg::DeviceTick { device: i },
            },
        );
    }

    // First anti-entropy round.
    queue.schedule_in(
        config.sync_interval_ms,
        Envelope {
            from: gw_addr(0),
            to: gw_addr(0),
            msg: ClusterMsg::SyncTick,
        },
    );

    let mut result = ClusterResult {
        accepted_per_gateway: vec![0; config.n_gateways],
        ..ClusterResult::default()
    };
    let mut home: HashMap<usize, usize> = (0..config.n_devices)
        .map(|i| (i, i % config.n_gateways))
        .collect();
    let mut killed: Option<usize> = None;
    let duration_ms = config.duration.as_millis();
    let mut reading_no = 0u64;

    while let Some((now, env)) = queue.pop() {
        if now.as_millis() > duration_ms {
            break;
        }
        // Kill a gateway when its time comes.
        if let Some((victim, at)) = config.kill_gateway_at {
            if killed.is_none() && now >= at {
                killed = Some(victim);
                net.fail_node(gw_addr(victim));
                gateways[victim] = None;
            }
        }
        match env.msg {
            ClusterMsg::DeviceTick { device } => {
                // Pick the home gateway; fail over if it is down.
                let mut target = home[&device];
                if gateways[target].is_none() {
                    if let Some(alt) = gateways.iter().position(|g| g.is_some()) {
                        target = alt;
                        home.insert(device, alt);
                    } else {
                        break; // no gateways left
                    }
                }
                // Query tips and difficulty from the (live) gateway, mine,
                // and send the submission over the network.
                let gw = gateways[target].as_ref().unwrap();
                if let Some(tips) = gw.random_tips(&mut rng) {
                    let d = gw.difficulty_for(devices[device].id(), now);
                    reading_no += 1;
                    let prepared = devices[device].prepare_reading(
                        format!("r{reading_no}").as_bytes(),
                        tips,
                        now,
                        d,
                        &mut rng,
                    );
                    if !net.send(
                        &mut queue,
                        dev_addr(device),
                        gw_addr(target),
                        ClusterMsg::Submit(prepared.tx),
                        &mut rng,
                    ) {
                        result.failed_submissions += 1;
                    }
                }
                // Next tick.
                queue.schedule_in(
                    config.report_interval_ms,
                    Envelope {
                        from: dev_addr(device),
                        to: dev_addr(device),
                        msg: ClusterMsg::DeviceTick { device },
                    },
                );
            }
            ClusterMsg::Submit(tx) => {
                let gw_idx = env.to.0 as usize;
                let peers: Vec<NodeAddr> = (0..config.n_gateways)
                    .filter(|&j| j != gw_idx && gateways[j].is_some())
                    .map(gw_addr)
                    .collect();
                let Some(gw) = gateways.get_mut(gw_idx).and_then(|g| g.as_mut()) else {
                    result.failed_submissions += 1;
                    continue;
                };
                match gw.submit(tx.clone(), now) {
                    Ok(_) => {
                        result.accepted_per_gateway[gw_idx] += 1;
                        net.broadcast(
                            &mut queue,
                            gw_addr(gw_idx),
                            &peers,
                            ClusterMsg::Gossip(tx),
                            &mut rng,
                        );
                    }
                    Err(SubmitError::Tangle(TangleError::DoubleSpend { .. })) => {
                        // Local punishment already recorded; tell peers so
                        // the attacker cannot gateway-hop out of it.
                        result.failed_submissions += 1;
                        net.broadcast(
                            &mut queue,
                            gw_addr(gw_idx),
                            &peers,
                            ClusterMsg::MisbehaviorReport {
                                node: tx.issuer,
                                kind: Misbehavior::DoubleSpend,
                            },
                            &mut rng,
                        );
                    }
                    Err(_) => {
                        result.failed_submissions += 1;
                    }
                }
            }
            ClusterMsg::MisbehaviorReport { node, kind } => {
                let gw_idx = env.to.0 as usize;
                if let Some(gw) = gateways.get_mut(gw_idx).and_then(|g| g.as_mut()) {
                    gw.report_misbehavior(node, kind, now);
                    result.misbehavior_reports += 1;
                }
            }
            ClusterMsg::SyncTick => {
                // Each live gateway pushes up to a bounded batch of
                // transactions each peer is missing. Loss on these pushes
                // is recovered by the next round.
                const BATCH: usize = 64;
                for a in 0..config.n_gateways {
                    let Some(src) = gateways[a].as_ref() else { continue };
                    for (b, peer) in gateways.iter().enumerate().take(config.n_gateways) {
                        if a == b {
                            continue;
                        }
                        let Some(dst) = peer.as_ref() else { continue };
                        let missing: Vec<Transaction> = src
                            .tangle()
                            .iter()
                            .filter(|tx| !dst.tangle().contains(&tx.id()))
                            .take(BATCH)
                            .cloned()
                            .collect();
                        for tx in missing {
                            net.send(
                                &mut queue,
                                gw_addr(a),
                                gw_addr(b),
                                ClusterMsg::Gossip(tx),
                                &mut rng,
                            );
                        }
                    }
                }
                queue.schedule_in(
                    config.sync_interval_ms,
                    Envelope {
                        from: gw_addr(0),
                        to: gw_addr(0),
                        msg: ClusterMsg::SyncTick,
                    },
                );
            }
            ClusterMsg::Gossip(tx) => {
                let gw_idx = env.to.0 as usize;
                if let Some(gw) = gateways.get_mut(gw_idx).and_then(|g| g.as_mut()) {
                    // Unknown parents can happen when gossip overtakes its
                    // ancestors or a copy was lost; re-request by retrying
                    // later (simple anti-entropy: reschedule once).
                    if gw.receive_broadcast(tx.clone(), now).is_err() {
                        queue.schedule_in(
                            200,
                            Envelope {
                                from: env.from,
                                to: env.to,
                                msg: ClusterMsg::Gossip(tx),
                            },
                        );
                    } else {
                        result.gossip_delivered += 1;
                    }
                }
            }
        }
    }

    // --- Convergence ------------------------------------------------------
    let live: Vec<&Gateway> = gateways.iter().flatten().collect();
    result.ledger_len_per_gateway = gateways
        .iter()
        .map(|g| g.as_ref().map(|g| g.tangle().len()).unwrap_or(0))
        .collect();
    if !live.is_empty() {
        // Union of all tx ids across live replicas.
        let mut union: HashMap<TxId, usize> = HashMap::new();
        for g in &live {
            for tx in g.tangle().iter() {
                *union.entry(tx.id()).or_insert(0) += 1;
            }
        }
        let everywhere = union.values().filter(|&&c| c == live.len()).count();
        result.convergence = everywhere as f64 / union.len().max(1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use biot_net::time::SimTime as T;

    /// Misbehaviour reports follow the attacker across gateways: after a
    /// double-spend is rejected at gateway 0 and reported, gateway 1 also
    /// raises the attacker's difficulty.
    #[test]
    fn punishment_propagates_across_gateways() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut manager = Manager::new(Account::generate(&mut rng));
        let mk = |m: &Manager| {
            Gateway::new(
                m.public_key().clone(),
                Box::new(InverseProportionalPolicy::default()),
                GatewayConfig::default(),
            )
        };
        let mut g0 = mk(&manager);
        let mut g1 = mk(&manager);
        let genesis = g0.init_genesis(T::ZERO);
        g1.init_genesis(T::ZERO);
        let attacker = LightNode::new(Account::generate(&mut rng));
        let id = manager.register_device(attacker.public_key().clone());
        manager.authorize(id);
        for g in [&mut g0, &mut g1] {
            g.register_pubkey(attacker.public_key().clone());
        }
        let d = g0.difficulty_for(manager.id(), T::ZERO);
        let list = manager.prepare_auth_list((genesis, genesis), T::ZERO, d);
        g0.apply_auth_list(list.tx.clone(), T::ZERO).unwrap();
        g1.apply_auth_list(list.tx, T::ZERO).unwrap();

        // Double-spend at g0.
        let token = [7u8; 32];
        let now = T::from_secs(1);
        let tips = g0.random_tips(&mut rng).unwrap();
        let d = g0.difficulty_for(id, now);
        let spend = attacker.prepare_spend(token, manager.id(), tips, now, d);
        g0.submit(spend.tx.clone(), now).unwrap();
        g1.receive_broadcast(spend.tx, now).unwrap();
        let tips = g0.random_tips(&mut rng).unwrap();
        let respend = attacker.prepare_spend(token, id, tips, now, d);
        assert!(g0.submit(respend.tx, now).is_err());

        // Without the report, g1 would still serve the attacker cheaply.
        let later = T::from_secs(2);
        assert!(g1.difficulty_for(id, later) <= biot_core::Difficulty::INITIAL);
        // The report lands; g1 punishes too.
        g1.report_misbehavior(id, Misbehavior::DoubleSpend, now);
        assert_eq!(g1.difficulty_for(id, later), biot_core::Difficulty::MAX);
    }

    #[test]
    fn lossless_cluster_converges_fully() {
        let r = run_cluster(&ClusterConfig::default());
        let total: u64 = r.accepted_per_gateway.iter().sum();
        assert!(total >= 20, "accepted {total}");
        assert_eq!(r.failed_submissions, 0);
        assert!(
            r.convergence > 0.99,
            "replicas must converge, got {}",
            r.convergence
        );
        // All replicas end with the same ledger length.
        let lens = &r.ledger_len_per_gateway;
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn lossy_cluster_still_mostly_converges() {
        let r = run_cluster(&ClusterConfig {
            loss: 0.1,
            ..ClusterConfig::default()
        });
        let total: u64 = r.accepted_per_gateway.iter().sum();
        assert!(total > 10);
        // Anti-entropy retries recover most gossip; some loss is expected.
        assert!(
            r.convergence > 0.6,
            "lossy convergence too low: {}",
            r.convergence
        );
    }

    #[test]
    fn gateway_failure_does_not_stop_service() {
        let r = run_cluster(&ClusterConfig {
            kill_gateway_at: Some((0, SimTime::from_secs(20))),
            ..ClusterConfig::default()
        });
        // The dead gateway's devices failed over; survivors kept accepting.
        let survivors: u64 = r.accepted_per_gateway[1..].iter().sum();
        assert!(survivors > 10, "survivors accepted {survivors}");
        // Dead gateway's ledger reads 0 (dropped), survivors agree.
        assert_eq!(r.ledger_len_per_gateway[0], 0);
        assert_eq!(
            r.ledger_len_per_gateway[1],
            r.ledger_len_per_gateway[2]
        );
    }

    #[test]
    fn single_gateway_cluster_works() {
        let r = run_cluster(&ClusterConfig {
            n_gateways: 1,
            n_devices: 2,
            ..ClusterConfig::default()
        });
        assert!(r.accepted_per_gateway[0] > 5);
        assert_eq!(r.convergence, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_cluster(&ClusterConfig::default());
        let b = run_cluster(&ClusterConfig::default());
        assert_eq!(a.accepted_per_gateway, b.accepted_per_gateway);
        assert_eq!(a.gossip_delivered, b.gossip_delivered);
    }
}
