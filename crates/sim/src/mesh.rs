//! N-node gossip mesh fleet runner.
//!
//! Where [`crate::gossip`] mirrors one primary/replica pair, this module
//! stands up a whole fleet of [`GossipNode`]s on seeded in-memory links
//! (jittered, byte-counted), wires them into a random bounded-degree
//! topology, injects a pre-generated oracle workload — a DAG of
//! transactions plus a credit-event schedule, each item surfacing at a
//! seeded origin node — and then polls the fleet on a shared virtual
//! clock until every node has converged to the oracle **bit-for-bit**:
//! identical tip sets, identical cumulative weights for every
//! transaction, and an identical `(CrP, CrN, Cr)` breakdown for every
//! node the credit ledger knows.
//!
//! The runner measures what ISSUE 8 cares about: rounds/virtual-time to
//! convergence, bytes on the wire per node (via
//! [`CountingTransport`]), and the redundant-delivery ratio — how many
//! transaction payloads arrived at nodes that already held them. Running
//! the same fleet under [`RelayMode::Flood`] and [`RelayMode::Digest`]
//! quantifies the wire savings of digest-batched, duplicate-suppressed
//! relay.
//!
//! A partition/heal schedule can sever every link crossing a half/half
//! cut for a window of virtual time; dial attempts across the active cut
//! fail, exercising jittered reconnect backoff, and the heal exercises
//! anti-entropy plus credit replay on the fresh handshakes.

use biot_credit::{CreditEvent, CreditLedger, CreditParams, Misbehavior};
use biot_gossip::node::{GossipConfig, GossipNode, RelayMode};
use biot_gossip::transport::{
    ByteCounter, CountingTransport, FnConnector, JitterTransport, MemLink, MemTransport,
    Transport, TransportError, VirtualClock,
};
use biot_net::latency::UniformLatency;
use biot_net::time::SimTime;
use biot_tangle::graph::Tangle;
use biot_tangle::tx::{NodeId, Payload, Transaction, TransactionBuilder, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A half/half network cut active over `[start_ms, heal_ms)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Virtual time at which every link crossing the cut is severed.
    pub start_ms: u64,
    /// Virtual time at which dials across the cut succeed again.
    pub heal_ms: u64,
}

/// Fleet shape, workload, and relay knobs for one mesh run.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Fleet size.
    pub nodes: usize,
    /// Outbound links per node in the seeded random topology (a ring
    /// keeps the graph connected; extra edges are drawn at random).
    pub degree: usize,
    /// Oracle transactions injected (genesis excluded).
    pub txs: usize,
    /// Data payload size per oracle transaction, bytes (a realistic
    /// sensor reading + signature envelope, not a toy marker).
    pub payload_bytes: usize,
    /// Oracle credit events injected.
    pub credit_events: usize,
    /// Master seed: topology, oracle DAG, origins, and link jitter all
    /// derive from it.
    pub seed: u64,
    /// Relay strategy under test.
    pub relay_mode: RelayMode,
    /// Relay fanout (0 = all peers) for digest mode.
    pub fanout: usize,
    /// Digest flush interval, ms.
    pub digest_ms: u64,
    /// Anti-entropy interval, ms.
    pub anti_entropy_ms: u64,
    /// Peer-exchange interval, ms (0 disables).
    pub peer_exchange_ms: u64,
    /// Uniform one-way link latency range `(min_ms, max_ms)`.
    pub jitter_ms: (u64, u64),
    /// Spacing between oracle transaction injections, ms.
    pub tx_interval_ms: u64,
    /// Poll step, ms.
    pub step_ms: u64,
    /// Abort threshold: give up (unconverged) past this virtual time.
    pub max_ms: u64,
    /// Optional partition/heal schedule.
    pub partition: Option<Partition>,
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self {
            nodes: 16,
            degree: 8,
            txs: 200,
            payload_bytes: 256,
            credit_events: 48,
            seed: 42,
            relay_mode: RelayMode::Digest,
            fanout: 6,
            digest_ms: 25,
            anti_entropy_ms: 2_000,
            peer_exchange_ms: 30_000,
            jitter_ms: (5, 30),
            tx_interval_ms: 20,
            step_ms: 25,
            max_ms: 600_000,
            partition: None,
        }
    }
}

/// What one mesh run measured.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MeshOutcome {
    /// Fleet size.
    pub nodes: usize,
    /// Oracle transactions injected.
    pub txs: usize,
    /// Every node matched the oracle bit-for-bit (tips, weights, credit).
    pub converged: bool,
    /// Virtual time at which convergence was first observed, ms.
    pub converged_ms: u64,
    /// Poll rounds executed.
    pub rounds: u64,
    /// Bytes sent fleet-wide (4-byte frame headers included).
    pub total_bytes_sent: u64,
    /// Frames sent fleet-wide.
    pub total_frames_sent: u64,
    /// `total_bytes_sent / nodes`.
    pub bytes_per_node: u64,
    /// Wire cost per node per *wire-delivered* transaction — the
    /// flatness-vs-N headline: `total_bytes_sent / nodes /
    /// (txs × (nodes − 1) / nodes)`. The denominator is the number of
    /// transactions a node actually has to obtain over the wire: its
    /// own submissions arrive locally, and that locally-originated
    /// fraction (1/N for a uniform workload) shrinks as the fleet
    /// grows. Dividing by raw `txs` instead would make the metric grow
    /// mechanically with N for *every* dissemination protocol — even a
    /// perfect one sending each payload exactly once — hiding whether
    /// the per-delivery overhead actually stays flat.
    pub bytes_per_node_per_tx: f64,
    /// The unnormalized figure: `total_bytes_sent / nodes / txs`.
    pub bytes_per_node_per_tx_raw: f64,
    /// Payload deliveries to nodes that already held the transaction.
    pub redundant_deliveries: u64,
    /// `redundant_deliveries / (nodes * txs)` — redundant copies per
    /// useful delivery.
    pub redundancy_ratio: f64,
    /// Relay sends skipped because the target was a known holder.
    pub dup_suppressed: u64,
    /// Digest frames sent fleet-wide.
    pub digests_sent: u64,
    /// Transaction ids carried in those digests.
    pub digest_ids_sent: u64,
    /// Peer-exchange frames sent fleet-wide.
    pub peer_exchanges_sent: u64,
    /// Credit events discarded as duplicates (exactly-once ledger feed).
    pub credit_events_deduped: u64,
    /// Handshakes completed fleet-wide (redials after a heal add more).
    pub handshakes: u64,
    /// Transaction payloads served/pushed fleet-wide.
    pub tx_payloads_sent: u64,
    /// `GetTx` requests sent fleet-wide (parent chases + stale retries).
    pub requests_sent: u64,
    /// Credit events broadcast fleet-wide (dedup-suppressed relay).
    pub credit_events_sent: u64,
    /// Credit-event keys advertised in `CreditKeys` digests fleet-wide.
    pub credit_keys_sent: u64,
}

/// The single-node reference a fleet must reproduce bit-for-bit.
struct Oracle {
    tangle: Tangle,
    ledger: CreditLedger,
    /// `(tx, attach_ms, origin node index)` in injection order.
    txs: Vec<(Transaction, u64, usize)>,
    /// `(event, emit_ms, origin node index)` in injection order.
    events: Vec<(CreditEvent, u64, usize)>,
    events_total: u64,
}

fn build_oracle(cfg: &MeshConfig) -> Oracle {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1A6_0000);
    let mut tangle = Tangle::new();
    let genesis = tangle.attach_genesis(NodeId([0xEE; 32]), 0);
    let mut ids = vec![genesis];
    let mut txs = Vec::with_capacity(cfg.txs);
    for k in 0..cfg.txs {
        let attach_ms = (k as u64 + 1) * cfg.tx_interval_ms;
        // Parents from a sliding recency window keep the DAG tangle-like
        // (several live tips) instead of a chain.
        let window = ids.len().min(24);
        let trunk = ids[ids.len() - 1 - rng.gen_range(0..window)];
        let branch = ids[ids.len() - 1 - rng.gen_range(0..window)];
        let mut issuer = [0u8; 32];
        issuer[0] = (k % 249) as u8 + 1;
        issuer[1] = (k / 249) as u8;
        let mut payload = (k as u32).to_be_bytes().to_vec();
        payload.resize(cfg.payload_bytes.max(4), (k % 251) as u8);
        let tx = TransactionBuilder::new(NodeId(issuer))
            .parents(trunk, branch)
            .payload(Payload::Data(payload))
            .timestamp_ms(attach_ms)
            .build();
        let id = tangle
            .attach(tx.clone(), attach_ms)
            .expect("oracle parents always present");
        ids.push(id);
        let origin = rng.gen_range(0..cfg.nodes);
        txs.push((tx, attach_ms, origin));
    }
    // Credit schedule: whole-number weights and unique timestamps make
    // the ledger fold order-independent, so every replica computes the
    // same breakdown no matter how gossip reorders arrivals.
    let mut ledger = CreditLedger::new(CreditParams::default());
    let mut events = Vec::with_capacity(cfg.credit_events);
    let span = cfg.txs as u64 * cfg.tx_interval_ms;
    for e in 0..cfg.credit_events {
        let subject = NodeId([(e % 7) as u8 + 1; 32]);
        let weight = f64::from(rng.gen_range(1..=3u32));
        let at = SimTime::from_millis(1_000 + e as u64 * 13);
        let ev = if rng.gen_range(0..5u32) == 0 {
            let kind = if rng.gen_bool(0.5) {
                Misbehavior::LazyTips
            } else {
                Misbehavior::DoubleSpend
            };
            CreditEvent::misbehaved(subject, kind, at)
        } else {
            CreditEvent::validated(subject, weight, at)
        };
        ledger.apply(&ev);
        let emit_ms = rng.gen_range(0..=span.max(1));
        let origin = rng.gen_range(0..cfg.nodes);
        events.push((ev, emit_ms, origin));
    }
    events.sort_by_key(|&(_, at, _)| at);
    Oracle { tangle, ledger, txs, events, events_total: cfg.credit_events as u64 }
}

/// Far ends of freshly dialed links, grouped by accepting node.
type AcceptQueues = Arc<Mutex<Vec<Vec<Box<dyn Transport>>>>>;

/// Which side of the half/half cut a node sits on.
fn side(i: usize, n: usize) -> bool {
    i < n / 2
}

struct Fleet {
    nodes: Vec<GossipNode>,
    ledgers: Vec<CreditLedger>,
    counters: Vec<ByteCounter>,
    clock: VirtualClock,
    /// Far ends of freshly dialed links, waiting to be accepted.
    accept: AcceptQueues,
    /// Kill switches of live links, tagged with their endpoints.
    links: Arc<Mutex<Vec<(usize, usize, MemLink)>>>,
    cut: Arc<AtomicBool>,
}

/// Random bounded-degree connected topology: a ring plus seeded chords.
/// Shared with [`crate::roles`], which wires a mixed-role fleet over the
/// same link shapes.
pub(crate) fn seeded_edges(n: usize, degree: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7070_1234);
    let mut set = BTreeSet::new();
    for i in 0..n {
        set.insert((i.min((i + 1) % n), i.max((i + 1) % n)));
    }
    let mut deg = vec![2usize; n];
    for i in 0..n {
        let mut attempts = 0;
        while deg[i] < degree && attempts < 64 {
            attempts += 1;
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            if set.insert((i.min(j), i.max(j))) {
                deg[i] += 1;
                deg[j] += 1;
            }
        }
    }
    set.into_iter().collect()
}

fn build_fleet(cfg: &MeshConfig, genesis_issuer: NodeId) -> Fleet {
    let n = cfg.nodes;
    let clock = VirtualClock::new();
    let counters: Vec<ByteCounter> = (0..n).map(|_| ByteCounter::new()).collect();
    let accept: AcceptQueues = Arc::new(Mutex::new((0..n).map(|_| Vec::new()).collect()));
    let links = Arc::new(Mutex::new(Vec::new()));
    let cut = Arc::new(AtomicBool::new(false));

    let mut nodes: Vec<GossipNode> = (0..n)
        .map(|i| {
            let node_cfg = GossipConfig {
                node_id: i as u64 + 1,
                listen_addr: Some(format!("mesh:{}", i + 1)),
                relay_mode: cfg.relay_mode,
                fanout: cfg.fanout,
                digest_ms: cfg.digest_ms,
                anti_entropy_ms: cfg.anti_entropy_ms,
                peer_exchange_ms: cfg.peer_exchange_ms,
                max_pending: cfg.txs + 64,
                // Partitions outlive the default failure budget; keep
                // dialing so the heal reconnects the fleet.
                max_connect_failures: 100_000,
                backoff_max_ms: 4_000,
                request_retry_ms: 200,
                seed: cfg.seed,
                ..GossipConfig::default()
            };
            let node = GossipNode::with_empty_tangle(node_cfg);
            node.tangle().lock().unwrap().attach_genesis(genesis_issuer, 0);
            node
        })
        .collect();

    for (i, j) in seeded_edges(cfg.nodes, cfg.degree, cfg.seed) {
        let accept = Arc::clone(&accept);
        let links = Arc::clone(&links);
        let cut = Arc::clone(&cut);
        let clock_i = clock.clone();
        let counter_i = counters[i].clone();
        let counter_j = counters[j].clone();
        let model = UniformLatency::new(cfg.jitter_ms.0, cfg.jitter_ms.1);
        let (seed_i, seed_j) = (
            cfg.seed ^ (i as u64) << 20 ^ (j as u64) << 4 ^ 1,
            cfg.seed ^ (i as u64) << 20 ^ (j as u64) << 4 ^ 2,
        );
        let n_nodes = n;
        // The lower endpoint owns the dial; the upper end shows up in the
        // accept queue. Identified hellos keep accidental duplicates out.
        nodes[i].connect(Box::new(FnConnector(move || {
            if cut.load(Ordering::SeqCst) && side(i, n_nodes) != side(j, n_nodes) {
                return Err(TransportError::Closed);
            }
            let (a, b, link) = MemTransport::pair();
            links.lock().unwrap().push((i, j, link));
            let far: Box<dyn Transport> = Box::new(CountingTransport::new(
                Box::new(JitterTransport::new(
                    Box::new(b),
                    Box::new(model),
                    seed_j,
                    clock_i.clone(),
                )),
                counter_j.clone(),
            ));
            accept.lock().unwrap()[j].push(far);
            Ok(Box::new(CountingTransport::new(
                Box::new(JitterTransport::new(
                    Box::new(a),
                    Box::new(model),
                    seed_i,
                    clock_i.clone(),
                )),
                counter_i.clone(),
            )) as Box<dyn Transport>)
        })));
    }

    let ledgers = (0..n)
        .map(|_| CreditLedger::new(CreditParams::default()))
        .collect();
    Fleet { nodes, ledgers, counters, clock, accept, links, cut }
}

/// Runs one seeded fleet to convergence (or `max_ms`) and reports.
pub fn run_mesh(cfg: &MeshConfig) -> MeshOutcome {
    assert!(cfg.nodes >= 2, "a mesh needs at least two nodes");
    let oracle = build_oracle(cfg);
    let mut fleet = build_fleet(cfg, NodeId([0xEE; 32]));

    let mut injected = vec![false; oracle.txs.len()];
    let mut next_tx = 0usize;
    let mut next_ev = 0usize;
    let mut cut_applied = false;
    let mut healed = cfg.partition.is_none();
    let mut now = 0u64;
    let mut rounds = 0u64;
    let mut converged_ms = 0u64;
    let mut converged = false;

    while now <= cfg.max_ms {
        fleet.clock.set(now);
        if let Some(p) = cfg.partition {
            if !cut_applied && now >= p.start_ms {
                cut_applied = true;
                fleet.cut.store(true, Ordering::SeqCst);
                let links = fleet.links.lock().unwrap();
                for (i, j, link) in links.iter() {
                    if side(*i, cfg.nodes) != side(*j, cfg.nodes) {
                        link.kill();
                    }
                }
            }
            if cut_applied && !healed && now >= p.heal_ms {
                healed = true;
                fleet.cut.store(false, Ordering::SeqCst);
            }
        }
        // A gateway issues a transaction referencing tips it has synced;
        // the oracle pre-decides the parents, so each injection waits
        // until its origin actually holds them (issuance follows sync).
        // Deterministic: scan order and tangle state are both seeded.
        #[allow(clippy::needless_range_loop)] // `k` also indexes `injected`
        for k in next_tx..oracle.txs.len() {
            let (tx, attach_ms, origin) = &oracle.txs[k];
            if *attach_ms > now {
                break;
            }
            if injected[k] {
                continue;
            }
            let parents_known = {
                let t = fleet.nodes[*origin].tangle().lock().unwrap();
                tx.parents().into_iter().all(|p| t.contains(&p))
            };
            if parents_known {
                fleet.nodes[*origin].submit(tx.clone(), *attach_ms, now);
                injected[k] = true;
            }
        }
        while next_tx < oracle.txs.len() && injected[next_tx] {
            next_tx += 1;
        }
        while next_ev < oracle.events.len() && oracle.events[next_ev].1 <= now {
            let (ev, _, origin) = &oracle.events[next_ev];
            fleet.ledgers[*origin].apply(ev);
            fleet.nodes[*origin].broadcast_credit_events(&[*ev], now);
            next_ev += 1;
        }
        {
            let mut accept = fleet.accept.lock().unwrap();
            for (j, inbox) in accept.iter_mut().enumerate() {
                for t in inbox.drain(..) {
                    fleet.nodes[j].add_transport(t, now);
                }
            }
        }
        for node in fleet.nodes.iter_mut() {
            node.poll(now);
        }
        for (node, ledger) in fleet.nodes.iter_mut().zip(fleet.ledgers.iter_mut()) {
            for ev in node.take_credit_events() {
                ledger.apply(&ev);
            }
        }
        rounds += 1;

        if std::env::var("BIOT_MESH_DEBUG").is_ok() && now.is_multiple_of(1_000) {
            let want = oracle.tangle.len();
            let lens: Vec<usize> =
                fleet.nodes.iter().map(|n| n.tangle().lock().unwrap().len()).collect();
            let behind = lens.iter().filter(|&&l| l < want).count();
            let pending: usize = fleet.nodes.iter().map(|n| n.pending_len()).sum();
            let ev_behind = fleet
                .ledgers
                .iter()
                .filter(|l| l.events_applied() < oracle.events_total)
                .count();
            let (mut dg, mut dg_ids, mut reqs, mut served, mut misses) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for n in &fleet.nodes {
                let s = n.stats();
                dg += s.digests_sent;
                dg_ids += s.digest_ids_sent;
                reqs += s.requests_sent;
                served += s.tx_sent;
                misses += s.gettx_misses;
            }
            let (mut disc, mut inval, mut hs) = (0u64, 0u64, 0u64);
            for n in &fleet.nodes {
                let s = n.stats();
                disc += s.disconnects;
                inval += s.invalid_frames;
                hs += s.handshakes;
            }
            eprint!("[disc={disc} invalid={inval} handshakes={hs}] ");
            eprintln!(
                "[mesh {}ms] behind={behind}/{} min_len={} want={want} pending={pending} ev_behind={ev_behind} digests={dg} ids={dg_ids} reqs={reqs} served={served} misses={misses}",
                now,
                fleet.nodes.len(),
                lens.iter().min().unwrap(),
            );
        }
        let workload_done = next_tx == oracle.txs.len() && next_ev == oracle.events.len();
        if workload_done && healed && fleet_matches_oracle(&fleet, &oracle, cfg.max_ms) {
            converged = true;
            converged_ms = now;
            break;
        }
        now += cfg.step_ms.max(1);
    }

    let mut out = MeshOutcome {
        nodes: cfg.nodes,
        txs: cfg.txs,
        converged,
        converged_ms,
        rounds,
        ..MeshOutcome::default()
    };
    for c in &fleet.counters {
        out.total_bytes_sent += c.sent();
        out.total_frames_sent += c.frames_sent();
    }
    out.bytes_per_node = out.total_bytes_sent / cfg.nodes as u64;
    out.bytes_per_node_per_tx_raw =
        out.total_bytes_sent as f64 / cfg.nodes as f64 / cfg.txs.max(1) as f64;
    let delivered_per_node =
        cfg.txs.max(1) as f64 * (cfg.nodes.max(2) - 1) as f64 / cfg.nodes.max(2) as f64;
    out.bytes_per_node_per_tx = out.total_bytes_sent as f64 / cfg.nodes as f64 / delivered_per_node;
    for node in &fleet.nodes {
        let s = node.stats();
        out.redundant_deliveries += s.duplicates;
        out.dup_suppressed += s.dup_suppressed;
        out.digests_sent += s.digests_sent;
        out.digest_ids_sent += s.digest_ids_sent;
        out.peer_exchanges_sent += s.peer_exchanges_sent;
        out.credit_events_deduped += s.credit_events_deduped;
        out.handshakes += s.handshakes;
        out.tx_payloads_sent += s.tx_sent;
        out.requests_sent += s.requests_sent;
        out.credit_events_sent += s.credit_events_sent;
        out.credit_keys_sent += s.credit_keys_sent;
    }
    out.redundancy_ratio =
        out.redundant_deliveries as f64 / (cfg.nodes as f64 * cfg.txs.max(1) as f64);
    out
}

/// Bit-for-bit convergence: every node's tips, every transaction's
/// cumulative weight, and every known node's credit breakdown equal the
/// oracle's.
fn fleet_matches_oracle(fleet: &Fleet, oracle: &Oracle, probe_ms: u64) -> bool {
    let want_len = oracle.tangle.len();
    let want_tips = oracle.tangle.tips();
    let oracle_ids: Vec<TxId> = oracle.tangle.iter().map(|tx| tx.id()).collect();
    let probe = SimTime::from_millis(probe_ms);
    let subjects: Vec<NodeId> = oracle.ledger.known_nodes().copied().collect();
    for (node, ledger) in fleet.nodes.iter().zip(fleet.ledgers.iter()) {
        if node.pending_len() != 0 || ledger.events_applied() != oracle.events_total {
            return false;
        }
        let t = node.tangle().lock().unwrap();
        if t.len() != want_len || t.tips() != want_tips {
            return false;
        }
        if !oracle_ids
            .iter()
            .all(|id| t.cumulative_weight(id) == oracle.tangle.cumulative_weight(id))
        {
            return false;
        }
        if !subjects.iter().all(|&nid| {
            let a = oracle.ledger.credit_of(nid, probe);
            let b = ledger.credit_of(nid, probe);
            a.positive == b.positive && a.negative == b.negative && a.combined == b.combined
        }) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(relay: RelayMode) -> MeshConfig {
        MeshConfig {
            nodes: 8,
            degree: 4,
            txs: 60,
            credit_events: 16,
            relay_mode: relay,
            ..MeshConfig::default()
        }
    }

    #[test]
    fn small_digest_mesh_converges_bit_for_bit() {
        let out = run_mesh(&small(RelayMode::Digest));
        assert!(out.converged, "digest mesh must converge: {out:?}");
        assert!(out.digests_sent > 0);
    }

    #[test]
    fn small_flood_mesh_converges_and_costs_more_wire() {
        let flood = run_mesh(&small(RelayMode::Flood));
        assert!(flood.converged, "flood mesh must converge: {flood:?}");
        let digest = run_mesh(&small(RelayMode::Digest));
        assert!(
            digest.total_bytes_sent < flood.total_bytes_sent,
            "digest relay must beat flood: {} vs {}",
            digest.total_bytes_sent,
            flood.total_bytes_sent
        );
        assert!(digest.redundancy_ratio < flood.redundancy_ratio);
    }

    #[test]
    fn seeded_runs_are_identical() {
        let a = run_mesh(&small(RelayMode::Digest));
        let b = run_mesh(&small(RelayMode::Digest));
        assert_eq!(a, b, "same seed, same fleet, same report");
    }

    #[test]
    fn partitioned_mesh_heals_and_converges() {
        let cfg = MeshConfig {
            partition: Some(Partition { start_ms: 300, heal_ms: 2_000 }),
            ..small(RelayMode::Digest)
        };
        let out = run_mesh(&cfg);
        assert!(out.converged, "post-heal convergence failed: {out:?}");
        // Healing redials the severed links, so the fleet completes more
        // handshakes than it has edges.
        let unpartitioned = run_mesh(&small(RelayMode::Digest));
        assert!(out.handshakes > unpartitioned.handshakes);
    }
}
