//! Attack scenarios for the security analysis (paper §VI-C, experiment A3
//! in DESIGN.md): Sybil admission, DDoS flooding, lazy tips, and
//! double-spending, each measured rather than merely asserted.

use biot_core::identity::Account;
use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager, SubmitError};
use biot_core::InverseProportionalPolicy;
use biot_net::time::SimTime;
use biot_tangle::graph::TangleError;
use biot_tangle::tips::{FixedPairSelector, TipSelector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Outcome of the Sybil / DDoS admission experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionReport {
    /// Submissions from authorized devices that were accepted.
    pub legit_accepted: u32,
    /// Submissions from authorized devices that were rejected.
    pub legit_rejected: u32,
    /// Submissions from Sybil identities that were accepted (should be 0).
    pub sybil_accepted: u32,
    /// Submissions from Sybil identities that were blocked.
    pub sybil_blocked: u32,
}

/// Floods a gateway with `n_sybil` unauthorized identities (each sending
/// one valid-PoW transaction) alongside one authorized device, and counts
/// who got through.
///
/// This is the §VI-C claim "full nodes can decline to provide services for
/// unauthorized IoT devices", measured.
pub fn sybil_admission_experiment(n_sybil: usize, seed: u64) -> AdmissionReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(InverseProportionalPolicy::default()),
        GatewayConfig::default(),
    );
    let genesis = gateway.init_genesis(SimTime::ZERO);
    let legit = LightNode::new(Account::generate(&mut rng));
    let id = manager.register_device(legit.public_key().clone());
    manager.authorize(id);
    gateway.register_pubkey(legit.public_key().clone());
    let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
    gateway.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

    let mut report = AdmissionReport::default();
    let now = SimTime::from_secs(1);

    // The legitimate device posts one reading.
    let tips = gateway.random_tips(&mut rng).unwrap();
    let d = gateway.difficulty_for(legit.id(), now);
    let p = legit.prepare_reading(b"legit", tips, now, d, &mut rng);
    match gateway.submit(p.tx, now) {
        Ok(_) => report.legit_accepted += 1,
        Err(_) => report.legit_rejected += 1,
    }

    // Sybils mint fresh identities and flood. They even do honest PoW —
    // admission control blocks them regardless.
    for _ in 0..n_sybil {
        let sybil = LightNode::new(Account::generate_with_bits(512, &mut rng));
        let tips = gateway.random_tips(&mut rng).unwrap();
        let d = gateway.difficulty_for(sybil.id(), now);
        let p = sybil.prepare_reading(b"sybil spam", tips, now, d, &mut rng);
        match gateway.submit(p.tx, now) {
            Ok(_) => report.sybil_accepted += 1,
            Err(SubmitError::Unauthorized(_)) => report.sybil_blocked += 1,
            Err(_) => report.sybil_blocked += 1,
        }
    }
    report
}

/// Outcome of the lazy-tips experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LazyTipsReport {
    /// Transactions the lazy node got accepted.
    pub lazy_accepted: u32,
    /// Misbehaviours recorded against the lazy node.
    pub lazy_punished: u32,
    /// The lazy node's difficulty at the end of the run.
    pub lazy_final_difficulty: u32,
    /// The honest node's difficulty at the end of the run.
    pub honest_final_difficulty: u32,
    /// The lazy node's final credit.
    pub lazy_final_credit: f64,
}

/// Runs an honest node and a lazy node (always approving the same stale
/// pair) side by side and reports the divergence in credit and
/// difficulty.
pub fn lazy_tips_experiment(rounds: usize, seed: u64) -> LazyTipsReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(InverseProportionalPolicy::default()),
        GatewayConfig::default(),
    );
    let genesis = gateway.init_genesis(SimTime::ZERO);
    let honest = LightNode::new(Account::generate(&mut rng));
    let lazy = LightNode::new(Account::generate(&mut rng));
    for node in [&honest, &lazy] {
        let id = manager.register_device(node.public_key().clone());
        manager.authorize(id);
        gateway.register_pubkey(node.public_key().clone());
    }
    let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
    gateway.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

    // Seed two early transactions that the lazy node will keep approving.
    let mut now = SimTime::from_secs(1);
    let tips = gateway.random_tips(&mut rng).unwrap();
    let d = gateway.difficulty_for(honest.id(), now);
    let a = gateway
        .submit(honest.prepare_reading(b"seed a", tips, now, d, &mut rng).tx, now)
        .unwrap();
    now += 1_000;
    let tips = gateway.random_tips(&mut rng).unwrap();
    let d = gateway.difficulty_for(honest.id(), now);
    let b = gateway
        .submit(honest.prepare_reading(b"seed b", tips, now, d, &mut rng).tx, now)
        .unwrap();
    let stale_selector = FixedPairSelector { pair: (a, b) };

    let mut report = LazyTipsReport::default();
    for i in 0..rounds {
        now += 5_000;
        // Honest node: fresh tips.
        let tips = gateway.random_tips(&mut rng).unwrap();
        let d = gateway.difficulty_for(honest.id(), now);
        let p = honest.prepare_reading(format!("h{i}").as_bytes(), tips, now, d, &mut rng);
        let _ = gateway.submit(p.tx, now);
        // Lazy node: the same stale pair, every time.
        let stale = stale_selector
            .select_tips(gateway.tangle(), &mut rng)
            .expect("stale pair still attached");
        let d = gateway.difficulty_for(lazy.id(), now);
        let p = lazy.prepare_reading(format!("l{i}").as_bytes(), stale, now, d, &mut rng);
        if gateway.submit(p.tx, now).is_ok() {
            report.lazy_accepted += 1;
        }
    }
    let end = now + 1_000;
    report.lazy_punished = gateway.credits().misbehavior_count(lazy.id()) as u32;
    report.lazy_final_difficulty = gateway.difficulty_for(lazy.id(), end).bits();
    report.honest_final_difficulty = gateway.difficulty_for(honest.id(), end).bits();
    report.lazy_final_credit = gateway.credit_of(lazy.id(), end).combined;
    report
}

/// Outcome of the double-spend experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DoubleSpendReport {
    /// First spends that were accepted.
    pub first_spends_accepted: u32,
    /// Conflicting re-spends that were cancelled.
    pub double_spends_cancelled: u32,
    /// Conflicting re-spends that slipped through (must be 0).
    pub double_spends_accepted: u32,
    /// Misbehaviours recorded against the attacker.
    pub punishments: u32,
}

/// An attacker spends `n_tokens` tokens once (legitimately) and then tries
/// to re-spend each of them.
pub fn double_spend_experiment(n_tokens: usize, seed: u64) -> DoubleSpendReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(InverseProportionalPolicy::default()),
        GatewayConfig::default(),
    );
    let genesis = gateway.init_genesis(SimTime::ZERO);
    let attacker = LightNode::new(Account::generate(&mut rng));
    let id = manager.register_device(attacker.public_key().clone());
    manager.authorize(id);
    gateway.register_pubkey(attacker.public_key().clone());
    let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
    gateway.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

    let mut report = DoubleSpendReport::default();
    let mut now = SimTime::from_secs(1);
    let mut tokens = Vec::new();
    for i in 0..n_tokens {
        let mut token = [0u8; 32];
        token[0] = i as u8;
        token[1] = (i >> 8) as u8;
        let tips = gateway.random_tips(&mut rng).unwrap();
        let d = gateway.difficulty_for(attacker.id(), now);
        let p = attacker.prepare_spend(token, manager.id(), tips, now, d);
        if gateway.submit(p.tx, now).is_ok() {
            report.first_spends_accepted += 1;
            tokens.push(token);
        }
        now += 500;
    }
    for token in tokens {
        let tips = gateway.random_tips(&mut rng).unwrap();
        let d = gateway.difficulty_for(attacker.id(), now);
        let p = attacker.prepare_spend(token, attacker.id(), tips, now, d);
        match gateway.submit(p.tx, now) {
            Ok(_) => report.double_spends_accepted += 1,
            Err(SubmitError::Tangle(TangleError::DoubleSpend { .. })) => {
                report.double_spends_cancelled += 1
            }
            Err(SubmitError::InsufficientPow { .. }) => {
                // Punishment already so harsh the attacker cannot even mine;
                // count it as cancelled (the spend did not land).
                report.double_spends_cancelled += 1;
            }
            Err(_) => report.double_spends_cancelled += 1,
        }
        now += 500;
    }
    report.punishments = gateway.credits().misbehavior_count(attacker.id()) as u32;
    report
}

/// Outcome of the single-point-of-failure experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// Transactions accepted before the primary gateway failed.
    pub before_failure: u32,
    /// Transactions accepted by the surviving replica afterwards.
    pub after_failure: u32,
    /// Ledger length on the surviving replica at the end.
    pub survivor_ledger_len: usize,
}

/// Runs two replicated gateways, kills the primary mid-run, and shows the
/// service stays available through the replica (§VI-C "single point of
/// failure").
pub fn failover_experiment(seed: u64) -> FailoverReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mk_gateway = |pk: &biot_crypto::rsa::RsaPublicKey| {
        Gateway::new(
            pk.clone(),
            Box::new(InverseProportionalPolicy::default()),
            GatewayConfig::default(),
        )
    };
    let mut primary = mk_gateway(manager.public_key());
    let mut replica = mk_gateway(manager.public_key());
    // Both replicas bootstrap the same genesis state.
    let genesis = primary.init_genesis(SimTime::ZERO);
    replica.init_genesis(SimTime::ZERO);
    let device = LightNode::new(Account::generate(&mut rng));
    let id = manager.register_device(device.public_key().clone());
    manager.authorize(id);
    for g in [&mut primary, &mut replica] {
        g.register_pubkey(device.public_key().clone());
    }
    let d = primary.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
    primary
        .apply_auth_list(list.tx.clone(), SimTime::ZERO)
        .unwrap();
    replica.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

    let mut report = FailoverReport::default();
    let mut now = SimTime::from_secs(1);
    // Phase 1: device talks to the primary, which gossips to the replica.
    for i in 0..5 {
        let tips = primary.random_tips(&mut rng).unwrap();
        let d = primary.difficulty_for(device.id(), now);
        let p = device.prepare_reading(format!("p{i}").as_bytes(), tips, now, d, &mut rng);
        if let Ok(_id) = primary.submit(p.tx.clone(), now) {
            report.before_failure += 1;
            replica.receive_broadcast(p.tx, now).unwrap();
        }
        now += 1_000;
    }
    // Primary dies. Phase 2: device fails over to the replica.
    drop(primary);
    for i in 0..5 {
        let tips = replica.random_tips(&mut rng).unwrap();
        let d = replica.difficulty_for(device.id(), now);
        let p = device.prepare_reading(format!("r{i}").as_bytes(), tips, now, d, &mut rng);
        if replica.submit(p.tx, now).is_ok() {
            report.after_failure += 1;
        }
        now += 1_000;
    }
    report.survivor_ledger_len = replica.tangle().len();
    report
}

/// Outcome of the parasite-chain experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ParasiteChainReport {
    /// Honest transactions attached to the main tangle.
    pub honest_txs: u32,
    /// Parasite transactions the attacker attached.
    pub parasite_txs: u32,
    /// Tip selections (out of `samples`) that landed on a parasite tip
    /// under **uniform random** selection.
    pub uniform_hits: u32,
    /// Tip selections that landed on a parasite tip under the **weighted
    /// MCMC walk**.
    pub mcmc_hits: u32,
    /// Total selections sampled per strategy.
    pub samples: u32,
}

/// Builds a tangle with a heavy honest subtangle and a light "parasite"
/// side-chain hanging off an old transaction, then measures how often each
/// tip-selection strategy would endorse the parasite.
///
/// This is the classic tangle attack Popov's weighted walk defends
/// against: the paper inherits the defense by adopting MCMC selection
/// (§II-B); uniform random selection is the vulnerable baseline.
pub fn parasite_chain_experiment(
    honest: usize,
    parasite: usize,
    samples: u32,
    seed: u64,
) -> ParasiteChainReport {
    use biot_tangle::graph::Tangle;
    use biot_tangle::tips::{UniformRandomSelector, WeightedMcmcSelector};
    use biot_tangle::tx::{Payload, TransactionBuilder};

    let mut rng = StdRng::seed_from_u64(seed);
    let mut tangle = Tangle::new();
    let genesis = tangle.attach_genesis(biot_tangle::tx::NodeId([0; 32]), 0);

    // Honest growth: random tips, many issuers.
    let honest_sel = UniformRandomSelector;
    let mut honest_count = 0u32;
    let mut anchor = genesis; // an early honest tx the parasite forks from
    for i in 0..honest {
        let (a, b) = honest_sel.select_tips(&tangle, &mut rng).unwrap();
        let tx = TransactionBuilder::new(biot_tangle::tx::NodeId([(i % 50) as u8 + 1; 32]))
            .parents(a, b)
            .payload(Payload::Data(vec![i as u8]))
            .timestamp_ms(i as u64 + 1)
            .build();
        let id = tangle.attach(tx, i as u64 + 1).unwrap();
        if i == 2 {
            anchor = id;
        }
        honest_count += 1;
    }

    // Parasite: a private chain rooted at the old anchor, never approving
    // recent honest transactions.
    let attacker = biot_tangle::tx::NodeId([0xEE; 32]);
    let mut parasite_ids = Vec::new();
    let mut prev = anchor;
    for i in 0..parasite {
        let tx = TransactionBuilder::new(attacker)
            .parents(prev, anchor)
            .payload(Payload::Data(vec![0xEE, i as u8]))
            .timestamp_ms((honest + i) as u64 + 1)
            .build();
        prev = tangle.attach(tx, (honest + i) as u64 + 1).unwrap();
        parasite_ids.push(prev);
    }
    let parasite_set: std::collections::HashSet<_> = parasite_ids.into_iter().collect();

    let mut report = ParasiteChainReport {
        honest_txs: honest_count,
        parasite_txs: parasite as u32,
        samples,
        ..ParasiteChainReport::default()
    };
    let mcmc = WeightedMcmcSelector::new(0.8);
    for _ in 0..samples {
        if let Some((a, b)) = honest_sel.select_tips(&tangle, &mut rng) {
            if parasite_set.contains(&a) || parasite_set.contains(&b) {
                report.uniform_hits += 1;
            }
        }
        if let Some((a, b)) = mcmc.select_tips(&tangle, &mut rng) {
            if parasite_set.contains(&a) || parasite_set.contains(&b) {
                report.mcmc_hits += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sybils_are_fully_blocked() {
        let r = sybil_admission_experiment(10, 1);
        assert_eq!(r.sybil_accepted, 0);
        assert_eq!(r.sybil_blocked, 10);
        assert_eq!(r.legit_accepted, 1);
    }

    #[test]
    fn lazy_node_diverges_from_honest() {
        let r = lazy_tips_experiment(8, 2);
        assert!(r.lazy_punished > 0, "lazy behaviour must be recorded");
        assert!(
            r.lazy_final_difficulty > r.honest_final_difficulty,
            "lazy D{} vs honest D{}",
            r.lazy_final_difficulty,
            r.honest_final_difficulty
        );
        assert!(r.lazy_final_credit < 0.0);
    }

    #[test]
    fn double_spends_never_land() {
        let r = double_spend_experiment(5, 3);
        assert_eq!(r.first_spends_accepted, 5);
        assert_eq!(r.double_spends_accepted, 0);
        assert_eq!(r.double_spends_cancelled, 5);
        assert!(r.punishments >= 1);
    }

    #[test]
    fn mcmc_resists_parasite_chain_better_than_uniform() {
        let r = parasite_chain_experiment(60, 12, 200, 5);
        assert_eq!(r.honest_txs, 60);
        assert_eq!(r.parasite_txs, 12);
        // The heavy honest subtangle should dominate the weighted walk;
        // uniform selection endorses the parasite roughly in proportion to
        // its share of the tip pool.
        assert!(
            r.mcmc_hits * 3 < r.uniform_hits.max(1) * 2,
            "mcmc {} should be well below uniform {}",
            r.mcmc_hits,
            r.uniform_hits
        );
        assert!(r.uniform_hits > 0, "the parasite tip is selectable at all");
    }

    #[test]
    fn service_survives_gateway_failure() {
        let r = failover_experiment(4);
        assert_eq!(r.before_failure, 5);
        assert_eq!(r.after_failure, 5);
        // Replica holds genesis + auth list + all 10 readings + gossip.
        assert!(r.survivor_ledger_len >= 12);
    }
}
