//! Fleet experiment: many honest sensors and a few attackers sharing one
//! gateway — does punishing the attackers slow anyone else down?
//!
//! The paper evaluates a single node (Figs 8–9); this extends the same
//! machinery to a fleet and measures *isolation*: credit is per-node, so
//! an attacker's difficulty spike must not leak onto honest peers.

use crate::pi::PiCalibration;
use biot_core::difficulty::InverseProportionalPolicy;
use biot_core::identity::Account;
use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager};
use biot_tangle::tips::SelectorConfig;
use biot_net::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of honest sensors.
    pub n_honest: usize,
    /// Number of attackers (each attempts a double-spend periodically).
    pub n_malicious: usize,
    /// Seconds between an attacker's double-spend attempts.
    pub attack_every_s: u64,
    /// Virtual run length.
    pub duration: SimTime,
    /// Idle time between transactions per node, ms.
    pub think_time_ms: u64,
    /// Pi timing calibration.
    pub calibration: PiCalibration,
    /// Tip-selection strategy the shared gateway serves (default
    /// uniform, keeping seeded traces stable).
    pub selector: SelectorConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            n_honest: 4,
            n_malicious: 1,
            attack_every_s: 25,
            duration: SimTime::from_secs(90),
            think_time_ms: 2_000,
            calibration: PiCalibration::fig9(),
            selector: SelectorConfig::default(),
            seed: 7,
        }
    }
}

/// Per-class aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Transactions submitted (accepted or not).
    pub attempts: u64,
    /// Transactions accepted.
    pub accepted: u64,
    /// Mean PoW seconds per attempt.
    pub avg_pow_secs: f64,
    /// Mean final credit across the class.
    pub avg_final_credit: f64,
}

/// Result of a fleet run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Honest-class aggregates.
    pub honest: ClassStats,
    /// Malicious-class aggregates.
    pub malicious: ClassStats,
}

/// Runs the fleet scenario.
pub fn run_fleet(config: &FleetConfig) -> FleetResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(InverseProportionalPolicy::default()),
        GatewayConfig {
            tip_selector: config.selector,
            ..GatewayConfig::default()
        },
    );
    let genesis = gateway.init_genesis(SimTime::ZERO);
    let n_total = config.n_honest + config.n_malicious;
    let nodes: Vec<LightNode> = (0..n_total)
        .map(|_| LightNode::new(Account::generate(&mut rng)))
        .collect();
    for n in &nodes {
        let id = manager.register_device(n.public_key().clone());
        manager.authorize(id);
        gateway.register_pubkey(n.public_key().clone());
    }
    let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
    gateway.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

    // Seed one spendable token per attacker.
    let mut tokens = Vec::new();
    for m in 0..config.n_malicious {
        let idx = config.n_honest + m;
        let mut token = [0xD0u8; 32];
        token[0] = m as u8;
        let tips = gateway.random_tips(&mut rng).unwrap();
        let d = gateway.difficulty_for(nodes[idx].id(), SimTime::ZERO);
        let p = nodes[idx].prepare_spend(token, manager.id(), tips, SimTime::ZERO, d);
        gateway.submit(p.tx, SimTime::ZERO).unwrap();
        tokens.push(token);
    }

    // Per-node schedule: (next action time, node index).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..n_total)
        .map(|i| Reverse(((i as u64 + 1) * 137, i)))
        .collect();
    let mut next_attack_at: Vec<u64> = (0..config.n_malicious)
        .map(|m| (config.attack_every_s + m as u64 * 7) * 1000)
        .collect();
    let duration_ms = config.duration.as_millis();
    let mut pow_total = vec![0.0f64; n_total];
    let mut attempts = vec![0u64; n_total];
    let mut accepted = vec![0u64; n_total];
    let mut counter = 0u64;

    while let Some(Reverse((t_ms, idx))) = heap.pop() {
        if t_ms > duration_ms {
            continue;
        }
        let now = SimTime::from_millis(t_ms);
        let node_id = nodes[idx].id();
        // Mine at the node's current difficulty with a virtual duration.
        let d = gateway.difficulty_for(node_id, now);
        let pow_secs = config.calibration.sample_pow_secs(d, &mut rng);
        let finish = now + (pow_secs * 1000.0).round() as u64;
        if finish.as_millis() > duration_ms {
            continue;
        }
        pow_total[idx] += pow_secs;
        attempts[idx] += 1;
        counter += 1;

        // Attackers re-spend their token when the clock says so.
        let malicious_idx = idx.checked_sub(config.n_honest);
        let is_attack = malicious_idx
            .map(|m| finish.as_millis() >= next_attack_at[m])
            .unwrap_or(false);
        let tips = match gateway.random_tips(&mut rng) {
            Some(t) => t,
            None => continue,
        };
        let d_final = gateway.difficulty_for(node_id, finish);
        let prepared = if is_attack {
            let m = malicious_idx.unwrap();
            next_attack_at[m] = finish.as_millis() + config.attack_every_s * 1000;
            nodes[idx].prepare_spend(tokens[m], node_id, tips, finish, d_final)
        } else {
            nodes[idx].prepare_reading(
                format!("n{idx}-{counter}").as_bytes(),
                tips,
                finish,
                d_final,
                &mut rng,
            )
        };
        // The virtual mining time was sampled at the *start* difficulty; if
        // punishment landed mid-flight the submit may fail PoW — retry next
        // round, which is exactly the stall the mechanism intends.
        if gateway.submit(prepared.tx, finish).is_ok() {
            accepted[idx] += 1;
        }
        let jitter = rng.gen_range(0..500u64);
        heap.push(Reverse((
            finish.as_millis() + config.think_time_ms + jitter,
            idx,
        )));
    }

    let end = config.duration;
    let class = |range: std::ops::Range<usize>| -> ClassStats {
        let n = range.len().max(1) as f64;
        let attempts_sum: u64 = range.clone().map(|i| attempts[i]).sum();
        ClassStats {
            attempts: attempts_sum,
            accepted: range.clone().map(|i| accepted[i]).sum(),
            avg_pow_secs: if attempts_sum > 0 {
                range.clone().map(|i| pow_total[i]).sum::<f64>() / attempts_sum as f64
            } else {
                0.0
            },
            avg_final_credit: range
                .map(|i| gateway.credit_of(nodes[i].id(), end).combined)
                .sum::<f64>()
                / n,
        }
    };
    FleetResult {
        honest: class(0..config.n_honest),
        malicious: class(config.n_honest..n_total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attackers_suffer_honest_nodes_do_not() {
        let r = run_fleet(&FleetConfig::default());
        assert!(r.honest.accepted > 50, "honest accepted {}", r.honest.accepted);
        // Isolation: honest PoW stays cheap despite a punished peer.
        assert!(
            r.honest.avg_pow_secs < 0.3,
            "honest avg {}",
            r.honest.avg_pow_secs
        );
        assert!(
            r.malicious.avg_pow_secs > r.honest.avg_pow_secs * 3.0,
            "malicious {} vs honest {}",
            r.malicious.avg_pow_secs,
            r.honest.avg_pow_secs
        );
        assert!(r.honest.avg_final_credit > 0.0);
        assert!(r.malicious.avg_final_credit < 0.0);
    }

    #[test]
    fn all_honest_fleet_behaves_like_fig9_normal() {
        let r = run_fleet(&FleetConfig {
            n_malicious: 0,
            ..FleetConfig::default()
        });
        assert_eq!(r.malicious.attempts, 0);
        assert!(r.honest.avg_pow_secs < 0.3);
        assert_eq!(r.honest.attempts, r.honest.accepted);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_fleet(&FleetConfig::default());
        let b = run_fleet(&FleetConfig::default());
        assert_eq!(a, b);
    }
}
