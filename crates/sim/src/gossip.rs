//! Gossip mirroring for simulation runs.
//!
//! When a [`crate::runner::NodeRunConfig`] enables gossip, the run's
//! gateway records every accepted transaction in its broadcast outbox
//! ([`biot_core::node::Gateway::take_broadcasts`]); a [`GossipMirror`]
//! drains that outbox into a primary [`GossipNode`] and syncs it to a
//! replica over a jittered in-memory link on the run's virtual clock.
//! The run then reports whether the replica converged to the identical
//! DAG — tips and cumulative weights — in its [`GossipSummary`].
//!
//! Everything is seeded and driven by virtual time, so gossip-enabled
//! runs stay exactly as deterministic as plain ones.

use biot_gossip::node::{GossipConfig, GossipNode};
use biot_gossip::transport::{JitterTransport, MemTransport, VirtualClock};
use biot_net::latency::UniformLatency;
use biot_tangle::graph::Tangle;
use biot_tangle::tx::Transaction;
use serde::{Deserialize, Serialize};

/// Gossip settings for a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipSimConfig {
    /// Uniform one-way link latency range `(min_ms, max_ms)`.
    pub jitter_ms: (u64, u64),
    /// Seed for the link jitter (independent of the run seed so the two
    /// can be varied separately).
    pub seed: u64,
    /// Anti-entropy interval for both gossip nodes, ms.
    pub anti_entropy_ms: u64,
}

impl Default for GossipSimConfig {
    fn default() -> Self {
        Self {
            jitter_ms: (5, 60),
            seed: 7,
            anti_entropy_ms: 500,
        }
    }
}

/// What the gossip layer achieved during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipSummary {
    /// Transactions held by the primary (mirror of the gateway ledger).
    pub primary_len: usize,
    /// Transactions the replica converged to.
    pub replica_len: usize,
    /// Replica tip set identical to the gateway's.
    pub tips_match: bool,
    /// Replica cumulative weights identical for every transaction.
    pub weights_match: bool,
    /// Gossip poll rounds executed (run + settle phases).
    pub rounds: u64,
    /// Outbox transactions the mirror failed to attach (always 0 in a
    /// healthy run).
    pub mirror_rejects: u64,
}

/// Drives a primary/replica gossip pair alongside a simulation run.
#[derive(Debug)]
pub struct GossipMirror {
    primary: GossipNode,
    replica: GossipNode,
    clock: VirtualClock,
    rounds: u64,
    mirror_rejects: u64,
}

impl GossipMirror {
    /// Builds the pair, joined by a jittered in-memory link.
    pub fn new(cfg: &GossipSimConfig) -> Self {
        let clock = VirtualClock::new();
        let node_cfg = GossipConfig {
            anti_entropy_ms: cfg.anti_entropy_ms,
            ..GossipConfig::default()
        };
        let mut primary = GossipNode::with_empty_tangle(node_cfg.clone());
        let mut replica = GossipNode::with_empty_tangle(node_cfg);
        let (end_a, end_b, _link) = MemTransport::pair();
        let model = UniformLatency::new(cfg.jitter_ms.0, cfg.jitter_ms.1);
        primary.add_transport(
            Box::new(JitterTransport::new(
                Box::new(end_a),
                Box::new(model),
                cfg.seed,
                clock.clone(),
            )),
            0,
        );
        replica.add_transport(
            Box::new(JitterTransport::new(
                Box::new(end_b),
                Box::new(model),
                cfg.seed ^ 0x5A5A_5A5A,
                clock.clone(),
            )),
            0,
        );
        Self {
            primary,
            replica,
            clock,
            rounds: 0,
            mirror_rejects: 0,
        }
    }

    /// Mirrors freshly accepted gateway transactions onto the primary
    /// (announcing them to the replica) and advances both nodes to
    /// `now_ms`.
    pub fn step(&mut self, broadcasts: Vec<Transaction>, now_ms: u64) {
        self.clock.set(now_ms);
        for tx in broadcasts {
            if self.primary.attach_local(tx, now_ms).is_err() {
                self.mirror_rejects += 1;
            }
        }
        self.primary.poll(now_ms);
        self.replica.poll(now_ms);
        self.rounds += 1;
    }

    /// Lets in-flight gossip settle, then scores the replica against the
    /// gateway's authoritative ledger.
    pub fn finish(mut self, authoritative: &Tangle, mut now_ms: u64) -> GossipSummary {
        let target = self.primary.tangle().lock().unwrap().len();
        for _ in 0..20_000u32 {
            let done = self.replica.tangle().lock().unwrap().len() == target
                && self.replica.pending_len() == 0;
            if done {
                break;
            }
            now_ms += 25;
            self.clock.set(now_ms);
            self.primary.poll(now_ms);
            self.replica.poll(now_ms);
            self.rounds += 1;
        }
        let primary = self.primary.tangle().lock().unwrap();
        let replica = self.replica.tangle().lock().unwrap();
        let tips_match =
            replica.tips() == authoritative.tips() && primary.tips() == authoritative.tips();
        let weights_match = authoritative.iter().all(|tx| {
            let id = tx.id();
            replica.cumulative_weight(&id) == authoritative.cumulative_weight(&id)
        });
        GossipSummary {
            primary_len: primary.len(),
            replica_len: replica.len(),
            tips_match,
            weights_match,
            rounds: self.rounds,
            mirror_rejects: self.mirror_rejects,
        }
    }
}
