//! Gossip mirroring for simulation runs.
//!
//! When a [`crate::runner::NodeRunConfig`] enables gossip, the run's
//! gateway records every accepted transaction in its broadcast outbox
//! ([`biot_core::node::Gateway::take_broadcasts`]); a [`GossipMirror`]
//! drains that outbox into a primary [`GossipNode`] and syncs it to a
//! replica over a jittered in-memory link on the run's virtual clock.
//! The gateway's credit events ride the same link as `CreditEvents`
//! frames; the replica folds them into its own [`CreditLedger`]. The run
//! then reports whether the replica converged to the identical DAG —
//! tips and cumulative weights — **and** to the identical credit state
//! (hence identical difficulty) in its [`GossipSummary`].
//!
//! Everything is seeded and driven by virtual time, so gossip-enabled
//! runs stay exactly as deterministic as plain ones.

use biot_credit::{CreditEvent, CreditLedger, CreditParams};
use biot_gossip::node::{GossipConfig, GossipNode};
use biot_gossip::transport::{JitterTransport, MemTransport, VirtualClock};
use biot_net::latency::UniformLatency;
use biot_net::time::SimTime;
use biot_tangle::graph::Tangle;
use biot_tangle::tx::Transaction;
use serde::{Deserialize, Serialize};

/// Gossip settings for a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipSimConfig {
    /// Uniform one-way link latency range `(min_ms, max_ms)`.
    pub jitter_ms: (u64, u64),
    /// Seed for the link jitter (independent of the run seed so the two
    /// can be varied separately).
    pub seed: u64,
    /// Anti-entropy interval for both gossip nodes, ms.
    pub anti_entropy_ms: u64,
}

impl Default for GossipSimConfig {
    fn default() -> Self {
        Self {
            jitter_ms: (5, 60),
            seed: 7,
            anti_entropy_ms: 500,
        }
    }
}

/// What the gossip layer achieved during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipSummary {
    /// Transactions held by the primary (mirror of the gateway ledger).
    pub primary_len: usize,
    /// Transactions the replica converged to.
    pub replica_len: usize,
    /// Replica tip set identical to the gateway's.
    pub tips_match: bool,
    /// Replica cumulative weights identical for every transaction.
    pub weights_match: bool,
    /// Replica credit ledger agrees with the gateway's on every node's
    /// `(CrP, CrN, Cr)` breakdown at run end — and therefore on the
    /// difficulty any deterministic policy derives from it.
    pub credit_match: bool,
    /// Credit events the replica folded into its ledger.
    pub replica_credit_events: u64,
    /// Gossip poll rounds executed (run + settle phases).
    pub rounds: u64,
    /// Outbox transactions the mirror failed to attach (always 0 in a
    /// healthy run).
    pub mirror_rejects: u64,
}

/// Drives a primary/replica gossip pair alongside a simulation run.
#[derive(Debug)]
pub struct GossipMirror {
    primary: GossipNode,
    replica: GossipNode,
    /// The replica's view of credit, rebuilt purely from gossiped events.
    replica_ledger: CreditLedger,
    /// Credit events broadcast so far (settle target for the replica).
    events_sent: u64,
    clock: VirtualClock,
    rounds: u64,
    mirror_rejects: u64,
}

impl GossipMirror {
    /// Builds the pair, joined by a jittered in-memory link. The replica
    /// ledger uses `credit_params` — pass the gateway's, or the two sides
    /// would disagree by construction.
    pub fn new(cfg: &GossipSimConfig, credit_params: CreditParams) -> Self {
        let clock = VirtualClock::new();
        let node_cfg = GossipConfig {
            anti_entropy_ms: cfg.anti_entropy_ms,
            ..GossipConfig::default()
        };
        let mut primary = GossipNode::with_empty_tangle(node_cfg.clone());
        let mut replica = GossipNode::with_empty_tangle(node_cfg);
        let (end_a, end_b, _link) = MemTransport::pair();
        let model = UniformLatency::new(cfg.jitter_ms.0, cfg.jitter_ms.1);
        primary.add_transport(
            Box::new(JitterTransport::new(
                Box::new(end_a),
                Box::new(model),
                cfg.seed,
                clock.clone(),
            )),
            0,
        );
        replica.add_transport(
            Box::new(JitterTransport::new(
                Box::new(end_b),
                Box::new(model),
                cfg.seed ^ 0x5A5A_5A5A,
                clock.clone(),
            )),
            0,
        );
        Self {
            primary,
            replica,
            replica_ledger: CreditLedger::new(credit_params),
            events_sent: 0,
            clock,
            rounds: 0,
            mirror_rejects: 0,
        }
    }

    /// Mirrors freshly accepted gateway transactions onto the primary
    /// (announcing them to the replica), relays the gateway's credit
    /// events the same way, and advances both nodes to `now_ms`.
    pub fn step(&mut self, broadcasts: Vec<Transaction>, credit_events: &[CreditEvent], now_ms: u64) {
        self.clock.set(now_ms);
        for tx in broadcasts {
            if self.primary.attach_local(tx, now_ms).is_err() {
                self.mirror_rejects += 1;
            }
        }
        self.primary.broadcast_credit_events(credit_events, now_ms);
        self.events_sent += credit_events.len() as u64;
        self.primary.poll(now_ms);
        self.replica.poll(now_ms);
        self.drain_replica_credit();
        self.rounds += 1;
    }

    /// Folds everything the replica has received into its credit ledger.
    /// The ledger accepts events in any arrival order, so link jitter
    /// cannot change the resulting credit state.
    fn drain_replica_credit(&mut self) {
        for ev in self.replica.take_credit_events() {
            self.replica_ledger.apply(&ev);
        }
    }

    /// Lets in-flight gossip settle, then scores the replica against the
    /// gateway's authoritative tangle and credit ledger.
    pub fn finish(mut self, authoritative: &Tangle, credit: &CreditLedger, mut now_ms: u64) -> GossipSummary {
        let target = self.primary.tangle().lock().unwrap().len();
        for _ in 0..20_000u32 {
            let done = self.replica.tangle().lock().unwrap().len() == target
                && self.replica.pending_len() == 0
                && self.replica_ledger.events_applied() == self.events_sent;
            if done {
                break;
            }
            now_ms += 25;
            self.clock.set(now_ms);
            self.primary.poll(now_ms);
            self.replica.poll(now_ms);
            self.drain_replica_credit();
            self.rounds += 1;
        }
        let primary = self.primary.tangle().lock().unwrap();
        let replica = self.replica.tangle().lock().unwrap();
        let tips_match =
            replica.tips() == authoritative.tips() && primary.tips() == authoritative.tips();
        let weights_match = authoritative.iter().all(|tx| {
            let id = tx.id();
            replica.cumulative_weight(&id) == authoritative.cumulative_weight(&id)
        });
        // Exact equality is intentional: gossiped weights are whole
        // numbers, so both ledgers compute bit-identical breakdowns no
        // matter what order the events arrived in.
        let probe = SimTime::from_millis(now_ms);
        let mut nodes: Vec<_> = credit.known_nodes().copied().collect();
        nodes.extend(self.replica_ledger.known_nodes().copied());
        nodes.sort();
        nodes.dedup();
        let credit_match = nodes.iter().all(|&n| {
            let a = credit.credit_of(n, probe);
            let b = self.replica_ledger.credit_of(n, probe);
            a.positive == b.positive && a.negative == b.negative && a.combined == b.combined
        });
        GossipSummary {
            primary_len: primary.len(),
            replica_len: replica.len(),
            tips_match,
            weights_match,
            credit_match,
            replica_credit_events: self.replica_ledger.events_applied(),
            rounds: self.rounds,
            mirror_rejects: self.mirror_rejects,
        }
    }
}
