//! # biot-sim
//!
//! Smart-factory simulation harness for the B-IoT reproduction: the
//! Raspberry-Pi timing calibration, sensor workload generators, attack
//! injectors, the single-node scenario runner behind Figs 8–9, and the
//! DAG-vs-chain throughput comparison.
//!
//! ## Modules
//!
//! * [`pi`] — Pi 3B PoW/AES timing models calibrated to the paper's
//!   measured anchors.
//! * [`factory`] — sensors, cadences, and reading generators.
//! * [`runner`] — the virtual-time single-node runner (credit traces,
//!   per-transaction PoW cost).
//! * [`attack`] — measured Sybil / lazy-tips / double-spend / failover /
//!   parasite-chain experiments (§VI-C).
//! * [`cluster`] — networked multi-gateway replication with gossip and
//!   anti-entropy.
//! * [`loadgen`] — concurrent light-node load generation against the
//!   `biot-ingest` reactor over real sockets.
//! * [`mesh`] — N-node gossip fleet runner: seeded topology, oracle
//!   workload, partition/heal, bytes-on-wire accounting.
//! * [`roles`] — mixed-role fleet (archival / validation / light):
//!   bit-for-bit convergence plus HTTP-vs-oracle byte equality.
//! * [`fleet`] — many honest nodes + attackers on one gateway (isolation).
//! * [`wireless`] — multi-hop sensor topologies with relay failures.
//! * [`throughput`] — tangle vs chain effective-TPS comparison (§II).
//!
//! ## Example: reproduce the headline Fig 9 contrast in one call
//!
//! ```
//! use biot_net::time::SimTime;
//! use biot_sim::runner::{run_single_node, NodeRunConfig, PolicyChoice};
//!
//! let mut cfg = NodeRunConfig::default();
//! cfg.duration = SimTime::from_secs(30);
//! let credit = run_single_node(&cfg);
//! cfg.policy = PolicyChoice::original_pow();
//! let original = run_single_node(&cfg);
//! assert!(credit.avg_pow_secs() < original.avg_pow_secs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod cluster;
pub mod factory;
pub mod fleet;
pub mod gossip;
pub mod loadgen;
pub mod mesh;
pub mod pi;
pub mod roles;
pub mod runner;
pub mod throughput;
pub mod wireless;

pub use pi::{AesTiming, PiCalibration};
pub use runner::{run_single_node, NodeRunConfig, PolicyChoice, RunResult};
