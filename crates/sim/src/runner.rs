//! End-to-end single-node scenario runner — the engine behind Figs 8–9.
//!
//! Simulates one light node talking to a gateway over a 90-second
//! (3·ΔT) window in virtual time, with optional double-spend attacks at
//! scheduled instants. PoW durations come from a [`PiCalibration`]; the
//! miner re-evaluates its credit-based difficulty periodically while
//! mining (difficulty is *self-adaptive*, §IV-B), which is what lets a
//! punished node recover as its negative credit decays.

use crate::gossip::{GossipMirror, GossipSimConfig, GossipSummary};
use crate::pi::PiCalibration;
use biot_core::credit::{CreditEvent, CreditLedger};
use biot_core::difficulty::{DifficultyPolicy, FixedPolicy, InverseProportionalPolicy, LinearPolicy};
use biot_core::identity::Account;
use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager, SubmitError, VerifyConfig};
use biot_tangle::tips::SelectorConfig;
use biot_core::pow::Difficulty;
use biot_net::time::SimTime;
use biot_tangle::graph::TangleError;
use biot_tangle::tx::TxId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which difficulty policy a run uses (cloneable stand-in for a boxed
/// policy).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicyChoice {
    /// The paper's credit-based policy.
    Inverse(InverseProportionalPolicy),
    /// The linear ablation policy.
    Linear(LinearPolicy),
    /// Constant difficulty — the "original PoW" control.
    Fixed(Difficulty),
}

impl PolicyChoice {
    /// The default credit-based policy.
    pub fn credit_based() -> Self {
        PolicyChoice::Inverse(InverseProportionalPolicy::default())
    }

    /// The original-PoW control at the paper's initial difficulty.
    pub fn original_pow() -> Self {
        PolicyChoice::Fixed(Difficulty::INITIAL)
    }

    fn to_boxed(self) -> Box<dyn DifficultyPolicy + Send + Sync> {
        match self {
            PolicyChoice::Inverse(p) => Box::new(p),
            PolicyChoice::Linear(p) => Box::new(p),
            PolicyChoice::Fixed(d) => Box::new(FixedPolicy(d)),
        }
    }
}

/// Configuration of a single-node run.
#[derive(Clone, Debug)]
pub struct NodeRunConfig {
    /// Virtual run length. Paper: 90 s (three ΔT).
    pub duration: SimTime,
    /// Idle time between transactions (sensor cadence), ms.
    pub think_time_ms: u64,
    /// Instants at which the node attempts a double-spend.
    pub attack_times: Vec<SimTime>,
    /// Difficulty policy.
    pub policy: PolicyChoice,
    /// Pi timing calibration.
    pub calibration: PiCalibration,
    /// How often the miner re-evaluates its difficulty while mining, ms.
    pub reassess_ms: u64,
    /// Thread count for the gateway's batch admission checks (default
    /// 1 = deterministic serial verification).
    pub verify: VerifyConfig,
    /// Tip-selection strategy the gateway serves (default uniform — the
    /// historical behaviour, keeping seeded traces stable).
    pub selector: SelectorConfig,
    /// Mirror the gateway's ledger to a gossip replica over a jittered
    /// link during the run (default off). See [`crate::gossip`].
    pub gossip: Option<GossipSimConfig>,
    /// Seal confirmed cones after each gateway refresh with this recency
    /// lag (see [`GatewayConfig::seal_lag`]). Default `None` — never
    /// seal, keeping the historical weight-walk behaviour.
    pub seal_lag: Option<usize>,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for NodeRunConfig {
    fn default() -> Self {
        Self {
            duration: SimTime::from_secs(90),
            think_time_ms: 2_000,
            attack_times: Vec::new(),
            policy: PolicyChoice::credit_based(),
            calibration: PiCalibration::fig9(),
            reassess_ms: 250,
            verify: VerifyConfig::default(),
            selector: SelectorConfig::default(),
            gossip: None,
            seal_lag: None,
            seed: 42,
        }
    }
}

/// One transaction attempt in a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxOutcome {
    /// When mining started.
    pub started_at_secs: f64,
    /// When the transaction was submitted (mining finished).
    pub submitted_at_secs: f64,
    /// Virtual PoW time spent.
    pub pow_secs: f64,
    /// Difficulty in force when mining finished.
    pub final_difficulty: u32,
    /// Whether the gateway accepted it.
    pub accepted: bool,
    /// Whether this was a double-spend attempt.
    pub was_attack: bool,
    /// Ledger id when accepted.
    #[serde(skip)]
    pub tx_id: Option<TxId>,
    /// Cumulative weight at the end of the run (fig 8's `w` bars).
    pub final_weight: u64,
}

/// A point on the credit trace (Fig 8's curves).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CreditSample {
    /// Sample time in seconds.
    pub t_secs: f64,
    /// Combined credit Cr.
    pub cr: f64,
    /// Positive component CrP.
    pub crp: f64,
    /// Negative component CrN.
    pub crn: f64,
    /// Difficulty the node would face at this instant.
    pub difficulty: u32,
}

/// The full result of a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunResult {
    /// Every transaction attempt, in time order.
    pub outcomes: Vec<TxOutcome>,
    /// Credit trace sampled once per second — computed by replaying
    /// [`credit_events`](Self::credit_events) into a fresh ledger, so a
    /// stored event log reproduces Fig 8 exactly.
    pub samples: Vec<CreditSample>,
    /// The run's full credit event log, in emission order.
    pub credit_events: Vec<CreditEvent>,
    /// Gossip convergence report, when the run mirrored its ledger to a
    /// replica ([`NodeRunConfig::gossip`]).
    pub gossip: Option<GossipSummary>,
}

impl RunResult {
    /// Average PoW seconds per *completed* transaction (the Fig 9 metric).
    pub fn avg_pow_secs(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.pow_secs).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Number of accepted transactions.
    pub fn accepted_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.accepted).count()
    }

    /// Longest gap between consecutive submissions, in seconds — the
    /// "recovery time" visible in Fig 8(a).
    pub fn longest_gap_secs(&self) -> f64 {
        let times: Vec<f64> = self.outcomes.iter().map(|o| o.submitted_at_secs).collect();
        times
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0, f64::max)
    }
}

/// Runs a single-node scenario and returns its trace.
///
/// # Examples
///
/// ```
/// use biot_sim::runner::{run_single_node, NodeRunConfig};
/// use biot_net::time::SimTime;
///
/// let mut cfg = NodeRunConfig::default();
/// cfg.duration = SimTime::from_secs(30);
/// let result = run_single_node(&cfg);
/// assert!(result.accepted_count() > 0);
/// ```
pub fn run_single_node(config: &NodeRunConfig) -> RunResult {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- World setup (Fig 6 steps 1–3) -----------------------------------
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        config.policy.to_boxed(),
        GatewayConfig {
            tip_selector: config.selector,
            record_broadcasts: config.gossip.is_some(),
            // Always on (not just when gossip is): the event log feeds the
            // Fig 8 replay trace, and draining it identically with or
            // without a mirror keeps the two modes bit-for-bit comparable.
            record_credit_events: true,
            seal_lag: config.seal_lag,
            ..GatewayConfig::default()
        },
    );
    let mut gossip = config
        .gossip
        .as_ref()
        .map(|g| GossipMirror::new(g, *gateway.credits().params()));
    let mut event_log: Vec<CreditEvent> = Vec::new();
    gateway.set_verify_config(config.verify);
    let genesis = gateway.init_genesis(SimTime::ZERO);
    let device = LightNode::new(Account::generate(&mut rng));
    let dev_id = manager.register_device(device.public_key().clone());
    manager.authorize(dev_id);
    gateway.register_pubkey(device.public_key().clone());
    let d0 = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d0);
    gateway
        .apply_auth_list(list.tx, SimTime::ZERO)
        .expect("auth list applies at boot");

    // Pre-spend a token so later double-spends have something to conflict
    // with. (Virtual cost not counted — setup happens before t = 0.)
    let token = [0xD5u8; 32];
    let tips = gateway.random_tips(&mut rng).expect("tips exist");
    let d = gateway.difficulty_for(dev_id, SimTime::ZERO);
    let spend = device.prepare_spend(token, manager.id(), tips, SimTime::ZERO, d);
    gateway
        .submit(spend.tx, SimTime::ZERO)
        .expect("initial spend accepted");

    // --- Main loop --------------------------------------------------------
    let mut attacks: Vec<SimTime> = config.attack_times.clone();
    attacks.sort();
    let mut next_attack = 0usize;
    let mut outcomes: Vec<TxOutcome> = Vec::new();
    let mut now = SimTime::ZERO + config.think_time_ms;
    let duration_ms = config.duration.as_millis();
    let mut reading_no = 0u64;

    while now.as_millis() < duration_ms {
        let is_attack = next_attack < attacks.len() && attacks[next_attack] <= now;
        if is_attack {
            next_attack += 1;
        }

        // Mine with periodic difficulty reassessment (adaptive miner).
        let started = now;
        let Some((finish, final_d, pow_secs)) =
            mine_adaptive(&gateway, dev_id, started, config, &mut rng)
        else {
            break; // could not finish within the window
        };
        now = finish;
        if now.as_millis() > duration_ms {
            break;
        }

        // Build and submit at the completion-time difficulty.
        let tips = match gateway.random_tips(&mut rng) {
            Some(t) => t,
            None => break,
        };
        let prepared = if is_attack {
            device.prepare_spend(token, dev_id, tips, now, final_d)
        } else {
            reading_no += 1;
            device.prepare_reading(
                format!("temp_c={:.2}", 20.0 + (reading_no % 7) as f64 * 0.3).as_bytes(),
                tips,
                now,
                final_d,
                &mut rng,
            )
        };
        let result = gateway.submit(prepared.tx, now);
        let (accepted, tx_id) = match result {
            Ok(id) => (true, Some(id)),
            Err(SubmitError::Tangle(TangleError::DoubleSpend { .. })) => (false, None),
            Err(_) => (false, None),
        };
        outcomes.push(TxOutcome {
            started_at_secs: started.as_secs_f64(),
            submitted_at_secs: now.as_secs_f64(),
            pow_secs,
            final_difficulty: final_d.bits(),
            accepted,
            was_attack: is_attack,
            tx_id,
            final_weight: 0,
        });

        let fresh_events = gateway.take_credit_events();
        event_log.extend_from_slice(&fresh_events);
        if let Some(mirror) = gossip.as_mut() {
            mirror.step(gateway.take_broadcasts(), &fresh_events, now.as_millis());
        }
        now += config.think_time_ms;
    }

    // Fill in final weights (Fig 8's bars).
    for o in &mut outcomes {
        if let Some(id) = o.tx_id {
            o.final_weight = gateway.tangle().cumulative_weight(&id);
        }
    }

    // Drain events accrued since the last loop iteration so the log is
    // the complete history.
    let tail_events = gateway.take_credit_events();
    event_log.extend_from_slice(&tail_events);

    // Sample the credit trace once per second — from a *replay* of the
    // event log, not the live ledger. Credit is a pure projection of the
    // log, so this is exact (the runner tests assert it matches the
    // gateway bit-for-bit), and it proves a stored log alone reproduces
    // Fig 8.
    let replay = CreditLedger::from_events(*gateway.credits().params(), &event_log);
    let mut samples = Vec::new();
    let mut t = 0u64;
    while t <= duration_ms {
        let at = SimTime::from_millis(t);
        let b = replay.credit_of(dev_id, at);
        samples.push(CreditSample {
            t_secs: at.as_secs_f64(),
            cr: b.combined,
            crp: b.positive,
            crn: b.negative,
            difficulty: gateway.difficulty_for(dev_id, at).bits(),
        });
        t += 1_000;
    }

    // Let in-flight gossip settle and score the replica.
    let gossip = gossip.map(|mut mirror| {
        mirror.step(gateway.take_broadcasts(), &tail_events, duration_ms);
        mirror.finish(gateway.tangle(), gateway.credits(), duration_ms)
    });

    RunResult { outcomes, samples, credit_events: event_log, gossip }
}

/// Simulates mining with periodic difficulty reassessment.
///
/// The nonce search is memoryless, so restarting at a new difficulty
/// loses no progress. We draw a unit-rate exponential "work" requirement
/// and integrate the hash rate implied by the (changing) difficulty until
/// the work is consumed.
///
/// Returns `(finish_time, difficulty_at_finish, pow_seconds)`, or `None`
/// if the search would not finish within 10× the run duration (a fully
/// punished node at an impossible difficulty).
fn mine_adaptive(
    gateway: &Gateway,
    node: biot_tangle::tx::NodeId,
    start: SimTime,
    config: &NodeRunConfig,
    rng: &mut StdRng,
) -> Option<(SimTime, Difficulty, f64)> {
    let mut work: f64 = {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln()
    };
    let mut t = start;
    let horizon = config.duration.as_millis() * 10;
    loop {
        if t.as_millis() > horizon {
            return None;
        }
        let d = gateway.difficulty_for(node, t);
        let rate = 1.0 / config.calibration.expected_pow_secs(d); // work/sec
        let step_secs = config.reassess_ms as f64 / 1000.0;
        let consumed = rate * step_secs;
        if consumed >= work {
            let finish_in = work / rate;
            let finish = t + (finish_in * 1000.0).round() as u64;
            let pow_secs = finish.millis_since(start) as f64 / 1000.0;
            return Some((finish, d, pow_secs));
        }
        work -= consumed;
        t += config.reassess_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> NodeRunConfig {
        NodeRunConfig {
            duration: SimTime::from_secs(90),
            ..NodeRunConfig::default()
        }
    }

    #[test]
    fn normal_run_produces_steady_transactions() {
        let result = run_single_node(&quick_config());
        assert!(result.accepted_count() >= 10, "got {}", result.accepted_count());
        assert!(result.outcomes.iter().all(|o| o.accepted));
        // Credit becomes positive once activity registers.
        let late = result.samples.last().unwrap();
        assert!(late.cr > 0.0, "steady-state credit {}", late.cr);
    }

    #[test]
    fn credit_based_beats_original_pow_for_honest_node() {
        let credit = run_single_node(&quick_config());
        let fixed = run_single_node(&NodeRunConfig {
            policy: PolicyChoice::original_pow(),
            ..quick_config()
        });
        assert!(
            credit.avg_pow_secs() < fixed.avg_pow_secs() / 2.0,
            "credit {} vs fixed {}",
            credit.avg_pow_secs(),
            fixed.avg_pow_secs()
        );
    }

    #[test]
    fn original_pow_average_near_point_seven() {
        let fixed = run_single_node(&NodeRunConfig {
            policy: PolicyChoice::original_pow(),
            ..quick_config()
        });
        let avg = fixed.avg_pow_secs();
        assert!((0.35..1.4).contains(&avg), "avg {avg} should be ≈0.7 s");
    }

    #[test]
    fn attack_is_rejected_and_punished() {
        let result = run_single_node(&NodeRunConfig {
            attack_times: vec![SimTime::from_secs(30)],
            ..quick_config()
        });
        let attack = result
            .outcomes
            .iter()
            .find(|o| o.was_attack)
            .expect("attack attempt present");
        assert!(!attack.accepted, "double-spend must be cancelled");
        // Credit right after the attack is deeply negative.
        let after = result
            .samples
            .iter()
            .find(|s| s.t_secs > attack.submitted_at_secs)
            .expect("sample after attack");
        assert!(after.cr < -1.0, "credit after attack: {}", after.cr);
        assert_eq!(after.difficulty, 14, "difficulty pinned at the clamp");
    }

    #[test]
    fn attack_slows_down_subsequent_transactions() {
        let clean = run_single_node(&quick_config());
        let attacked = run_single_node(&NodeRunConfig {
            attack_times: vec![SimTime::from_secs(30)],
            ..quick_config()
        });
        assert!(
            attacked.avg_pow_secs() > clean.avg_pow_secs() * 2.0,
            "attacked {} vs clean {}",
            attacked.avg_pow_secs(),
            clean.avg_pow_secs()
        );
        assert!(attacked.longest_gap_secs() > clean.longest_gap_secs());
    }

    #[test]
    fn two_attacks_slower_than_one() {
        let one = run_single_node(&NodeRunConfig {
            attack_times: vec![SimTime::from_secs(30)],
            ..quick_config()
        });
        let two = run_single_node(&NodeRunConfig {
            attack_times: vec![SimTime::from_secs(30), SimTime::from_secs(55)],
            ..quick_config()
        });
        assert!(
            two.avg_pow_secs() > one.avg_pow_secs(),
            "two {} vs one {}",
            two.avg_pow_secs(),
            one.avg_pow_secs()
        );
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let a = run_single_node(&quick_config());
        let b = run_single_node(&quick_config());
        assert_eq!(a.accepted_count(), b.accepted_count());
        assert_eq!(a.avg_pow_secs(), b.avg_pow_secs());
        let c = run_single_node(&NodeRunConfig {
            seed: 43,
            ..quick_config()
        });
        // Different seed nearly surely differs somewhere.
        assert!(
            a.avg_pow_secs() != c.avg_pow_secs() || a.accepted_count() != c.accepted_count()
        );
    }

    #[test]
    fn sealing_does_not_perturb_the_run() {
        // The sealed-cone index is a pure acceleration: weights, credit,
        // and every RNG draw must be byte-identical with sealing on.
        let plain = run_single_node(&quick_config());
        let sealed = run_single_node(&NodeRunConfig {
            seal_lag: Some(16),
            ..quick_config()
        });
        assert_eq!(plain.accepted_count(), sealed.accepted_count());
        assert_eq!(plain.avg_pow_secs(), sealed.avg_pow_secs());
        assert_eq!(plain.samples.len(), sealed.samples.len());
        for (a, b) in plain.samples.iter().zip(&sealed.samples) {
            assert_eq!(a.cr, b.cr);
        }
    }

    #[test]
    fn gossip_mirror_converges_and_is_deterministic() {
        let cfg = NodeRunConfig {
            gossip: Some(GossipSimConfig::default()),
            ..quick_config()
        };
        let first = run_single_node(&cfg);
        let summary = first.gossip.expect("gossip summary present");
        assert!(summary.replica_len >= 10, "{summary:?}");
        assert_eq!(summary.replica_len, summary.primary_len, "{summary:?}");
        assert!(summary.tips_match, "{summary:?}");
        assert!(summary.weights_match, "{summary:?}");
        assert!(summary.credit_match, "{summary:?}");
        assert!(summary.replica_credit_events > 0, "{summary:?}");
        assert_eq!(summary.mirror_rejects, 0, "{summary:?}");

        // Same seeds → identical gossip trace.
        let second = run_single_node(&cfg);
        assert_eq!(second.gossip, Some(summary));

        // The mirror must not perturb the simulation itself.
        let plain = run_single_node(&quick_config());
        assert_eq!(plain.accepted_count(), first.accepted_count());
        assert_eq!(plain.avg_pow_secs(), first.avg_pow_secs());
    }

    #[test]
    fn gossip_replica_agrees_on_credit_even_after_an_attack() {
        // The punished node's deeply negative credit — and the clamped
        // difficulty it implies — must be visible on the replica too,
        // purely from gossiped misbehaviour evidence.
        let result = run_single_node(&NodeRunConfig {
            gossip: Some(GossipSimConfig::default()),
            attack_times: vec![SimTime::from_secs(30)],
            ..quick_config()
        });
        let summary = result.gossip.expect("gossip summary present");
        assert!(summary.credit_match, "{summary:?}");
        assert!(
            result
                .credit_events
                .iter()
                .any(|e| matches!(e, CreditEvent::Misbehaved { .. })),
            "attack evidence must be in the event log"
        );
    }

    #[test]
    fn credit_trace_is_a_pure_replay_of_the_event_log() {
        use biot_core::credit::CreditParams;
        let result = run_single_node(&NodeRunConfig {
            attack_times: vec![SimTime::from_secs(30)],
            ..quick_config()
        });
        assert!(!result.credit_events.is_empty());
        // The attacked device is the one node with misbehaviour evidence.
        let dev = result
            .credit_events
            .iter()
            .find_map(|e| match e {
                CreditEvent::Misbehaved { node, .. } => Some(*node),
                _ => None,
            })
            .expect("attack run records misbehaviour");
        // Replaying the published log through a fresh ledger reproduces
        // the published Fig 8 samples bit-for-bit.
        let replay = CreditLedger::from_events(CreditParams::default(), &result.credit_events);
        for s in &result.samples {
            let b = replay.credit_of(dev, SimTime::from_millis((s.t_secs * 1000.0).round() as u64));
            assert_eq!(b.combined, s.cr, "at t={}", s.t_secs);
            assert_eq!(b.positive, s.crp, "at t={}", s.t_secs);
            assert_eq!(b.negative, s.crn, "at t={}", s.t_secs);
        }
    }

    #[test]
    fn credit_trace_recovers_after_attack() {
        let result = run_single_node(&NodeRunConfig {
            attack_times: vec![SimTime::from_secs(24)],
            ..quick_config()
        });
        let worst = result
            .samples
            .iter()
            .cloned()
            .fold(f64::INFINITY, |acc, s| acc.min(s.cr));
        let last = result.samples.last().unwrap().cr;
        assert!(worst < -2.0, "trough {worst}");
        assert!(last > worst, "credit must climb back: {last} vs {worst}");
    }
}
