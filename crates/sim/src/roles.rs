//! Mixed-role fleet runner: the tentpole proof for the role runtimes.
//!
//! Where [`crate::mesh`] stands up a fleet of identical gossip nodes,
//! this module wires a *heterogeneous* fleet the way the paper's network
//! actually looks:
//!
//! * node 0 is an [`ArchivalNode`] — syncs the mesh, folds credit
//!   events, optionally persists to a `biot-store` directory, and serves
//!   the HTTP/1.1 query API on a real loopback socket;
//! * node 1 is a [`ValidationNode`] — wraps a full [`Gateway`]
//!   (authorization, signatures, credit bookkeeping), admits
//!   [`LightClient`] submissions, pushes the resulting transactions and
//!   credit events onto the mesh, and retains the event log for the
//!   replay cross-check;
//! * the rest are plain relays carrying the oracle workload, exactly as
//!   in the mesh runner.
//!
//! The run passes only if **all three role claims hold at once**:
//!
//! 1. every node — relays, the archival tangle, *and* the validation
//!    gateway's internal tangle — converges to the oracle bit-for-bit
//!    (tips, cumulative weights, credit breakdowns);
//! 2. the validation node's from-scratch event-log replay matches its
//!    live ledger exactly ([`ValidationNode::verify_replay`]);
//! 3. every byte the archival node's HTTP endpoint sends over TCP is
//!    identical to the in-process oracle rendering
//!    ([`ArchivalNode::oracle_response`]) for the same request.

use crate::mesh::seeded_edges;
use biot_core::identity::node_id_of;
use biot_core::node::{Gateway, GatewayConfig, Manager};
use biot_core::{Account, Difficulty, FixedPolicy};
use biot_credit::{CreditEvent, CreditLedger, CreditParams, Misbehavior};
use biot_gossip::node::{GossipConfig, GossipNode, RelayMode};
use biot_gossip::transport::{
    ByteCounter, CountingTransport, FnConnector, JitterTransport, MemTransport, Transport,
    VirtualClock,
};
use biot_net::latency::UniformLatency;
use biot_net::time::SimTime;
use biot_node::http::Request;
use biot_node::role::{ArchivalNode, LightClient, Role, RoleConfig, ValidationNode};
use biot_node::{EventLoop, MemberId, QueryConfig};
use biot_tangle::conflict::LazyTipPolicy;
use biot_tangle::graph::Tangle;
use biot_tangle::tx::{NodeId, Payload, Transaction, TransactionBuilder, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Which runtime drives the fleet through virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RolesDriver {
    /// The legacy fixed-step loop: poll every node every `step_ms`.
    /// Kept as the behavioral oracle the event loop is checked against.
    #[default]
    TickLoop,
    /// The blocking reactor ([`biot_node::EventLoop`]) on a virtual
    /// clock that jumps deadline-to-deadline instead of sleeping.
    EventLoop,
}

/// Knobs for one mixed-role fleet run.
#[derive(Clone, Debug, PartialEq)]
pub struct RolesConfig {
    /// Total fleet size, archival + validation + relays. Must be ≥ 4.
    pub nodes: usize,
    /// Target gossip degree.
    pub degree: usize,
    /// Oracle DAG transactions injected at relay nodes.
    pub txs: usize,
    /// Payload bytes per oracle transaction.
    pub payload_bytes: usize,
    /// Scheduled credit events injected at relay nodes.
    pub credit_events: usize,
    /// Light clients submitting through the validation gateway.
    pub light_clients: usize,
    /// Signed transactions each light client submits.
    pub light_txs_each: usize,
    /// Seed for topology, workload, and jitter.
    pub seed: u64,
    /// Gossip digest interval (ms).
    pub digest_ms: u64,
    /// Gossip anti-entropy interval (ms).
    pub anti_entropy_ms: u64,
    /// Link latency bounds (ms).
    pub jitter_ms: (u64, u64),
    /// Oracle transaction cadence (ms).
    pub tx_interval_ms: u64,
    /// Virtual-time step per poll round (ms).
    pub step_ms: u64,
    /// Give-up horizon (virtual ms).
    pub max_ms: u64,
    /// Archival store directory (`None` = memory only).
    pub store_dir: Option<PathBuf>,
    /// Which runtime drives the fleet (see [`RolesDriver`]).
    pub driver: RolesDriver,
}

impl Default for RolesConfig {
    fn default() -> Self {
        Self {
            nodes: 16,
            degree: 6,
            txs: 120,
            payload_bytes: 128,
            credit_events: 32,
            light_clients: 2,
            light_txs_each: 6,
            seed: 42,
            digest_ms: 25,
            anti_entropy_ms: 2_000,
            jitter_ms: (5, 30),
            tx_interval_ms: 20,
            step_ms: 25,
            max_ms: 600_000,
            store_dir: None,
            driver: RolesDriver::default(),
        }
    }
}

/// What one mixed-role run produced.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RolesOutcome {
    /// Fleet size.
    pub nodes: usize,
    /// Oracle DAG transactions.
    pub txs: usize,
    /// Light-client transactions admitted through the gateway.
    pub light_txs: usize,
    /// Credit events fleet-wide (schedule + gateway emissions).
    pub events_total: u64,
    /// Whether every node matched the oracle bit-for-bit in time.
    pub converged: bool,
    /// Virtual time of convergence (ms).
    pub converged_ms: u64,
    /// Poll rounds executed.
    pub rounds: u64,
    /// Devices checked by the validation replay (0 until it runs).
    pub replay_devices: usize,
    /// Whether the replayed ledger matched the live one exactly.
    pub replay_ok: bool,
    /// HTTP requests probed against the archival endpoint.
    pub http_probes: usize,
    /// Probes whose socket bytes differed from the in-process oracle.
    pub http_mismatches: usize,
    /// Driver-invariant digest of the converged fleet — sorted tips,
    /// cumulative weights in oracle order, per-device credit bit
    /// patterns at a fixed probe instant, and hashes of the archival
    /// endpoint's rendered bytes for canonical requests. Two runs of
    /// the same config under *different* drivers must agree on every
    /// entry (empty until convergence).
    pub fingerprint: Vec<String>,
}

/// The relay-side oracle workload (mirrors the mesh runner's).
struct Workload {
    tangle: Tangle,
    ledger: CreditLedger,
    txs: Vec<(Transaction, u64, usize)>,
    events: Vec<(CreditEvent, u64, usize)>,
}

/// Builds the relay workload: a seeded DAG plus a credit-event schedule,
/// each item surfacing at a seeded relay node (indices ≥ 2).
fn build_workload(cfg: &RolesConfig, genesis_issuer: NodeId) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0401_E5D0);
    let mut tangle = Tangle::new();
    let genesis = tangle.attach_genesis(genesis_issuer, 0);
    let mut ids = vec![genesis];
    let mut txs = Vec::with_capacity(cfg.txs);
    for k in 0..cfg.txs {
        let attach_ms = (k as u64 + 1) * cfg.tx_interval_ms;
        let window = ids.len().min(24);
        let trunk = ids[ids.len() - 1 - rng.gen_range(0..window)];
        let branch = ids[ids.len() - 1 - rng.gen_range(0..window)];
        let mut issuer = [0u8; 32];
        issuer[0] = (k % 249) as u8 + 1;
        issuer[1] = (k / 249) as u8;
        let mut payload = (k as u32).to_be_bytes().to_vec();
        payload.resize(cfg.payload_bytes.max(4), (k % 251) as u8);
        let tx = TransactionBuilder::new(NodeId(issuer))
            .parents(trunk, branch)
            .payload(Payload::Data(payload))
            .timestamp_ms(attach_ms)
            .build();
        let id = tangle.attach(tx.clone(), attach_ms).expect("oracle parents present");
        ids.push(id);
        let origin = rng.gen_range(2..cfg.nodes);
        txs.push((tx, attach_ms, origin));
    }
    // Whole-number weights and unique per-subject timestamps keep the
    // ledger fold order-independent across gossip reorderings.
    let mut ledger = CreditLedger::new(CreditParams::default());
    let mut events = Vec::with_capacity(cfg.credit_events);
    let span = cfg.txs as u64 * cfg.tx_interval_ms;
    for e in 0..cfg.credit_events {
        let subject = NodeId([(e % 7) as u8 + 1; 32]);
        let weight = f64::from(rng.gen_range(1..=3u32));
        let at = SimTime::from_millis(1_000 + e as u64 * 13);
        let ev = if rng.gen_range(0..5u32) == 0 {
            let kind =
                if rng.gen_bool(0.5) { Misbehavior::LazyTips } else { Misbehavior::DoubleSpend };
            CreditEvent::misbehaved(subject, kind, at)
        } else {
            CreditEvent::validated(subject, weight, at)
        };
        ledger.apply(&ev);
        let emit_ms = rng.gen_range(0..=span.max(1));
        let origin = rng.gen_range(2..cfg.nodes);
        events.push((ev, emit_ms, origin));
    }
    events.sort_by_key(|&(_, at, _)| at);
    Workload { tangle, ledger, txs, events }
}

/// A gateway configured for the validation role: fixed minimum
/// difficulty (light clients mine `Difficulty::MIN`), lazy-tip policing
/// off (light clients legitimately build on old tips here), and both
/// record switches on so admissions reach the mesh.
fn validation_gateway(manager_pk: biot_crypto::rsa::RsaPublicKey) -> Gateway {
    Gateway::new(
        manager_pk,
        Box::new(FixedPolicy(Difficulty::MIN)),
        GatewayConfig {
            lazy_policy: LazyTipPolicy {
                max_parent_age_ms: u64::MAX,
                max_parent_approvers: usize::MAX,
            },
            record_broadcasts: true,
            record_credit_events: true,
            ..GatewayConfig::default()
        },
    )
}

fn gossip_config(cfg: &RolesConfig, index: usize) -> GossipConfig {
    GossipConfig {
        node_id: index as u64 + 1,
        listen_addr: Some(format!("roles:{}", index + 1)),
        relay_mode: RelayMode::Digest,
        fanout: 6,
        digest_ms: cfg.digest_ms,
        anti_entropy_ms: cfg.anti_entropy_ms,
        max_pending: cfg.txs + cfg.light_clients * cfg.light_txs_each + 64,
        seed: cfg.seed,
        ..GossipConfig::default()
    }
}

enum FleetNode {
    Archival(Box<ArchivalNode>),
    Validation(Box<ValidationNode>),
    Relay(Box<GossipNode>),
}

impl FleetNode {
    fn gossip_mut(&mut self) -> &mut GossipNode {
        match self {
            FleetNode::Archival(n) => n.gossip_mut(),
            FleetNode::Validation(n) => n.gossip_mut(),
            FleetNode::Relay(n) => n,
        }
    }

    fn gossip(&self) -> &GossipNode {
        match self {
            FleetNode::Archival(n) => n.gossip(),
            FleetNode::Validation(n) => n.gossip(),
            FleetNode::Relay(n) => n,
        }
    }
}

/// Far ends of freshly dialed links, grouped by accepting node index.
type AcceptQueues = Arc<Mutex<Vec<Vec<Box<dyn Transport>>>>>;

/// Uniform read view over one fleet member, whichever driver holds it.
struct FleetView<'a> {
    gossip: &'a GossipNode,
    ledger: &'a CreditLedger,
    /// The validation gateway's internal tangle, when the member has
    /// one — it must match the oracle too.
    gateway_tangle: Option<&'a Tangle>,
}

/// The fleet under whichever runtime [`RolesConfig::driver`] picked.
/// Every scripted injection and every convergence check goes through
/// this, so both drivers run literally the same schedule.
enum Driven {
    Tick { nodes: Vec<FleetNode>, ledgers: Vec<CreditLedger> },
    Event { el: EventLoop, ids: Vec<MemberId> },
}

impl Driven {
    fn len(&self) -> usize {
        match self {
            Driven::Tick { nodes, .. } => nodes.len(),
            Driven::Event { ids, .. } => ids.len(),
        }
    }

    fn gossip(&self, i: usize) -> &GossipNode {
        match self {
            Driven::Tick { nodes, .. } => nodes[i].gossip(),
            Driven::Event { el, ids } => el.gossip(ids[i]).expect("member exists"),
        }
    }

    fn gossip_mut(&mut self, i: usize) -> &mut GossipNode {
        match self {
            Driven::Tick { nodes, .. } => nodes[i].gossip_mut(),
            Driven::Event { el, ids } => el.gossip_mut(ids[i]).expect("member exists"),
        }
    }

    /// Folds a locally injected credit event into relay `i`'s own
    /// projection (broadcasts do not loop back to their origin).
    fn apply_local_event(&mut self, i: usize, ev: &CreditEvent) {
        match self {
            Driven::Tick { ledgers, .. } => ledgers[i].apply(ev),
            Driven::Event { el, ids } => {
                el.ledger_mut(ids[i]).expect("relay member holds a ledger").apply(ev);
            }
        }
    }

    fn validation_mut(&mut self) -> &mut ValidationNode {
        match self {
            Driven::Tick { nodes, .. } => match &mut nodes[1] {
                FleetNode::Validation(v) => v,
                _ => unreachable!("node 1 is the validation node"),
            },
            Driven::Event { el, ids } => {
                el.validation_mut(ids[1]).expect("node 1 is the validation node")
            }
        }
    }

    fn validation(&self) -> &ValidationNode {
        match self {
            Driven::Tick { nodes, .. } => match &nodes[1] {
                FleetNode::Validation(v) => v,
                _ => unreachable!("node 1 is the validation node"),
            },
            Driven::Event { el, ids } => {
                el.validation(ids[1]).expect("node 1 is the validation node")
            }
        }
    }

    fn archival(&self) -> &ArchivalNode {
        match self {
            Driven::Tick { nodes, .. } => match &nodes[0] {
                FleetNode::Archival(a) => a,
                _ => unreachable!("node 0 is the archival node"),
            },
            Driven::Event { el, ids } => {
                el.archival(ids[0]).expect("node 0 is the archival node")
            }
        }
    }

    fn archival_mut(&mut self) -> &mut ArchivalNode {
        match self {
            Driven::Tick { nodes, .. } => match &mut nodes[0] {
                FleetNode::Archival(a) => a,
                _ => unreachable!("node 0 is the archival node"),
            },
            Driven::Event { el, ids } => {
                el.archival_mut(ids[0]).expect("node 0 is the archival node")
            }
        }
    }

    /// One round of virtual time `now`: the tick driver polls every
    /// member once; the event driver pumps every deadline due by `now`,
    /// each wake dispatching the same handler sequence one tick would.
    fn step(&mut self, now: u64) {
        match self {
            Driven::Tick { nodes, ledgers } => {
                for (node, ledger) in nodes.iter_mut().zip(ledgers.iter_mut()) {
                    match node {
                        FleetNode::Archival(n) => {
                            n.poll(now).expect("archival poll");
                        }
                        FleetNode::Validation(n) => {
                            n.poll(now).expect("validation poll");
                        }
                        FleetNode::Relay(n) => {
                            n.poll(now);
                            for ev in n.take_credit_events() {
                                ledger.apply(&ev);
                            }
                        }
                    }
                }
            }
            Driven::Event { el, .. } => el.pump(now).expect("event-loop pump"),
        }
    }

    /// One iteration of the HTTP probe phase: keep the archival reactor
    /// (tick) or the whole loop (event) serviced at frozen virtual time.
    fn probe_step(&mut self, now: u64) {
        match self {
            Driven::Tick { nodes, .. } => {
                if let FleetNode::Archival(a) = &mut nodes[0] {
                    a.poll(now).expect("archival poll during probes");
                }
            }
            Driven::Event { el, .. } => el.turn().expect("event-loop turn during probes"),
        }
    }

    fn view(&self, i: usize) -> FleetView<'_> {
        match self {
            Driven::Tick { nodes, ledgers } => match &nodes[i] {
                FleetNode::Archival(n) => FleetView {
                    gossip: n.gossip(),
                    ledger: n.credits(),
                    gateway_tangle: None,
                },
                FleetNode::Validation(n) => FleetView {
                    gossip: n.gossip(),
                    ledger: n.gateway().credits(),
                    gateway_tangle: Some(n.gateway().tangle()),
                },
                FleetNode::Relay(n) => {
                    FleetView { gossip: n, ledger: &ledgers[i], gateway_tangle: None }
                }
            },
            Driven::Event { el, ids } => {
                let id = ids[i];
                if let Some(n) = el.archival(id) {
                    FleetView { gossip: n.gossip(), ledger: n.credits(), gateway_tangle: None }
                } else if let Some(n) = el.validation(id) {
                    FleetView {
                        gossip: n.gossip(),
                        ledger: n.gateway().credits(),
                        gateway_tangle: Some(n.gateway().tangle()),
                    }
                } else {
                    FleetView {
                        gossip: el.gossip(id).expect("member exists"),
                        ledger: el.ledger(id).expect("relay member holds a ledger"),
                        gateway_tangle: None,
                    }
                }
            }
        }
    }
}

/// Requests the HTTP probe thread replays against the archival endpoint.
fn probe_requests(workload: &Workload, lights: &[LightClient]) -> Vec<Request> {
    let mut paths: Vec<(String, String)> = vec![
        ("/v1/health".into(), String::new()),
        ("/v1/stats".into(), String::new()),
        ("/v1/tips".into(), String::new()),
        ("/v1/credit".into(), String::new()),
        ("/v1/credit".into(), "at_ms=5000".into()),
        ("/v1/nope".into(), String::new()),
        ("/v1/tx/zz".into(), String::new()),
    ];
    let hex = |b: &[u8]| biot_crypto::sha256::to_hex(b);
    for tx in workload.tangle.iter().take(3) {
        paths.push((format!("/v1/tx/{}", hex(tx.id().as_bytes())), String::new()));
        paths.push((format!("/v1/weight/{}", hex(tx.id().as_bytes())), String::new()));
    }
    for subject in workload.ledger.known_nodes().take(2) {
        paths.push((format!("/v1/credit/{}", hex(subject.as_bytes())), String::new()));
    }
    for light in lights {
        paths.push((format!("/v1/credit/{}", hex(light.id().as_bytes())), String::new()));
    }
    paths
        .into_iter()
        .map(|(path, query)| Request { method: "GET".into(), path, query, keep_alive: false })
        .collect()
}

/// Runs one mixed-role fleet to convergence, then probes the archival
/// HTTP endpoint over real TCP and cross-checks the validation replay.
pub fn run_roles(cfg: &RolesConfig) -> RolesOutcome {
    assert!(cfg.nodes >= 4, "need archival + validation + at least two relays");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4013_ABCD);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let genesis_issuer = node_id_of(manager.public_key());
    let workload = build_workload(cfg, genesis_issuer);

    // Light clients and their deterministic submission schedule:
    // `(client, tx, at_ms)`, all parented on genesis, mined to MIN.
    let lights: Vec<LightClient> =
        (0..cfg.light_clients).map(|_| LightClient::new(Account::generate(&mut rng))).collect();
    let mut gateway = validation_gateway(manager.public_key().clone());
    let genesis = gateway.init_genesis(SimTime::ZERO);
    for light in &lights {
        let device = manager.register_device(light.public_key().clone());
        manager.authorize(device);
        gateway.register_pubkey(light.public_key().clone());
    }
    let d0 = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let auth = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d0);
    gateway.apply_auth_list(auth.tx.clone(), SimTime::ZERO).expect("auth list admits");

    let mut submissions: Vec<(usize, Transaction, u64)> = Vec::new();
    for k in 0..cfg.light_txs_each {
        for (c, light) in lights.iter().enumerate() {
            let at_ms = 500 + (k * cfg.light_clients + c) as u64 * 37;
            let tx = light
                .prepare(
                    vec![c as u8, k as u8],
                    (genesis, genesis),
                    SimTime::from_millis(at_ms),
                    Difficulty::MIN,
                )
                .tx;
            submissions.push((c, tx, at_ms));
        }
    }

    // Oracle gateway: an identical twin fed the identical submissions at
    // the identical instants, run to completion up front. Its broadcasts
    // and credit events *define* what the fleet must converge to.
    let mut oracle_tangle = workload.tangle;
    let mut oracle_ledger = workload.ledger;
    let mut oracle_gateway = validation_gateway(manager.public_key().clone());
    oracle_gateway.init_genesis(SimTime::ZERO);
    for light in &lights {
        oracle_gateway.register_pubkey(light.public_key().clone());
    }
    oracle_gateway
        .apply_auth_list(auth.tx.clone(), SimTime::ZERO)
        .expect("auth list admits on the twin");
    for (_, tx, at_ms) in &submissions {
        oracle_gateway
            .submit(tx.clone(), SimTime::from_millis(*at_ms))
            .expect("scheduled light submission admits on the twin");
    }
    for tx in oracle_gateway.take_broadcasts() {
        if !tx.is_genesis() {
            let at = tx.timestamp_ms;
            oracle_tangle.attach(tx, at).expect("gateway broadcasts attach");
        }
    }
    let gateway_events = oracle_gateway.take_credit_events();
    for ev in &gateway_events {
        oracle_ledger.apply(ev);
    }
    let events_total = workload.events.len() as u64 + gateway_events.len() as u64;

    // The fleet: 0 = archival (HTTP on loopback), 1 = validation, 2.. =
    // relays, wired over seeded jittered in-memory links.
    let clock = VirtualClock::new();
    let accept: AcceptQueues = Arc::new(Mutex::new((0..cfg.nodes).map(|_| Vec::new()).collect()));
    let mut nodes: Vec<FleetNode> = Vec::with_capacity(cfg.nodes);
    let archival = ArchivalNode::new(RoleConfig {
        role: Role::Archival,
        gossip: gossip_config(cfg, 0),
        store_dir: cfg.store_dir.clone(),
        http_addr: Some("127.0.0.1:0".into()),
        http: QueryConfig::default(),
        ..RoleConfig::default()
    })
    .expect("archival node boots");
    nodes.push(FleetNode::Archival(Box::new(archival)));
    let validation = ValidationNode::new(
        gateway,
        RoleConfig { role: Role::Validation, gossip: gossip_config(cfg, 1), ..RoleConfig::default() },
    )
    .expect("validation node boots");
    nodes.push(FleetNode::Validation(Box::new(validation)));
    for i in 2..cfg.nodes {
        nodes.push(FleetNode::Relay(Box::new(GossipNode::with_empty_tangle(gossip_config(
            cfg, i,
        )))));
    }
    for node in nodes.iter_mut() {
        node.gossip_mut().tangle().lock().unwrap().attach_genesis(genesis_issuer, 0);
    }
    let ledgers: Vec<CreditLedger> =
        (0..cfg.nodes).map(|_| CreditLedger::new(CreditParams::default())).collect();

    for (i, j) in seeded_edges(cfg.nodes, cfg.degree, cfg.seed) {
        let accept = Arc::clone(&accept);
        let clock_i = clock.clone();
        let model = UniformLatency::new(cfg.jitter_ms.0, cfg.jitter_ms.1);
        let (seed_i, seed_j) = (
            cfg.seed ^ (i as u64) << 20 ^ (j as u64) << 4 ^ 1,
            cfg.seed ^ (i as u64) << 20 ^ (j as u64) << 4 ^ 2,
        );
        let counter = ByteCounter::new();
        let counter_far = ByteCounter::new();
        nodes[i].gossip_mut().connect(Box::new(FnConnector(move || {
            let (a, b, _link) = MemTransport::pair();
            let far: Box<dyn Transport> = Box::new(CountingTransport::new(
                Box::new(JitterTransport::new(
                    Box::new(b),
                    Box::new(model),
                    seed_j,
                    clock_i.clone(),
                )),
                counter_far.clone(),
            ));
            accept.lock().unwrap()[j].push(far);
            Ok(Box::new(CountingTransport::new(
                Box::new(JitterTransport::new(
                    Box::new(a),
                    Box::new(model),
                    seed_i,
                    clock_i.clone(),
                )),
                counter.clone(),
            )) as Box<dyn Transport>)
        })));
    }

    // Hand the built fleet to the configured driver. Identical members,
    // identical wiring — only the engine advancing them differs.
    let mut driven = match cfg.driver {
        RolesDriver::TickLoop => Driven::Tick { nodes, ledgers },
        RolesDriver::EventLoop => {
            let mut el = EventLoop::with_clock(Box::new(clock.clone()))
                .expect("event loop boots");
            let mut ids = Vec::with_capacity(nodes.len());
            for node in nodes {
                ids.push(match node {
                    FleetNode::Archival(n) => el.add_archival(*n),
                    FleetNode::Validation(n) => el.add_validation(*n),
                    FleetNode::Relay(n) => el.add_gossip(*n),
                });
            }
            drop(ledgers); // event members carry their own projections
            Driven::Event { el, ids }
        }
    };

    let mut injected = vec![false; workload.txs.len()];
    let mut next_tx = 0usize;
    let mut next_ev = 0usize;
    let mut next_sub = 0usize;
    let mut now = 0u64;
    let mut loop_rounds = 0u64;
    let mut out = RolesOutcome {
        nodes: cfg.nodes,
        txs: cfg.txs,
        light_txs: submissions.len(),
        events_total,
        ..RolesOutcome::default()
    };

    while now <= cfg.max_ms {
        clock.set(now);
        // Oracle DAG transactions surface at relays once their origin has
        // synced the pre-decided parents (issuance follows sync).
        #[allow(clippy::needless_range_loop)] // `k` also indexes `injected`
        for k in next_tx..workload.txs.len() {
            let (tx, attach_ms, origin) = &workload.txs[k];
            if *attach_ms > now {
                break;
            }
            if injected[k] {
                continue;
            }
            let parents_known = {
                let t = driven.gossip(*origin).tangle().lock().unwrap();
                tx.parents().into_iter().all(|p| t.contains(&p))
            };
            if parents_known {
                driven.gossip_mut(*origin).submit(tx.clone(), *attach_ms, now);
                injected[k] = true;
            }
        }
        while next_tx < workload.txs.len() && injected[next_tx] {
            next_tx += 1;
        }
        while next_ev < workload.events.len() && workload.events[next_ev].1 <= now {
            let (ev, _, origin) = &workload.events[next_ev];
            driven.apply_local_event(*origin, ev);
            driven.gossip_mut(*origin).broadcast_credit_events(&[*ev], now);
            next_ev += 1;
        }
        // Light submissions reach the live gateway at their scheduled
        // instants — the same instants the oracle twin already saw.
        while next_sub < submissions.len() && submissions[next_sub].2 <= now {
            let (_, tx, at_ms) = &submissions[next_sub];
            driven
                .validation_mut()
                .gateway_mut()
                .submit(tx.clone(), SimTime::from_millis(*at_ms))
                .expect("scheduled light submission admits");
            next_sub += 1;
        }
        {
            let mut accept = accept.lock().unwrap();
            for (j, inbox) in accept.iter_mut().enumerate() {
                for t in inbox.drain(..) {
                    driven.gossip_mut(j).add_transport(t, now);
                }
            }
        }
        driven.step(now);
        loop_rounds += 1;

        let workload_done = next_tx == workload.txs.len()
            && next_ev == workload.events.len()
            && next_sub == submissions.len();
        if workload_done
            && fleet_matches_oracle(&driven, &oracle_tangle, &oracle_ledger, events_total, cfg.max_ms)
        {
            out.converged = true;
            out.converged_ms = now;
            break;
        }
        now += cfg.step_ms.max(1);
    }
    out.rounds = match &driven {
        Driven::Tick { .. } => loop_rounds,
        Driven::Event { el, .. } => el.wakeups(),
    };

    if !out.converged {
        return out;
    }

    // Role claim 2: the validation node's replay must equal its live
    // ledger device-for-device, bit-for-bit.
    match driven.validation().verify_replay(SimTime::from_millis(cfg.max_ms)) {
        Ok(devices) => {
            out.replay_ok = true;
            out.replay_devices = devices;
        }
        Err(_) => out.replay_ok = false,
    }

    // The cross-driver digest, taken before the probe phase adds any
    // more polls: same seed under tick loop and event loop must agree
    // on every entry.
    out.fingerprint =
        fleet_fingerprint(driven.archival(), &oracle_tangle, &oracle_ledger, cfg.max_ms);

    // Role claim 3: every byte over the TCP socket equals the in-process
    // oracle rendering. The probe thread does blocking one-shot requests
    // while this thread keeps the reactor polled at frozen virtual time.
    let probes = probe_requests(
        &Workload { tangle: oracle_tangle, ledger: oracle_ledger, txs: vec![], events: vec![] },
        &lights,
    );
    {
        let addr =
            driven.archival().http_addr().expect("http addr").expect("http enabled");
        let reqs = probes.clone();
        let worker = std::thread::spawn(move || -> Vec<Vec<u8>> {
            reqs.iter()
                .map(|req| {
                    let target = if req.query.is_empty() {
                        req.path.clone()
                    } else {
                        format!("{}?{}", req.path, req.query)
                    };
                    let mut stream = std::net::TcpStream::connect(addr).expect("probe connect");
                    stream
                        .write_all(
                            format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n")
                                .as_bytes(),
                        )
                        .expect("probe write");
                    let mut body = Vec::new();
                    stream.read_to_end(&mut body).expect("probe read");
                    body
                })
                .collect()
        });
        while !worker.is_finished() {
            driven.probe_step(now);
        }
        let answers = worker.join().expect("probe thread");
        out.http_probes = probes.len();
        for (req, got) in probes.iter().zip(answers.iter()) {
            if *got != driven.archival().oracle_response(req) {
                out.http_mismatches += 1;
            }
        }
    }
    driven.archival_mut().checkpoint().expect("archival checkpoint");
    out
}

/// Driver-invariant digest of the converged fleet, read off the archival
/// node (every other member already matched the oracle bit-for-bit by
/// the time this runs): sorted tips, cumulative weights in oracle order,
/// per-device credit bit patterns at the fixed probe instant, and SHA-256
/// hashes of the archival endpoint's rendered bytes for canonical
/// requests. Deliberately excludes anything scheduling-dependent —
/// attach times, `/v1/health`'s clock, gossip frame counters.
fn fleet_fingerprint(
    archival: &ArchivalNode,
    oracle_tangle: &Tangle,
    oracle_ledger: &CreditLedger,
    probe_ms: u64,
) -> Vec<String> {
    let hex = |b: &[u8]| biot_crypto::sha256::to_hex(b);
    // `Tangle::iter` walks a hash map — per-instance order. Sort so the
    // digest depends on fleet *state*, never on iteration accidents.
    let mut oracle_ids: Vec<TxId> = oracle_tangle.iter().map(|tx| tx.id()).collect();
    oracle_ids.sort_unstable_by_key(|id| *id.as_bytes());
    let mut fp = Vec::new();
    {
        let t = archival.gossip().tangle().lock().unwrap();
        let mut tips: Vec<String> =
            t.tips_iter().map(|id| hex(id.as_bytes())).collect();
        tips.sort_unstable();
        fp.push(format!("tips:{}", tips.join(",")));
        for id in &oracle_ids {
            fp.push(format!("w:{}:{}", hex(id.as_bytes()), t.cumulative_weight(id)));
        }
    }
    let probe = SimTime::from_millis(probe_ms);
    let mut subjects: Vec<NodeId> = oracle_ledger.known_nodes().copied().collect();
    subjects.sort_unstable_by_key(|n| n.0);
    for nid in &subjects {
        let c = archival.credits().credit_of(*nid, probe);
        fp.push(format!(
            "c:{}:{:016x}:{:016x}:{:016x}",
            hex(nid.as_bytes()),
            c.positive.to_bits(),
            c.negative.to_bits(),
            c.combined.to_bits(),
        ));
    }
    let mut http_reqs: Vec<(String, String)> = oracle_ids
        .iter()
        .take(3)
        .map(|id| (format!("/v1/weight/{}", hex(id.as_bytes())), String::new()))
        .collect();
    for nid in &subjects {
        http_reqs
            .push((format!("/v1/credit/{}", hex(nid.as_bytes())), format!("at_ms={probe_ms}")));
    }
    for (path, query) in http_reqs {
        let req = Request { method: "GET".into(), path: path.clone(), query, keep_alive: false };
        let bytes = archival.oracle_response(&req);
        fp.push(format!("h:{}:{}", path, hex(&biot_crypto::sha256::sha256(&bytes))));
    }
    fp
}

/// Bit-for-bit check across the mixed fleet: every gossip tangle (and
/// the validation gateway's internal one) equals the oracle; every
/// ledger knows every event and agrees on every breakdown.
fn fleet_matches_oracle(
    driven: &Driven,
    oracle_tangle: &Tangle,
    oracle_ledger: &CreditLedger,
    events_total: u64,
    probe_ms: u64,
) -> bool {
    let want_len = oracle_tangle.len();
    let want_tips = oracle_tangle.tips();
    let oracle_ids: Vec<TxId> = oracle_tangle.iter().map(|tx| tx.id()).collect();
    let probe = SimTime::from_millis(probe_ms);
    let subjects: Vec<NodeId> = oracle_ledger.known_nodes().copied().collect();
    let ledger_matches = |ledger: &CreditLedger| {
        ledger.events_applied() == events_total
            && subjects.iter().all(|&nid| {
                let a = oracle_ledger.credit_of(nid, probe);
                let b = ledger.credit_of(nid, probe);
                a.positive == b.positive && a.negative == b.negative && a.combined == b.combined
            })
    };
    let tangle_matches = |t: &Tangle| {
        t.len() == want_len
            && t.tips() == want_tips
            && oracle_ids
                .iter()
                .all(|id| t.cumulative_weight(id) == oracle_tangle.cumulative_weight(id))
    };
    for i in 0..driven.len() {
        let view = driven.view(i);
        if view.gossip.pending_len() != 0 {
            return false;
        }
        if !tangle_matches(&view.gossip.tangle().lock().unwrap()) {
            return false;
        }
        if !ledger_matches(view.ledger) {
            return false;
        }
        // The validation gateway's *internal* tangle must match too —
        // the mirror is the validation role's whole job.
        if let Some(gateway_tangle) = view.gateway_tangle {
            if !tangle_matches(gateway_tangle) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RolesConfig {
        RolesConfig {
            nodes: 16,
            degree: 6,
            txs: 80,
            credit_events: 24,
            light_clients: 2,
            light_txs_each: 4,
            ..RolesConfig::default()
        }
    }

    #[test]
    fn mixed_role_fleet_converges_and_http_matches_oracle() {
        let out = run_roles(&small());
        assert!(out.converged, "mixed-role fleet must converge: {out:?}");
        assert!(out.replay_ok, "validation replay diverged: {out:?}");
        assert!(out.replay_devices >= 3, "manager + both lights have credit: {out:?}");
        assert_eq!(out.light_txs, 8);
        assert!(out.http_probes >= 10);
        assert_eq!(out.http_mismatches, 0, "socket bytes must equal oracle: {out:?}");
    }

    #[test]
    fn seeded_mixed_role_runs_are_identical() {
        let a = run_roles(&small());
        let b = run_roles(&small());
        assert_eq!(a, b, "same seed, same mixed fleet, same report");
    }

    #[test]
    fn event_loop_driver_matches_tick_loop_bit_for_bit() {
        let tick = run_roles(&small());
        let event = run_roles(&RolesConfig { driver: RolesDriver::EventLoop, ..small() });
        assert!(tick.converged, "tick-loop fleet must converge: {tick:?}");
        assert!(event.converged, "event-loop fleet must converge: {event:?}");
        assert!(event.replay_ok, "event-loop replay diverged");
        assert_eq!(event.http_mismatches, 0, "event-loop socket bytes must equal oracle");
        assert!(!tick.fingerprint.is_empty());
        assert_eq!(
            tick.fingerprint, event.fingerprint,
            "tick loop and event loop must produce bit-identical fleets"
        );
        assert!(
            event.rounds < tick.rounds * 4,
            "deadline-hopping must not explode the wake count: {} vs {} ticks",
            event.rounds,
            tick.rounds
        );
    }
}
