//! Wireless factory floor: sensors reach their gateway over multi-hop
//! relay topologies, not flat links.
//!
//! The paper's testbed wires one Raspberry Pi to one PC; a real smart
//! factory has racks of sensors relaying through each other to a handful
//! of gateways. This module drives the Fig 6 workflow over an explicit
//! [`Topology`] with per-hop latency, measuring end-to-end submission
//! latency and what relay failures do to reachability.

use biot_core::difficulty::InverseProportionalPolicy;
use biot_core::identity::Account;
use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager};
use biot_net::network::{Envelope, NodeAddr};
use biot_net::queue::EventQueue;
use biot_net::time::SimTime;
use biot_net::topology::{RoutedNetwork, Topology};
use biot_tangle::tx::Transaction;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a wireless-floor run.
#[derive(Clone, Debug)]
pub struct WirelessConfig {
    /// Sensors per relay chain.
    pub sensors_per_chain: usize,
    /// Number of relay chains hanging off the gateway.
    pub chains: usize,
    /// Per-hop one-way latency, ms.
    pub hop_latency_ms: u64,
    /// Virtual run length.
    pub duration: SimTime,
    /// Reading cadence per sensor, ms.
    pub report_interval_ms: u64,
    /// Relay (chain position 0) to fail mid-run, if any: (chain, time).
    pub fail_relay_at: Option<(usize, SimTime)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WirelessConfig {
    fn default() -> Self {
        Self {
            sensors_per_chain: 3,
            chains: 2,
            hop_latency_ms: 8,
            duration: SimTime::from_secs(60),
            report_interval_ms: 5_000,
            fail_relay_at: None,
            seed: 13,
        }
    }
}

/// Result of a wireless-floor run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WirelessResult {
    /// Readings accepted on the ledger.
    pub accepted: u64,
    /// Submissions that never reached the gateway (no route).
    pub unreachable: u64,
    /// Mean network latency of delivered submissions, ms.
    pub mean_delivery_ms: f64,
    /// Worst delivered latency, ms (the deepest sensor).
    pub max_delivery_ms: u64,
    /// Ledger length at the end.
    pub ledger_len: usize,
}

enum Event {
    Tick { sensor: usize },
    Deliver { tx: Box<Transaction>, sent_at: SimTime },
}

/// Runs the wireless-floor scenario: the gateway sits at address 0; each
/// chain `c` is `gateway — relay — sensor1 — sensor2 — …`, so sensor `k`
/// in a chain is `k + 2` hops from the gateway... (relay counts as one
/// hop, each sensor one more).
pub fn run_wireless(config: &WirelessConfig) -> WirelessResult {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- Ledger-side boot -------------------------------------------------
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(InverseProportionalPolicy::default()),
        GatewayConfig::default(),
    );
    let genesis = gateway.init_genesis(SimTime::ZERO);
    let n_sensors = config.sensors_per_chain * config.chains;
    let sensors: Vec<LightNode> = (0..n_sensors)
        .map(|_| LightNode::new(Account::generate(&mut rng)))
        .collect();
    for s in &sensors {
        let id = manager.register_device(s.public_key().clone());
        manager.authorize(id);
        gateway.register_pubkey(s.public_key().clone());
    }
    let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
    gateway.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

    // --- Topology: gateway(0) — relay(c) — sensors… ------------------------
    let gateway_addr = NodeAddr(0);
    let relay_addr = |c: usize| NodeAddr(1 + c as u32);
    let sensor_addr =
        |i: usize| NodeAddr(1 + config.chains as u32 + i as u32);
    let mut topo = Topology::new();
    for c in 0..config.chains {
        topo.add_link(gateway_addr, relay_addr(c), config.hop_latency_ms);
        // Sensors of chain c hang off the relay in a line.
        let mut prev = relay_addr(c);
        for k in 0..config.sensors_per_chain {
            let idx = c * config.sensors_per_chain + k;
            topo.add_link(prev, sensor_addr(idx), config.hop_latency_ms);
            prev = sensor_addr(idx);
        }
    }
    let mut net: RoutedNetwork<Event> = RoutedNetwork::new(topo);
    let mut queue: EventQueue<Envelope<Event>> = EventQueue::new();

    // First ticks, staggered.
    for i in 0..n_sensors {
        queue.schedule_in(
            (i as u64 + 1) * 300,
            Envelope {
                from: sensor_addr(i),
                to: sensor_addr(i),
                msg: Event::Tick { sensor: i },
            },
        );
    }

    let mut result = WirelessResult::default();
    let mut relay_failed = false;
    let mut latency_total = 0u64;
    let mut delivered = 0u64;
    let duration_ms = config.duration.as_millis();

    while let Some((now, env)) = queue.pop() {
        if now.as_millis() > duration_ms {
            break;
        }
        if let Some((chain, at)) = config.fail_relay_at {
            if !relay_failed && now >= at {
                relay_failed = true;
                net.topology_mut().fail_node(relay_addr(chain));
            }
        }
        match env.msg {
            Event::Tick { sensor } => {
                // Mine locally (the sensor holds its latest known tips via
                // a prior poll; here we query directly for simplicity —
                // the latency we model is the submission path).
                if let Some(tips) = gateway.random_tips(&mut rng) {
                    let d = gateway.difficulty_for(sensors[sensor].id(), now);
                    let p = sensors[sensor].prepare_reading(
                        format!("s{sensor}@{now}").as_bytes(),
                        tips,
                        now,
                        d,
                        &mut rng,
                    );
                    if !net.send(
                        &mut queue,
                        sensor_addr(sensor),
                        gateway_addr,
                        Event::Deliver {
                            tx: Box::new(p.tx),
                            sent_at: now,
                        },
                    ) {
                        result.unreachable += 1;
                    }
                }
                queue.schedule_in(
                    config.report_interval_ms,
                    Envelope {
                        from: sensor_addr(sensor),
                        to: sensor_addr(sensor),
                        msg: Event::Tick { sensor },
                    },
                );
            }
            Event::Deliver { tx, sent_at } => {
                let latency = now.millis_since(sent_at);
                latency_total += latency;
                delivered += 1;
                result.max_delivery_ms = result.max_delivery_ms.max(latency);
                if gateway.submit(*tx, now).is_ok() {
                    result.accepted += 1;
                }
            }
        }
    }
    result.mean_delivery_ms = if delivered > 0 {
        latency_total as f64 / delivered as f64
    } else {
        0.0
    };
    result.ledger_len = gateway.tangle().len();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_sensors_pay_more_latency() {
        let r = run_wireless(&WirelessConfig::default());
        assert!(r.accepted > 20, "accepted {}", r.accepted);
        assert_eq!(r.unreachable, 0);
        // Nearest sensor: 2 hops (16 ms); deepest: 4 hops (32 ms).
        assert!(r.mean_delivery_ms > 16.0 && r.mean_delivery_ms < 32.0,
            "mean {}", r.mean_delivery_ms);
        assert_eq!(r.max_delivery_ms, 32);
    }

    #[test]
    fn relay_failure_cuts_off_its_chain() {
        let r = run_wireless(&WirelessConfig {
            fail_relay_at: Some((0, SimTime::from_secs(20))),
            ..WirelessConfig::default()
        });
        assert!(r.unreachable > 0, "chain 0 sensors become unreachable");
        assert!(r.accepted > 10, "chain 1 keeps reporting");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_wireless(&WirelessConfig::default());
        let b = run_wireless(&WirelessConfig::default());
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.mean_delivery_ms, b.mean_delivery_ms);
    }
}
