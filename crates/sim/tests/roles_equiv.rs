//! Seeded equivalence suite: the blocking event-loop runtime and the
//! legacy tick loop must produce **bit-identical** mixed-role fleets —
//! same tips, same cumulative weights, same per-device credit bit
//! patterns, same HTTP oracle bytes — across randomized seeds. The tick
//! loop is kept precisely to serve as this oracle.

use biot_sim::roles::{run_roles, RolesConfig, RolesDriver};
use proptest::prelude::*;

fn small(seed: u64, driver: RolesDriver) -> RolesConfig {
    RolesConfig {
        nodes: 8,
        degree: 4,
        txs: 30,
        payload_bytes: 32,
        credit_events: 10,
        light_clients: 1,
        light_txs_each: 3,
        seed,
        driver,
        ..RolesConfig::default()
    }
}

proptest! {
    // Each case is two full fleet runs (TCP probes included); keep the
    // count low — coverage comes from seed diversity across CI runs of
    // the sibling fixed-seed test, not volume here.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn event_loop_fleets_are_bit_identical_to_tick_loop(seed in 0u64..10_000) {
        let tick = run_roles(&small(seed, RolesDriver::TickLoop));
        let event = run_roles(&small(seed, RolesDriver::EventLoop));
        prop_assert!(tick.converged, "tick-loop fleet must converge (seed {seed})");
        prop_assert!(event.converged, "event-loop fleet must converge (seed {seed})");
        prop_assert!(tick.replay_ok && event.replay_ok, "replay diverged (seed {seed})");
        prop_assert_eq!(tick.http_mismatches, 0);
        prop_assert_eq!(event.http_mismatches, 0);
        prop_assert!(!tick.fingerprint.is_empty());
        prop_assert_eq!(&tick.fingerprint, &event.fingerprint,
            "drivers disagree on fleet state (seed {})", seed);
    }
}
