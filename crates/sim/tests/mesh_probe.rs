//! Knob-sweep probe for the mesh runner. `#[ignore]`d: run on demand
//! with `cargo test -p biot-sim --release probe -- --ignored --nocapture`
//! when retuning [`MeshConfig`] defaults.

use biot_sim::mesh::{run_mesh, MeshConfig};

#[test]
#[ignore]
fn probe() {
    for fanout in [0usize, 6, 5, 4] {
        for nodes in [16usize, 100] {
            let out = run_mesh(&MeshConfig {
                nodes,
                fanout,
                peer_exchange_ms: 30_000,
                ..MeshConfig::default()
            });
            let per = |v: u64| v as f64 / nodes as f64 / out.txs as f64;
            println!(
                "fanout={fanout} nodes={nodes}: {:.0} B/node/tx conv={}@{}ms | \
                 payloads/ntx={:.2} ids/ntx={:.2} digests/ntx={:.2} reqs/ntx={:.2} credit/ntx={:.2} ckeys/ntx={:.2}",
                out.bytes_per_node_per_tx,
                out.converged,
                out.converged_ms,
                per(out.tx_payloads_sent),
                per(out.digest_ids_sent),
                per(out.digests_sent),
                per(out.requests_sent),
                per(out.credit_events_sent),
                per(out.credit_keys_sent),
            );
        }
    }
}
