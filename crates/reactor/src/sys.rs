//! Raw Linux `epoll` syscalls, invoked directly via inline assembly.
//!
//! The build environment is fully offline — no `libc`, no `mio` — so the
//! reactor talks to the kernel itself. Only the four calls the reactor
//! needs are wrapped, on the two ABIs we target (x86-64 and aarch64);
//! other platforms never compile this module and fall back to
//! [`crate::ScanPoller`].
//!
//! Everything here follows the kernel ABI documented in
//! `man epoll_ctl(2)` / `man syscall(2)`: arguments in registers, return
//! value negative-errno on failure.

use std::io;
use std::os::fd::RawFd;

/// Interest/readiness bit: fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// Interest/readiness bit: fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness bit: error condition (always reported, never registered).
pub const EPOLLERR: u32 = 0x008;
/// Readiness bit: hangup (always reported, never registered).
pub const EPOLLHUP: u32 = 0x010;
/// Interest/readiness bit: peer shut down its write side.
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: add an fd to the interest set.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: remove an fd from the interest set.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an fd's registered interest.
pub const EPOLL_CTL_MOD: i32 = 3;

/// `EPOLL_CLOEXEC` for `epoll_create1`.
const EPOLL_CLOEXEC: usize = 0x80000;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const CLOSE: usize = 3;
    pub const LISTEN: usize = 50;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;
    pub const LISTEN: usize = 201;
}

/// One readiness record, kernel layout. x86-64 packs it (4-byte aligned
/// u64); every other architecture uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLL*`).
    pub events: u32,
    /// Caller cookie — the reactor stores its connection token here.
    pub data: u64,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Field accesses on a packed struct go through copies.
        f.debug_struct("EpollEvent")
            .field("events", &self.bits())
            .field("data", &self.cookie())
            .finish()
    }
}

impl EpollEvent {
    /// Readiness bits, copied out (the struct may be packed).
    pub fn bits(&self) -> u32 {
        let e = *self;
        e.events
    }

    /// The caller cookie, copied out (the struct may be packed).
    pub fn cookie(&self) -> u64 {
        let e = *self;
        e.data
    }
}

/// Issues a 6-argument syscall.
///
/// # Safety
///
/// The caller must uphold the kernel contract for syscall `n`: pointer
/// arguments must reference live memory of the size the call expects for
/// the full duration of the call.
#[inline]
unsafe fn syscall6(n: usize, a0: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
    let ret: isize;
    #[cfg(target_arch = "x86_64")]
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a0,
        in("rsi") a1,
        in("rdx") a2,
        in("r10") a3,
        in("r8") a4,
        in("r9") a5,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    #[cfg(target_arch = "aarch64")]
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a0 as isize => ret,
        in("x1") a1,
        in("x2") a2,
        in("x3") a3,
        in("x4") a4,
        in("x5") a5,
        options(nostack),
    );
    ret
}

/// Converts a raw syscall return into an `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// Creates a close-on-exec epoll instance.
///
/// # Errors
///
/// Kernel failures (fd exhaustion).
pub fn epoll_create1() -> io::Result<RawFd> {
    // SAFETY: no pointer arguments.
    let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
    check(ret).map(|fd| fd as RawFd)
}

/// Adds, modifies, or removes `fd` in the interest set of `epfd`.
///
/// # Errors
///
/// Kernel failures (`EEXIST`, `ENOENT`, `EBADF`, …).
pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, cookie: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: cookie };
    // SAFETY: `ev` outlives the call; the kernel reads it only for
    // ADD/MOD and ignores the pointer for DEL (passing it is still valid
    // on every kernel since 2.6.9).
    let ret = unsafe {
        syscall6(
            nr::EPOLL_CTL,
            epfd as usize,
            op as usize,
            fd as usize,
            std::ptr::from_mut(&mut ev) as usize,
            0,
            0,
        )
    };
    check(ret).map(|_| ())
}

/// Waits for readiness on `epfd`, filling `events`. Returns the number
/// of records filled; `timeout_ms < 0` blocks indefinitely, `0` returns
/// immediately. An interrupting signal reports as zero events.
///
/// # Errors
///
/// Kernel failures other than `EINTR`.
pub fn epoll_wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    if events.is_empty() {
        return Ok(0);
    }
    // SAFETY: `events` is a live, writable slice for the whole call; the
    // kernel writes at most `events.len()` records. epoll_pwait with a
    // null sigmask is exactly epoll_wait (which aarch64 does not have).
    let ret = unsafe {
        syscall6(
            nr::EPOLL_PWAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize,
            0,
            8, // sigsetsize, ignored for a null mask but validated by some kernels
        )
    };
    match check(ret) {
        Ok(n) => Ok(n),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
        Err(e) => Err(e),
    }
}

/// Re-issues `listen(2)` on an already-listening socket to deepen its
/// accept backlog (the kernel caps at `net.core.somaxconn`). The std
/// library hardcodes a backlog of 128, which a fleet of a thousand
/// devices dialing at once overflows — dropped SYNs then stall each
/// affected client for a full retransmission timeout.
///
/// # Errors
///
/// Kernel failures (`EBADF`, `ENOTSOCK`, …).
pub fn listen(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: no pointer arguments.
    let ret = unsafe { syscall6(nr::LISTEN, fd as usize, backlog as usize, 0, 0, 0, 0) };
    check(ret).map(|_| ())
}

/// Closes an fd owned by the reactor (the epoll fd itself).
pub fn close(fd: RawFd) {
    // SAFETY: no pointer arguments; double-close is the caller's bug and
    // at worst returns EBADF, which we ignore by design here.
    let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_listener_readable_on_connect() {
        let ep = epoll_create1().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        epoll_ctl(ep, EPOLL_CTL_ADD, listener.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::default(); 8];
        assert_eq!(epoll_wait(ep, &mut events, 0).unwrap(), 0, "idle listener");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll_wait(ep, &mut events, 5_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].cookie(), 42);
        assert_ne!(events[0].bits() & EPOLLIN, 0);

        epoll_ctl(ep, EPOLL_CTL_DEL, listener.as_raw_fd(), 0, 0).unwrap();
        close(ep);
    }

    #[test]
    fn epoll_mod_changes_interest() {
        let ep = epoll_create1().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // Writable-only interest on an idle socket: EPOLLOUT fires.
        epoll_ctl(ep, EPOLL_CTL_ADD, server.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let mut events = [EpollEvent::default(); 8];
        let n = epoll_wait(ep, &mut events, 5_000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].bits() & EPOLLOUT, 0);

        // Switch to read-only interest: no event until the peer writes.
        epoll_ctl(ep, EPOLL_CTL_MOD, server.as_raw_fd(), EPOLLIN, 7).unwrap();
        assert_eq!(epoll_wait(ep, &mut events, 0).unwrap(), 0);
        client.write_all(b"ping").unwrap();
        let n = epoll_wait(ep, &mut events, 5_000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].bits() & EPOLLIN, 0);
        close(ep);
    }
}
