//! # biot-reactor
//!
//! The shared readiness reactor: who is worth reading *right now*?
//!
//! A [`Poller`] owns the mapping from raw socket fds to caller tokens
//! and answers one question per tick: which registered sockets are ready
//! for the interest we declared. Two implementations:
//!
//! * [`EpollPoller`] — the kernel's answer via `epoll` ([`sys`]),
//!   O(ready) per tick. One syscall replaces N speculative reads.
//! * [`ScanPoller`] — no kernel help: every registered fd is reported
//!   ready every tick and the caller's non-blocking reads discover the
//!   truth. This is exactly the per-connection poll loop the gossip layer
//!   uses (PR 4), kept both as the portable fallback and as the measured
//!   **naive baseline** in `results/BENCH_ingest.json`.
//!
//! Both are level-triggered: unconsumed readiness is reported again next
//! tick, so a bounded per-tick read budget never loses data.
//!
//! Extracted from `biot-ingest` (PR 9) so the ingestion front end and the
//! archival node's HTTP query endpoint (`biot-node`) drive their sockets
//! through one readiness loop; `biot_ingest::reactor` re-exports
//! everything here, so existing callers are unaffected.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io;
use std::os::fd::RawFd;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub mod sys;

pub mod time;

pub use time::{Clock, DeadlineQueue, VirtualClock, WallClock};

/// What a registration wants to hear about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes (or a pending accept) to read.
    pub readable: bool,
    /// Wake when the fd can accept more outbound bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest — a paused reader still draining its acks.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Both directions.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };
    /// Neither direction (parked: registered but silent).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The token given at registration.
    pub token: usize,
    /// The fd is readable (data, pending accept, EOF, or error).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the socket errored (`EPOLLHUP`/`EPOLLERR`).
    /// The kernel reports these regardless of the registered interest,
    /// so even a parked (zero-interest) fd gets them — the caller must
    /// reap such connections instead of ignoring the event, or a dead
    /// parked socket re-fires every tick. Always `false` for the scan
    /// poller, whose reads discover failures in-band.
    pub hangup: bool,
}

/// Which poller implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PollerKind {
    /// Kernel readiness via `epoll` — O(ready) dispatch. Falls back to
    /// [`PollerKind::Scan`] where the syscalls are unavailable.
    #[default]
    Epoll,
    /// Level-triggered scan over every registered fd — O(n) dispatch,
    /// the naive per-connection-poll baseline.
    Scan,
}

/// Polls readiness for a set of registered fds.
pub trait Poller: Send {
    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Kernel failures (epoll) — never fails for the scan poller.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Changes the interest of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Kernel failures (epoll) — never fails for the scan poller.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Kernel failures (epoll) — never fails for the scan poller.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Fills `events` with ready fds. Blocks at most `timeout_ms`
    /// (epoll); the scan poller returns immediately, reporting everything
    /// registered — its callers pace themselves.
    ///
    /// # Errors
    ///
    /// Kernel failures (epoll) — never fails for the scan poller.
    fn poll(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()>;

    /// Which implementation this is (for reports).
    fn kind(&self) -> PollerKind;

    /// The poller's own pollable fd, when it has one. An epoll instance
    /// is itself a file: it reads as ready whenever its interest list has
    /// pending events, so an outer loop can nest a whole subsystem's
    /// poller under one top-level `epoll_pwait` by registering this fd
    /// with read interest. `None` for pollers with no kernel backing
    /// (the scan poller) — the outer loop must then poll the subsystem
    /// on a timer instead.
    fn raw_fd(&self) -> Option<RawFd> {
        None
    }
}

/// Builds the requested poller, falling back to [`ScanPoller`] when the
/// platform has no epoll support compiled in.
pub fn build_poller(kind: PollerKind) -> io::Result<Box<dyn Poller>> {
    match kind {
        PollerKind::Scan => Ok(Box::new(ScanPoller::new())),
        PollerKind::Epoll => {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                Ok(Box::new(EpollPoller::new()?))
            }
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            {
                Ok(Box::new(ScanPoller::new()))
            }
        }
    }
}

// --- Scan fallback / naive baseline ------------------------------------------

/// Reports every registered fd as ready for its declared interest, every
/// tick — the caller's non-blocking I/O then discovers which were lying.
/// O(connections) per tick; the measured baseline the reactor beats.
#[derive(Debug, Default)]
pub struct ScanPoller {
    regs: BTreeMap<RawFd, (usize, Interest)>,
}

impl ScanPoller {
    /// An empty scan poller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Poller for ScanPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.regs.insert(fd, (token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.regs.insert(fd, (token, interest));
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.regs.remove(&fd);
        Ok(())
    }

    fn poll(&mut self, events: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
        events.clear();
        events.extend(self.regs.values().filter_map(|&(token, interest)| {
            if !interest.readable && !interest.writable {
                return None;
            }
            Some(Event {
                token,
                readable: interest.readable,
                writable: interest.writable,
                hangup: false,
            })
        }));
        Ok(())
    }

    fn kind(&self) -> PollerKind {
        PollerKind::Scan
    }
}

// --- Epoll reactor ------------------------------------------------------------

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub use epoll_impl::EpollPoller;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod epoll_impl {
    use super::{Event, Interest, Poller, PollerKind};
    use crate::sys;
    use std::io;
    use std::os::fd::RawFd;

    fn bits_of(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    /// Kernel-backed readiness: one `epoll_wait` per tick, dispatching
    /// only sockets with actual news.
    #[derive(Debug)]
    pub struct EpollPoller {
        epfd: RawFd,
        /// Scratch readiness buffer reused across ticks.
        buf: Vec<sys::EpollEvent>,
    }

    impl EpollPoller {
        /// Creates the epoll instance.
        ///
        /// # Errors
        ///
        /// Kernel failures (fd exhaustion).
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                epfd: sys::epoll_create1()?,
                buf: vec![sys::EpollEvent::default(); 1024],
            })
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            sys::close(self.epfd);
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, bits_of(interest), token as u64)
        }

        fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, bits_of(interest), token as u64)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        fn poll(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let n = sys::epoll_wait(self.epfd, &mut self.buf, timeout_ms)?;
            for ev in &self.buf[..n] {
                let bits = ev.bits();
                events.push(Event {
                    token: ev.cookie() as usize,
                    // Errors and hangups surface as readable: the next
                    // non-blocking read reports the failure in-band.
                    readable: bits
                        & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                        != 0,
                    writable: bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                    // Reported even for zero-interest registrations —
                    // the caller's cue to reap a parked dead socket.
                    hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
                });
            }
            // A full buffer means more may be pending: grow so a flood
            // converges to one syscall per tick instead of truncating.
            if n == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, sys::EpollEvent::default());
            }
            Ok(())
        }

        fn kind(&self) -> PollerKind {
            PollerKind::Epoll
        }

        fn raw_fd(&self) -> Option<RawFd> {
            Some(self.epfd)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn poll_collect(p: &mut dyn Poller, timeout_ms: i32) -> Vec<Event> {
        let mut events = Vec::new();
        p.poll(&mut events, timeout_ms).unwrap();
        events
    }

    #[test]
    fn scan_poller_reports_everything_registered() {
        let mut p = ScanPoller::new();
        p.register(10, 1, Interest::READ).unwrap();
        p.register(11, 2, Interest::READ_WRITE).unwrap();
        p.register(12, 3, Interest::NONE).unwrap();
        let evs = poll_collect(&mut p, 0);
        assert_eq!(evs.len(), 2, "parked fds are not reported");
        p.deregister(10).unwrap();
        assert_eq!(poll_collect(&mut p, 0).len(), 1);
    }

    #[test]
    fn default_poller_dispatches_only_ready_sockets() {
        // With epoll available this proves O(ready) dispatch; on scan
        // fallback platforms it degenerates to "reports registered".
        let mut p = build_poller(PollerKind::default()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let mut quiet: Vec<(TcpStream, TcpStream)> = Vec::new();
        for i in 0..8 {
            let c = TcpStream::connect(addr).unwrap();
            let (s, _) = listener.accept().unwrap();
            s.set_nonblocking(true).unwrap();
            p.register(s.as_raw_fd(), i, Interest::READ).unwrap();
            quiet.push((c, s));
        }
        if p.kind() == PollerKind::Epoll {
            assert!(poll_collect(p.as_mut(), 0).is_empty(), "nobody spoke yet");
        }
        quiet[3].0.write_all(b"hi").unwrap();
        quiet[6].0.write_all(b"hi").unwrap();
        let evs = poll_collect(p.as_mut(), 5_000);
        if p.kind() == PollerKind::Epoll {
            let mut tokens: Vec<usize> = evs.iter().map(|e| e.token).collect();
            tokens.sort_unstable();
            assert_eq!(tokens, vec![3, 6], "exactly the ready sockets");
        } else {
            assert_eq!(evs.len(), 8);
        }
    }

    #[test]
    fn epoll_interest_mod_defers_reads() {
        let mut p = build_poller(PollerKind::Epoll).unwrap();
        if p.kind() != PollerKind::Epoll {
            return; // platform fallback — nothing to assert here
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        p.register(server.as_raw_fd(), 9, Interest::READ).unwrap();
        client.write_all(b"backlog").unwrap();
        assert_eq!(poll_collect(p.as_mut(), 5_000).len(), 1);

        // Deferred read interest: data still pending, but parked fds stay
        // silent — exactly how the server pauses a flooding connection.
        p.reregister(server.as_raw_fd(), 9, Interest::NONE).unwrap();
        assert!(poll_collect(p.as_mut(), 50).is_empty());
        p.reregister(server.as_raw_fd(), 9, Interest::READ).unwrap();
        assert_eq!(poll_collect(p.as_mut(), 5_000).len(), 1, "level-triggered: news re-reported");
    }
}
