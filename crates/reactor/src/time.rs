//! Time for event loops: one [`Clock`] trait over wall and virtual time,
//! plus the [`DeadlineQueue`] that turns "check every tick" work into
//! explicit timers.
//!
//! Before this module the codebase threaded three time sources around:
//! `biot-ingest`'s `MonotonicClock` (an `Instant` anchor), the gossip
//! tests' `VirtualClock` (a shared atomic the test advances by hand), and
//! raw `now_ms: u64` arguments plumbed through every `poll` signature.
//! They never meet: runtime code written against one cannot run under
//! another. The [`Clock`] trait collapses them — identical event-loop
//! code blocks on wall time in production and jumps straight to the next
//! deadline under a [`VirtualClock`] in seeded simulations.
//!
//! The [`DeadlineQueue`] is the other half of not spinning: a subsystem
//! that used to compare `now_ms` against private `next_*_ms` fields every
//! tick instead schedules keyed deadlines here, and the owning loop
//! sleeps until `next_deadline()`. Keys are caller-defined and `Ord`;
//! ties at one instant pop in key order, keeping replays deterministic.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone millisecond clock an event loop can run against.
///
/// Implementations are either *wall* clocks (time advances on its own;
/// the loop blocks in the poller to pass it) or *virtual* clocks (time
/// advances only when the driver says so; the loop never blocks and
/// instead jumps to the next deadline).
pub trait Clock {
    /// Current time in milliseconds. Monotone non-decreasing.
    fn now_ms(&self) -> u64;

    /// True when time only moves via [`Clock::advance_to`] — the loop
    /// must not block waiting for it to pass.
    fn is_virtual(&self) -> bool {
        false
    }

    /// Jumps a virtual clock forward to `ms` (no-op on wall clocks,
    /// which cannot be steered). Never moves time backwards.
    fn advance_to(&self, ms: u64) {
        let _ = ms;
    }
}

/// Wall time: milliseconds since construction, backed by [`Instant`].
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose zero is *now*.
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A shared virtual clock in milliseconds. Tests and simulators advance
/// it explicitly; everything holding a clone observes the jump at once.
/// No wall-clock dependence anywhere.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time, ms.
    pub fn now_ms(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Moves time forward.
    pub fn advance(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::SeqCst);
    }

    /// Jumps to an absolute instant (monotone use is the caller's job).
    pub fn set(&self, ms: u64) {
        self.0.store(ms, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        VirtualClock::now_ms(self)
    }

    fn is_virtual(&self) -> bool {
        true
    }

    fn advance_to(&self, ms: u64) {
        self.0.fetch_max(ms, Ordering::SeqCst);
    }
}

/// A deterministic deadline queue: each key holds at most one pending
/// deadline; rescheduling a key moves it. Same-instant deadlines pop in
/// key order, so a seeded replay fires timers in one canonical sequence.
#[derive(Clone, Debug, Default)]
pub struct DeadlineQueue<K: Ord + Copy> {
    due: BTreeSet<(u64, K)>,
    at: BTreeMap<K, u64>,
}

impl<K: Ord + Copy> DeadlineQueue<K> {
    /// An empty queue.
    pub fn new() -> Self {
        Self { due: BTreeSet::new(), at: BTreeMap::new() }
    }

    /// Schedules (or moves) `key` to fire at `at_ms`.
    pub fn schedule(&mut self, key: K, at_ms: u64) {
        if let Some(prev) = self.at.insert(key, at_ms) {
            self.due.remove(&(prev, key));
        }
        self.due.insert((at_ms, key));
    }

    /// Drops `key`'s pending deadline, if any.
    pub fn cancel(&mut self, key: &K) {
        if let Some(prev) = self.at.remove(key) {
            self.due.remove(&(prev, *key));
        }
    }

    /// When `key` currently fires, if scheduled.
    pub fn deadline_of(&self, key: &K) -> Option<u64> {
        self.at.get(key).copied()
    }

    /// The earliest pending deadline across all keys.
    pub fn next_deadline(&self) -> Option<u64> {
        self.due.first().map(|&(at, _)| at)
    }

    /// Pops the earliest key whose deadline is `<= now_ms`, or `None`
    /// when nothing is due yet. Call in a loop to drain everything due.
    pub fn pop_due(&mut self, now_ms: u64) -> Option<K> {
        let &(at, key) = self.due.first()?;
        if at > now_ms {
            return None;
        }
        self.due.pop_first();
        self.at.remove(&key);
        Some(key)
    }

    /// Number of pending deadlines.
    pub fn len(&self) -> usize {
        self.due.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.due.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_not_virtual() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(!c.is_virtual());
        c.advance_to(1_000_000); // no-op, must not steer wall time
        assert!(c.now_ms() < 1_000_000);
    }

    #[test]
    fn virtual_clock_jumps_but_never_rewinds() {
        let c = VirtualClock::new();
        assert!(c.is_virtual());
        Clock::advance_to(&c, 500);
        assert_eq!(Clock::now_ms(&c), 500);
        Clock::advance_to(&c, 100); // backwards jump ignored
        assert_eq!(Clock::now_ms(&c), 500);
        c.advance(50);
        assert_eq!(c.now_ms(), 550);
    }

    #[test]
    fn deadline_queue_pops_in_time_then_key_order() {
        let mut q: DeadlineQueue<u8> = DeadlineQueue::new();
        q.schedule(3, 100);
        q.schedule(1, 100);
        q.schedule(2, 50);
        assert_eq!(q.next_deadline(), Some(50));
        assert_eq!(q.pop_due(49), None, "nothing due yet");
        assert_eq!(q.pop_due(100), Some(2));
        assert_eq!(q.pop_due(100), Some(1), "ties break by key order");
        assert_eq!(q.pop_due(100), Some(3));
        assert_eq!(q.pop_due(100), None);
        assert!(q.is_empty());
    }

    #[test]
    fn reschedule_moves_and_cancel_drops() {
        let mut q: DeadlineQueue<u8> = DeadlineQueue::new();
        q.schedule(1, 100);
        q.schedule(1, 30); // moved earlier, not duplicated
        assert_eq!(q.len(), 1);
        assert_eq!(q.deadline_of(&1), Some(30));
        q.schedule(2, 40);
        q.cancel(&1);
        assert_eq!(q.next_deadline(), Some(40));
        q.cancel(&9); // unknown key: no-op
        assert_eq!(q.pop_due(40), Some(2));
    }
}
