//! The credit projection: [`CreditLedger`] folds a [`CreditEvent`] stream
//! into per-node state and answers Eqns 2–5 incrementally.
//!
//! ## Index vs oracle
//!
//! [`CreditLedger::credit_of`] answers through an index: per-node
//! time-sorted records with **prefix sums** of validation weights (a CrP
//! window query is two binary searches and one subtraction instead of a
//! scan of the full history) and a one-entry **epoch cache** for CrN
//! (batch admissions all query the same `now`, so the misbehaviour scan
//! runs once per (node, now) epoch). [`CreditLedger::credit_of_recount`]
//! recomputes the same quantities with the naive full-history scan of the
//! original `CreditRegistry` and is the bit-for-bit oracle, mirroring the
//! tangle's `cumulative_weight`/`cumulative_weight_recount` pattern.
//!
//! Exactness note: the prefix-sum difference is bit-identical to the
//! sequential window sum whenever every partial sum is exactly
//! representable, which holds for the whole-number weights the gateway
//! grants (attach weight 1, integer cumulative weights ≪ 2⁵³). The CrN
//! paths iterate the identical subsequence in the identical order, so
//! they agree for *any* weights.
//!
//! ## Batch dedup
//!
//! Consecutive validations of the same node at the same instant (a batch
//! submit admitted at one `now`) are **merged into one record** by adding
//! weights, so a burst of N accepted transactions grows the node's
//! history by one record, not N — the old registry's per-query scan over
//! an N-record burst made batch admission quadratic in N.

use crate::event::CreditEvent;
use crate::params::{CreditBreakdown, CreditParams, Misbehavior};
use biot_net::time::SimTime;
use biot_tangle::tx::NodeId;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Per-node projection state.
///
/// `tx_at`/`tx_weight` are parallel arrays sorted by time; `tx_prefix`
/// holds `tx_prefix[i] = Σ tx_weight[..i]` (length `len + 1`).
#[derive(Debug)]
struct NodeState {
    tx_at: Vec<u64>,
    tx_weight: Vec<f64>,
    tx_prefix: Vec<f64>,
    mis: Vec<(u64, Misbehavior)>,
    /// `(now_ms, mis.len(), value)` — valid while both match. A `Mutex`
    /// (never contended: queries behind `&Gateway` touch it serially)
    /// rather than a `Cell` so the ledger stays `Sync` for the gateway's
    /// scoped-thread batch admission.
    crn_cache: Mutex<Option<(u64, usize, f64)>>,
}

impl Clone for NodeState {
    fn clone(&self) -> Self {
        Self {
            tx_at: self.tx_at.clone(),
            tx_weight: self.tx_weight.clone(),
            tx_prefix: self.tx_prefix.clone(),
            mis: self.mis.clone(),
            crn_cache: Mutex::new(*self.crn_cache.lock().unwrap()),
        }
    }
}

impl Default for NodeState {
    fn default() -> Self {
        Self {
            tx_at: Vec::new(),
            tx_weight: Vec::new(),
            tx_prefix: vec![0.0],
            mis: Vec::new(),
            crn_cache: Mutex::new(None),
        }
    }
}

impl NodeState {
    fn rebuild_prefix_from(&mut self, start: usize) {
        self.tx_prefix.truncate(start + 1);
        let mut acc = self.tx_prefix[start];
        for &w in &self.tx_weight[start..] {
            acc += w;
            self.tx_prefix.push(acc);
        }
    }

    fn record_tx(&mut self, at_ms: u64, weight: f64) {
        match self.tx_at.last().copied() {
            // Batch dedup: same node, same instant — accumulate in place.
            Some(last) if last == at_ms => {
                let n = self.tx_weight.len();
                self.tx_weight[n - 1] += weight;
                self.tx_prefix[n] = self.tx_prefix[n - 1] + self.tx_weight[n - 1];
            }
            Some(last) if last <= at_ms => {
                let acc = *self.tx_prefix.last().unwrap() + weight;
                self.tx_at.push(at_ms);
                self.tx_weight.push(weight);
                self.tx_prefix.push(acc);
            }
            None => {
                self.tx_at.push(at_ms);
                self.tx_weight.push(weight);
                self.tx_prefix.push(weight);
            }
            // Out-of-order arrival (reordered gossip): sorted insert and
            // a prefix rebuild from the insertion point.
            Some(_) => {
                let pos = self.tx_at.partition_point(|&a| a <= at_ms);
                self.tx_at.insert(pos, at_ms);
                self.tx_weight.insert(pos, weight);
                self.rebuild_prefix_from(pos);
            }
        }
    }

    fn record_mis(&mut self, at_ms: u64, kind: Misbehavior) {
        match self.mis.last() {
            Some(&(last, _)) if last > at_ms => {
                let pos = self.mis.partition_point(|&(a, _)| a <= at_ms);
                self.mis.insert(pos, (at_ms, kind));
            }
            _ => self.mis.push((at_ms, kind)),
        }
        *self.crn_cache.lock().unwrap() = None;
    }
}

/// The event-sourced credit ledger: a deterministic projection over an
/// append-only [`CreditEvent`] stream.
///
/// Node state lives in a `BTreeMap`, so [`CreditLedger::known_nodes`] and
/// every report iterating it are byte-stable across runs (the old
/// registry's `HashMap` order was not).
///
/// # Examples
///
/// ```
/// use biot_credit::{CreditEvent, CreditLedger, CreditParams, Misbehavior};
/// use biot_net::time::SimTime;
/// use biot_tangle::tx::NodeId;
///
/// let mut ledger = CreditLedger::new(CreditParams::default());
/// let node = NodeId([1; 32]);
/// ledger.record_transaction(node, 2.0, SimTime::from_secs(1));
/// let good = ledger.credit_of(node, SimTime::from_secs(2)).combined;
/// ledger.record_misbehavior(node, Misbehavior::DoubleSpend, SimTime::from_secs(3));
/// let bad = ledger.credit_of(node, SimTime::from_secs(4)).combined;
/// assert!(bad < good);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CreditLedger {
    params: CreditParams,
    nodes: BTreeMap<NodeId, NodeState>,
    events_applied: u64,
}

impl CreditLedger {
    /// Creates an empty ledger with the given parameters.
    pub fn new(params: CreditParams) -> Self {
        Self {
            params,
            nodes: BTreeMap::new(),
            events_applied: 0,
        }
    }

    /// Builds a ledger by replaying an event stream in order.
    pub fn from_events<'a, I>(params: CreditParams, events: I) -> Self
    where
        I: IntoIterator<Item = &'a CreditEvent>,
    {
        let mut ledger = Self::new(params);
        for ev in events {
            ledger.apply(ev);
        }
        ledger
    }

    /// The parameters in force.
    pub fn params(&self) -> &CreditParams {
        &self.params
    }

    /// Folds one event into the projection.
    pub fn apply(&mut self, event: &CreditEvent) {
        match *event {
            CreditEvent::Validated { node, weight, at } => self
                .nodes
                .entry(node)
                .or_default()
                .record_tx(at.as_millis(), weight),
            CreditEvent::Misbehaved { node, kind, at } => self
                .nodes
                .entry(node)
                .or_default()
                .record_mis(at.as_millis(), kind),
        }
        self.events_applied += 1;
    }

    /// Records a validated transaction of `weight` issued by `node` at
    /// `at` (equivalent to applying a [`CreditEvent::Validated`]).
    pub fn record_transaction(&mut self, node: NodeId, weight: f64, at: SimTime) {
        self.apply(&CreditEvent::validated(node, weight, at));
    }

    /// Records a detected misbehaviour by `node` at `at` (equivalent to
    /// applying a [`CreditEvent::Misbehaved`]).
    pub fn record_misbehavior(&mut self, node: NodeId, kind: Misbehavior, at: SimTime) {
        self.apply(&CreditEvent::misbehaved(node, kind, at));
    }

    /// Number of misbehaviours on record for `node`.
    pub fn misbehavior_count(&self, node: NodeId) -> usize {
        self.nodes.get(&node).map(|s| s.mis.len()).unwrap_or(0)
    }

    /// Total events folded into this projection (merged records still
    /// count every applied event).
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Validation records currently held for `node` (after batch dedup
    /// and [`CreditLedger::compact`]); the benchmark's dedup metric.
    pub fn tx_record_count(&self, node: NodeId) -> usize {
        self.nodes.get(&node).map(|s| s.tx_at.len()).unwrap_or(0)
    }

    /// Computes CrP at `now` (Eqn 3) from the prefix-sum index:
    /// transactions inside the latest ΔT window, weights summed, divided
    /// by ΔT in seconds.
    ///
    /// An inactive node (no transactions in the window) scores 0 — the
    /// paper treats it as "not yet trusted" rather than negative.
    pub fn positive_credit(&self, node: NodeId, now: SimTime) -> f64 {
        let Some(state) = self.nodes.get(&node) else {
            return 0.0;
        };
        let now_ms = now.as_millis();
        let window_start = now_ms.saturating_sub(self.params.delta_t_ms);
        let delta_t_secs = self.params.delta_t_ms as f64 / 1000.0;
        let lo = state.tx_at.partition_point(|&a| a < window_start);
        let hi = state.tx_at.partition_point(|&a| a <= now_ms);
        (state.tx_prefix[hi] - state.tx_prefix[lo]) / delta_t_secs
    }

    /// Computes CrN at `now` (Eqn 4): each misbehaviour contributes
    /// `−α(B)·ΔT/(t − t_k)`, with elapsed time floored at
    /// [`CreditParams::min_elapsed_ms`]. The contribution decays but never
    /// disappears. A one-entry per-node cache short-circuits repeated
    /// queries at the same `now` (the batch-admission pattern).
    pub fn negative_credit(&self, node: NodeId, now: SimTime) -> f64 {
        let Some(state) = self.nodes.get(&node) else {
            return 0.0;
        };
        let now_ms = now.as_millis();
        if let Some((cached_now, cached_len, value)) = *state.crn_cache.lock().unwrap() {
            if cached_now == now_ms && cached_len == state.mis.len() {
                return value;
            }
        }
        let value = self.negative_credit_scan(state, now);
        *state.crn_cache.lock().unwrap() = Some((now_ms, state.mis.len(), value));
        value
    }

    fn negative_credit_scan(&self, state: &NodeState, now: SimTime) -> f64 {
        let delta_t_secs = self.params.delta_t_ms as f64 / 1000.0;
        -state
            .mis
            .iter()
            .filter(|&&(at_ms, _)| at_ms <= now.as_millis())
            .map(|&(at_ms, kind)| {
                let elapsed_ms = now
                    .millis_since(SimTime::from_millis(at_ms))
                    .max(self.params.min_elapsed_ms);
                let elapsed_secs = elapsed_ms as f64 / 1000.0;
                self.params.alpha(kind) * delta_t_secs / elapsed_secs
            })
            .sum::<f64>()
    }

    /// Computes the full credit breakdown at `now` (Eqn 2) through the
    /// incremental index.
    pub fn credit_of(&self, node: NodeId, now: SimTime) -> CreditBreakdown {
        let positive = self.positive_credit(node, now);
        let negative = self.negative_credit(node, now);
        CreditBreakdown {
            positive,
            negative,
            combined: self.params.lambda1 * positive + self.params.lambda2 * negative,
        }
    }

    /// The naive Eqn 2–5 recompute: scans the node's full stored history
    /// with no prefix sums and no cache, exactly like the pre-refactor
    /// `CreditRegistry`. This is the test oracle — `credit_of` must match
    /// it bit for bit.
    pub fn credit_of_recount(&self, node: NodeId, now: SimTime) -> CreditBreakdown {
        let positive = match self.nodes.get(&node) {
            None => 0.0,
            Some(state) => {
                let window_start = now.as_millis().saturating_sub(self.params.delta_t_ms);
                let delta_t_secs = self.params.delta_t_ms as f64 / 1000.0;
                state
                    .tx_at
                    .iter()
                    .zip(&state.tx_weight)
                    .filter(|&(&at_ms, _)| at_ms >= window_start && at_ms <= now.as_millis())
                    .map(|(_, &w)| w)
                    .sum::<f64>()
                    / delta_t_secs
            }
        };
        let negative = match self.nodes.get(&node) {
            None => 0.0,
            Some(state) => self.negative_credit_scan(state, now),
        };
        CreditBreakdown {
            positive,
            negative,
            combined: self.params.lambda1 * positive + self.params.lambda2 * negative,
        }
    }

    /// Discards validation records that can no longer influence CrP at or
    /// after `now` (older than ΔT before `now`). Misbehaviour records are
    /// never discarded — their influence never fully decays (§IV-B).
    pub fn compact(&mut self, now: SimTime) {
        let cutoff = now.as_millis().saturating_sub(self.params.delta_t_ms);
        for state in self.nodes.values_mut() {
            let drop = state.tx_at.partition_point(|&a| a < cutoff);
            if drop > 0 {
                state.tx_at.drain(..drop);
                state.tx_weight.drain(..drop);
                // Invariant: tx_prefix[0] is always 0.0, so rebuilding
                // from index 0 re-accumulates the surviving weights.
                state.rebuild_prefix_from(0);
            }
        }
    }

    /// Nodes with any recorded history, in stable (sorted) order.
    pub fn known_nodes(&self) -> impl Iterator<Item = &NodeId> {
        self.nodes.keys()
    }

    /// Reconstructs an event stream equivalent to the current projection:
    /// replaying the returned events into a fresh ledger yields identical
    /// credit for every node at every `now`. Used to re-seed the WAL at a
    /// store checkpoint (bounded by ΔT of validation activity plus the
    /// never-discarded misbehaviour evidence).
    pub fn snapshot_events(&self) -> Vec<CreditEvent> {
        let mut out = Vec::new();
        for (&node, state) in &self.nodes {
            for (&at_ms, &weight) in state.tx_at.iter().zip(&state.tx_weight) {
                out.push(CreditEvent::validated(
                    node,
                    weight,
                    SimTime::from_millis(at_ms),
                ));
            }
            for &(at_ms, kind) in &state.mis {
                out.push(CreditEvent::misbehaved(
                    node,
                    kind,
                    SimTime::from_millis(at_ms),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn node(n: u8) -> NodeId {
        NodeId([n; 32])
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// Asserts indexed == recount for every probe the test cares about.
    fn check(ledger: &CreditLedger, n: NodeId, now: SimTime) -> CreditBreakdown {
        let indexed = ledger.credit_of(n, now);
        let recount = ledger.credit_of_recount(n, now);
        assert_eq!(indexed, recount, "index diverged from oracle at {now:?}");
        indexed
    }

    #[test]
    fn unknown_node_has_zero_credit() {
        let ledger = CreditLedger::new(CreditParams::default());
        let c = check(&ledger, node(1), t(10));
        assert_eq!(c.positive, 0.0);
        assert_eq!(c.negative, 0.0);
        assert_eq!(c.combined, 0.0);
    }

    #[test]
    fn positive_credit_is_weight_over_delta_t() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_transaction(node(1), 3.0, t(5));
        ledger.record_transaction(node(1), 3.0, t(10));
        // CrP = (3+3)/30 = 0.2
        let c = check(&ledger, node(1), t(20));
        assert!((c.positive - 0.2).abs() < 1e-9);
        assert_eq!(c.combined, c.positive); // λ1 = 1, no misbehaviour
    }

    #[test]
    fn transactions_age_out_of_the_window() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_transaction(node(1), 3.0, t(5));
        assert!(ledger.positive_credit(node(1), t(10)) > 0.0);
        // ΔT = 30 s; by t = 36 s the record at 5 s is outside the window.
        assert_eq!(ledger.positive_credit(node(1), t(36)), 0.0);
        check(&ledger, node(1), t(36));
    }

    #[test]
    fn future_records_do_not_count_yet() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_transaction(node(1), 1.0, t(50));
        ledger.record_misbehavior(node(1), Misbehavior::LazyTips, t(60));
        assert_eq!(ledger.positive_credit(node(1), t(10)), 0.0);
        assert_eq!(ledger.negative_credit(node(1), t(10)), 0.0);
        check(&ledger, node(1), t(10));
    }

    #[test]
    fn negative_credit_formula_matches_eqn4() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        // At t = 40 s: elapsed = 30 s, CrN = −1·30/30 = −1.
        let n = ledger.negative_credit(node(1), t(40));
        assert!((n + 1.0).abs() < 1e-9, "got {n}");
        // Combined uses λ2 = 0.5.
        let c = check(&ledger, node(1), t(40));
        assert!((c.combined + 0.5).abs() < 1e-9);
    }

    #[test]
    fn lazy_tips_punished_half_as_much_as_double_spend() {
        let params = CreditParams::default();
        let mut ledger_lazy = CreditLedger::new(params);
        let mut ledger_ds = CreditLedger::new(params);
        ledger_lazy.record_misbehavior(node(1), Misbehavior::LazyTips, t(10));
        ledger_ds.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        let l = ledger_lazy.negative_credit(node(1), t(40));
        let d = ledger_ds.negative_credit(node(1), t(40));
        assert!((l - d / 2.0).abs() < 1e-9, "lazy {l}, double {d}");
    }

    #[test]
    fn fresh_misbehavior_is_severely_punished() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        // Immediately after (elapsed floored at 100 ms): CrN = −1·30/0.1 = −300.
        let n = ledger.negative_credit(node(1), SimTime::from_millis(10_000));
        assert!((n + 300.0).abs() < 1e-6, "got {n}");
    }

    #[test]
    fn punishment_decays_but_never_vanishes() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(0));
        let at_30 = ledger.negative_credit(node(1), t(30));
        let at_300 = ledger.negative_credit(node(1), t(300));
        let at_3000 = ledger.negative_credit(node(1), t(3000));
        assert!(at_30 < at_300 && at_300 < at_3000, "decay is monotone");
        assert!(at_3000 < 0.0, "never reaches zero");
    }

    #[test]
    fn repeated_attacks_accumulate() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        let one = ledger.negative_credit(node(1), t(40));
        ledger.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(40));
        let two = ledger.negative_credit(node(1), t(70));
        assert!(two < one, "second attack deepens the penalty: {two} vs {one}");
    }

    #[test]
    fn lambda_weights_apply() {
        let params = CreditParams {
            lambda1: 2.0,
            lambda2: 4.0,
            ..CreditParams::default()
        };
        let mut ledger = CreditLedger::new(params);
        ledger.record_transaction(node(1), 3.0, t(10));
        ledger.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        let c = check(&ledger, node(1), t(40));
        let expect = 2.0 * c.positive + 4.0 * c.negative;
        assert!((c.combined - expect).abs() < 1e-9);
    }

    #[test]
    fn compact_preserves_credit_semantics() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_transaction(node(1), 3.0, t(5));
        ledger.record_transaction(node(1), 3.0, t(50));
        ledger.record_misbehavior(node(1), Misbehavior::LazyTips, t(5));
        let before = check(&ledger, node(1), t(60));
        ledger.compact(t(60));
        let after = check(&ledger, node(1), t(60));
        assert_eq!(before, after);
        // The old tx record is gone, the misbehaviour remains.
        assert_eq!(ledger.misbehavior_count(node(1)), 1);
        assert_eq!(ledger.tx_record_count(node(1)), 1);
    }

    #[test]
    fn nodes_are_independent() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(10));
        ledger.record_transaction(node(2), 5.0, t(10));
        assert!(check(&ledger, node(1), t(20)).combined < 0.0);
        assert!(check(&ledger, node(2), t(20)).combined > 0.0);
        assert_eq!(ledger.known_nodes().count(), 2);
    }

    #[test]
    fn known_nodes_iterate_in_sorted_order() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        for n in [9u8, 3, 7, 1] {
            ledger.record_transaction(node(n), 1.0, t(1));
        }
        let order: Vec<NodeId> = ledger.known_nodes().copied().collect();
        assert_eq!(order, vec![node(1), node(3), node(7), node(9)]);
    }

    #[test]
    fn same_instant_validations_merge_into_one_record() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        for _ in 0..100 {
            ledger.record_transaction(node(1), 1.0, t(5));
        }
        assert_eq!(ledger.tx_record_count(node(1)), 1);
        assert_eq!(ledger.events_applied(), 100);
        // Semantics unchanged: CrP = 100/30.
        let c = check(&ledger, node(1), t(10));
        assert!((c.positive - 100.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_events_converge_to_the_same_credit() {
        let params = CreditParams::default();
        let events = vec![
            CreditEvent::validated(node(1), 2.0, t(3)),
            CreditEvent::validated(node(1), 1.0, t(9)),
            CreditEvent::misbehaved(node(1), Misbehavior::DoubleSpend, t(6)),
            CreditEvent::validated(node(1), 4.0, t(6)),
        ];
        let forward = CreditLedger::from_events(params, &events);
        let mut reversed = events.clone();
        reversed.reverse();
        let backward = CreditLedger::from_events(params, &reversed);
        for probe in [t(5), t(10), t(20), t(40)] {
            assert_eq!(check(&forward, node(1), probe), check(&backward, node(1), probe));
        }
    }

    #[test]
    fn snapshot_events_replay_to_identical_credit() {
        let mut ledger = CreditLedger::new(CreditParams::default());
        ledger.record_transaction(node(1), 3.0, t(5));
        ledger.record_transaction(node(1), 3.0, t(5));
        ledger.record_transaction(node(2), 7.0, t(12));
        ledger.record_misbehavior(node(1), Misbehavior::DoubleSpend, t(8));
        ledger.compact(t(40));
        let replayed = CreditLedger::from_events(CreditParams::default(), &ledger.snapshot_events());
        for n in [node(1), node(2)] {
            for probe in [t(10), t(40), t(100)] {
                assert_eq!(ledger.credit_of(n, probe), replayed.credit_of(n, probe));
            }
            assert_eq!(ledger.misbehavior_count(n), replayed.misbehavior_count(n));
        }
    }

    // Property test: random event streams interleaved with compact and
    // snapshot/restore cycles; the incremental index must match the
    // naive recount bit for bit at every probe.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn incremental_matches_recount_under_churn(
            ops in proptest::collection::vec(
                (0u8..6, 0u8..4, 0u64..120, 1u32..50),
                1..120,
            ),
        ) {
            let mut ledger = CreditLedger::new(CreditParams::default());
            let mut clock = 0u64;
            for (op, who, dt, weight) in ops {
                clock += dt; // non-decreasing, occasionally repeated instants
                let at = SimTime::from_millis(clock);
                let n = node(who);
                match op {
                    // Weights are whole numbers, as granted by the gateway
                    // (attach weight 1 / integer cumulative weights), so
                    // prefix sums are exact — see the module docs.
                    0 | 1 => ledger.record_transaction(n, weight as f64, at),
                    2 => ledger.record_misbehavior(n, Misbehavior::LazyTips, at),
                    3 => ledger.record_misbehavior(n, Misbehavior::DoubleSpend, at),
                    4 => ledger.compact(at),
                    _ => {
                        // Snapshot/restore cycle: the restored projection
                        // must answer identically from here on.
                        let restored = CreditLedger::from_events(
                            *ledger.params(),
                            &ledger.snapshot_events(),
                        );
                        for m in ledger.known_nodes() {
                            prop_assert_eq!(
                                ledger.credit_of(*m, at),
                                restored.credit_of(*m, at)
                            );
                        }
                        ledger = restored;
                    }
                }
                // Probe present, past, and future instants.
                for probe_ms in [clock, clock.saturating_sub(40_000), clock + 15_000] {
                    let probe = SimTime::from_millis(probe_ms);
                    for m in [node(0), node(1), node(2), node(3)] {
                        let indexed = ledger.credit_of(m, probe);
                        let recount = ledger.credit_of_recount(m, probe);
                        prop_assert_eq!(indexed, recount);
                    }
                }
            }
        }
    }
}
