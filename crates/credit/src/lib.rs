//! # biot-credit
//!
//! The credit model of the paper (§IV-B, Eqns 2–5), refactored as an
//! **event-sourced subsystem**: every credit-relevant fact is a
//! [`event::CreditEvent`] — a validated transaction or a detected
//! misbehaviour — and a node's credit is a *projection* over the
//! append-only stream of those events.
//!
//! ```text
//! Cr_i = λ1·CrP_i + λ2·CrN_i                       (Eqn 2)
//! CrP_i = Σ_{k=1..n_i} w_k / ΔT                    (Eqn 3)
//! CrN_i = − Σ_{k=1..m_i} α(B_k) · ΔT / (t − t_k)   (Eqn 4)
//! α(B)  = α_l for lazy tips, α_d for double-spend  (Eqn 5)
//! ```
//!
//! The paper states that credit "cannot be forged or tampered" because it
//! is a pure function of on-ledger facts. Making the facts first-class
//! events delivers on that: the same event stream can be persisted to a
//! WAL (`biot-store`), relayed to replicas (`biot-gossip`), and replayed
//! into a fresh [`ledger::CreditLedger`] to reproduce the identical
//! credit — so misbehaviour survives restarts and replicas converge on
//! Cr, and therefore on PoW difficulty.
//!
//! ## Layering
//!
//! * [`event`] — [`event::CreditEvent`] and its canonical, versioned,
//!   checksummed byte codec (hardened like the tangle/wire codecs:
//!   truncation and bit-flips are rejected).
//! * [`ledger`] — [`ledger::CreditLedger`], the projection. Queries are
//!   incremental (per-node sliding-window prefix sums for CrP, an
//!   epoch-cached CrN) while the naive Eqn 2–5 scan survives as
//!   [`ledger::CreditLedger::credit_of_recount`], the bit-for-bit test
//!   oracle — the same indexed-vs-recount pattern as the tangle's weight
//!   index and tip selection.
//!
//! ## Example
//!
//! ```
//! use biot_credit::{CreditEvent, CreditLedger, CreditParams, Misbehavior};
//! use biot_net::time::SimTime;
//! use biot_tangle::tx::NodeId;
//!
//! let mut ledger = CreditLedger::new(CreditParams::default());
//! let node = NodeId([1; 32]);
//! ledger.apply(&CreditEvent::validated(node, 2.0, SimTime::from_secs(1)));
//! let good = ledger.credit_of(node, SimTime::from_secs(2)).combined;
//! ledger.apply(&CreditEvent::misbehaved(
//!     node,
//!     Misbehavior::DoubleSpend,
//!     SimTime::from_secs(3),
//! ));
//! let bad = ledger.credit_of(node, SimTime::from_secs(4)).combined;
//! assert!(bad < good);
//!
//! // The projection is replayable: the same events rebuild the same credit.
//! let events = ledger.snapshot_events();
//! let replayed = CreditLedger::from_events(CreditParams::default(), &events);
//! assert_eq!(
//!     replayed.credit_of(node, SimTime::from_secs(4)),
//!     ledger.credit_of(node, SimTime::from_secs(4)),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod ledger;
pub mod params;

pub use event::{decode_event, encode_event, CreditCodecError, CreditEvent};
pub use ledger::CreditLedger;
pub use params::{CreditBreakdown, CreditParams, Misbehavior};
