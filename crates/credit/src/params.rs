//! Parameters and value types of the credit model (Eqns 2 and 5).
//!
//! These types used to live in `biot-core::credit`; they moved here with
//! the event-sourcing refactor so every layer (core, store, gossip, sim,
//! bench) shares one definition. `biot-core::credit` re-exports them for
//! API compatibility.

use serde::{Deserialize, Serialize};

/// Which misbehaviour was detected (Eqn 5's `B`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Misbehavior {
    /// Approving stale tips instead of fresh ones (§III "lazy tips").
    LazyTips,
    /// Attempting to spend the same token twice (§III).
    DoubleSpend,
}

/// Tunable parameters of the credit model.
///
/// Defaults are the paper's (§VI-A): λ1 = 1, λ2 = 0.5, ΔT = 30 s,
/// α_l = 0.5, α_d = 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CreditParams {
    /// Weight of the positive component (λ1).
    pub lambda1: f64,
    /// Weight of the negative component (λ2).
    pub lambda2: f64,
    /// The unit of time ΔT, in virtual milliseconds.
    pub delta_t_ms: u64,
    /// Punishment coefficient for lazy tips (α_l).
    pub alpha_lazy: f64,
    /// Punishment coefficient for double-spending (α_d).
    pub alpha_double_spend: f64,
    /// Floor for `t − t_k` in Eqn 4 (ms), preventing division by zero the
    /// instant a misbehaviour is recorded.
    pub min_elapsed_ms: u64,
}

impl Default for CreditParams {
    fn default() -> Self {
        Self {
            lambda1: 1.0,
            lambda2: 0.5,
            delta_t_ms: 30_000,
            alpha_lazy: 0.5,
            alpha_double_spend: 1.0,
            min_elapsed_ms: 100,
        }
    }
}

impl CreditParams {
    /// The punishment coefficient α(B) for a misbehaviour (Eqn 5).
    pub fn alpha(&self, b: Misbehavior) -> f64 {
        match b {
            Misbehavior::LazyTips => self.alpha_lazy,
            Misbehavior::DoubleSpend => self.alpha_double_spend,
        }
    }
}

/// A credit snapshot: the two components and the combined value (Eqn 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CreditBreakdown {
    /// CrP (Eqn 3).
    pub positive: f64,
    /// CrN (Eqn 4), ≤ 0.
    pub negative: f64,
    /// Cr = λ1·CrP + λ2·CrN.
    pub combined: f64,
}
