//! The credit event stream and its canonical byte codec.
//!
//! A [`CreditEvent`] is one append-only fact about a node's behaviour:
//! either a validated transaction (weight flowing into CrP, Eqn 3) or a
//! detected misbehaviour (a permanent CrN liability, Eqn 4). Everything
//! downstream — the in-memory [`crate::ledger::CreditLedger`], the
//! `biot-store` WAL, the `biot-gossip` `CreditEvents` wire message, the
//! Fig 8 traces — speaks this one type.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! [u8 version = 1]
//! [u8 tag]              0 = Validated, 1 = Misbehaved
//! [32 B node id]
//! [varint at_ms]        LEB128, ≤ 10 bytes
//! tag 0: [8 B weight]   f64 bits, big-endian; must be finite
//! tag 1: [u8 kind]      0 = LazyTips, 1 = DoubleSpend
//! [4 B checksum]        low 32 bits of FNV-1a 64 over all prior bytes
//! ```
//!
//! The codec is hardened like the PR-4 tangle/wire codecs: decoding
//! consumes the whole slice (trailing bytes rejected), every truncated
//! prefix fails, and the trailing checksum makes any single bit-flip a
//! decode error rather than a silently different event.

use crate::params::Misbehavior;
use biot_net::time::SimTime;
use biot_tangle::tx::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Current (and only) codec version byte.
pub const CODEC_VERSION: u8 = 1;

/// Smallest possible encoding: version + tag + node + 1-byte varint +
/// 1-byte kind + checksum. Used by framing layers to bound allocations.
pub const MIN_ENCODED_LEN: usize = 1 + 1 + 32 + 1 + 1 + 4;

/// One append-only credit fact (the paper's "on-ledger facts" of §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CreditEvent {
    /// `node` issued a transaction that was validated with `weight`
    /// (attach-time weight 1, or the cumulative weight granted at
    /// confirmation).
    Validated {
        /// The issuing node.
        node: NodeId,
        /// Validation weight credited (Eqn 3's `w_k`).
        weight: f64,
        /// Virtual time the weight was granted.
        at: SimTime,
    },
    /// `node` was caught misbehaving (Eqn 5's `B_k`).
    Misbehaved {
        /// The offending node.
        node: NodeId,
        /// Which misbehaviour was detected.
        kind: Misbehavior,
        /// Virtual time of detection.
        at: SimTime,
    },
}

impl CreditEvent {
    /// Convenience constructor for a [`CreditEvent::Validated`] event.
    pub fn validated(node: NodeId, weight: f64, at: SimTime) -> Self {
        Self::Validated { node, weight, at }
    }

    /// Convenience constructor for a [`CreditEvent::Misbehaved`] event.
    pub fn misbehaved(node: NodeId, kind: Misbehavior, at: SimTime) -> Self {
        Self::Misbehaved { node, kind, at }
    }

    /// The node the event concerns.
    pub fn node(&self) -> NodeId {
        match self {
            Self::Validated { node, .. } | Self::Misbehaved { node, .. } => *node,
        }
    }

    /// The virtual time the event happened.
    pub fn at(&self) -> SimTime {
        match self {
            Self::Validated { at, .. } | Self::Misbehaved { at, .. } => *at,
        }
    }
}

/// Why a byte slice failed to decode as a [`CreditEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CreditCodecError {
    /// The slice ended before the event did (truncation).
    UnexpectedEnd,
    /// Unknown codec version byte.
    BadVersion(u8),
    /// Unknown event tag byte.
    BadTag(u8),
    /// Unknown misbehaviour kind byte.
    BadKind(u8),
    /// A varint was malformed (too long or overflowing).
    BadVarint,
    /// The weight decoded to NaN or an infinity.
    NonFiniteWeight,
    /// The trailing checksum did not match (corruption / bit-flip).
    BadChecksum,
    /// Bytes remained after a complete event (framing error).
    TrailingBytes,
}

impl fmt::Display for CreditCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd => write!(f, "credit event truncated"),
            Self::BadVersion(v) => write!(f, "unknown credit codec version {v}"),
            Self::BadTag(t) => write!(f, "unknown credit event tag {t}"),
            Self::BadKind(k) => write!(f, "unknown misbehaviour kind {k}"),
            Self::BadVarint => write!(f, "malformed varint in credit event"),
            Self::NonFiniteWeight => write!(f, "non-finite weight in credit event"),
            Self::BadChecksum => write!(f, "credit event checksum mismatch"),
            Self::TrailingBytes => write!(f, "trailing bytes after credit event"),
        }
    }
}

impl std::error::Error for CreditCodecError {}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CreditCodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(CreditCodecError::UnexpectedEnd)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CreditCodecError::BadVarint);
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CreditCodecError::BadVarint);
        }
    }
}

/// Encodes an event in the canonical versioned format.
pub fn encode_event(ev: &CreditEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(MIN_ENCODED_LEN + 16);
    out.push(CODEC_VERSION);
    match ev {
        CreditEvent::Validated { node, weight, at } => {
            out.push(0);
            out.extend_from_slice(&node.0);
            put_varint(&mut out, at.as_millis());
            out.extend_from_slice(&weight.to_bits().to_be_bytes());
        }
        CreditEvent::Misbehaved { node, kind, at } => {
            out.push(1);
            out.extend_from_slice(&node.0);
            put_varint(&mut out, at.as_millis());
            out.push(match kind {
                Misbehavior::LazyTips => 0,
                Misbehavior::DoubleSpend => 1,
            });
        }
    }
    let sum = (fnv1a64(&out) as u32).to_be_bytes();
    out.extend_from_slice(&sum);
    out
}

/// Decodes an event, requiring the slice to contain exactly one event.
pub fn decode_event(buf: &[u8]) -> Result<CreditEvent, CreditCodecError> {
    let mut pos = 0usize;
    let &version = buf.get(pos).ok_or(CreditCodecError::UnexpectedEnd)?;
    pos += 1;
    if version != CODEC_VERSION {
        return Err(CreditCodecError::BadVersion(version));
    }
    let &tag = buf.get(pos).ok_or(CreditCodecError::UnexpectedEnd)?;
    pos += 1;
    let node_bytes = buf
        .get(pos..pos + 32)
        .ok_or(CreditCodecError::UnexpectedEnd)?;
    let mut node = [0u8; 32];
    node.copy_from_slice(node_bytes);
    pos += 32;
    let at_ms = read_varint(buf, &mut pos)?;
    let event = match tag {
        0 => {
            let bits = buf
                .get(pos..pos + 8)
                .ok_or(CreditCodecError::UnexpectedEnd)?;
            pos += 8;
            let weight = f64::from_bits(u64::from_be_bytes(bits.try_into().unwrap()));
            if !weight.is_finite() {
                return Err(CreditCodecError::NonFiniteWeight);
            }
            CreditEvent::Validated {
                node: NodeId(node),
                weight,
                at: SimTime::from_millis(at_ms),
            }
        }
        1 => {
            let &kind = buf.get(pos).ok_or(CreditCodecError::UnexpectedEnd)?;
            pos += 1;
            let kind = match kind {
                0 => Misbehavior::LazyTips,
                1 => Misbehavior::DoubleSpend,
                other => return Err(CreditCodecError::BadKind(other)),
            };
            CreditEvent::Misbehaved {
                node: NodeId(node),
                kind,
                at: SimTime::from_millis(at_ms),
            }
        }
        other => return Err(CreditCodecError::BadTag(other)),
    };
    let body = &buf[..pos];
    let sum = buf
        .get(pos..pos + 4)
        .ok_or(CreditCodecError::UnexpectedEnd)?;
    pos += 4;
    if sum != (fnv1a64(body) as u32).to_be_bytes() {
        return Err(CreditCodecError::BadChecksum);
    }
    if pos != buf.len() {
        return Err(CreditCodecError::TrailingBytes);
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn samples() -> Vec<CreditEvent> {
        vec![
            CreditEvent::validated(NodeId([0; 32]), 1.0, SimTime::ZERO),
            CreditEvent::validated(NodeId([7; 32]), 1234.0, SimTime::from_millis(u64::MAX / 2)),
            CreditEvent::validated(NodeId([0xff; 32]), -3.5, SimTime::from_secs(90)),
            CreditEvent::misbehaved(NodeId([1; 32]), Misbehavior::LazyTips, SimTime::from_secs(1)),
            CreditEvent::misbehaved(
                NodeId([0xab; 32]),
                Misbehavior::DoubleSpend,
                SimTime::from_millis(123_456_789),
            ),
        ]
    }

    #[test]
    fn roundtrip_every_sample() {
        for ev in samples() {
            let bytes = encode_event(&ev);
            assert_eq!(decode_event(&bytes), Ok(ev), "{ev:?}");
        }
    }

    #[test]
    fn truncation_always_errors() {
        for ev in samples() {
            let bytes = encode_event(&ev);
            for cut in 0..bytes.len() {
                assert!(
                    decode_event(&bytes[..cut]).is_err(),
                    "prefix of {cut} bytes decoded for {ev:?}"
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        for ev in samples() {
            let bytes = encode_event(&ev);
            for byte in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[byte] ^= 1 << bit;
                    assert!(
                        decode_event(&bad).is_err(),
                        "bit {bit} of byte {byte} slipped through for {ev:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_event(&samples()[0]);
        bytes.push(0);
        assert_eq!(decode_event(&bytes), Err(CreditCodecError::TrailingBytes));
    }

    #[test]
    fn bad_version_and_tag_rejected() {
        let mut bytes = encode_event(&samples()[0]);
        bytes[0] = 9;
        assert_eq!(decode_event(&bytes), Err(CreditCodecError::BadVersion(9)));
        let mut bytes = encode_event(&samples()[0]);
        bytes[1] = 7;
        // Checksum trips first on a tampered tag; both are rejections.
        assert!(decode_event(&bytes).is_err());
    }

    #[test]
    fn non_finite_weight_rejected() {
        // Hand-build a Validated event with a NaN weight and a *valid*
        // checksum, so the weight check itself is exercised.
        let mut out = vec![CODEC_VERSION, 0];
        out.extend_from_slice(&[2u8; 32]);
        out.push(5); // at_ms = 5
        out.extend_from_slice(&f64::NAN.to_bits().to_be_bytes());
        let sum = (super::fnv1a64(&out) as u32).to_be_bytes();
        out.extend_from_slice(&sum);
        assert_eq!(decode_event(&out), Err(CreditCodecError::NonFiniteWeight));
    }

    #[test]
    fn min_encoded_len_is_tight() {
        let ev = CreditEvent::misbehaved(NodeId([0; 32]), Misbehavior::LazyTips, SimTime::ZERO);
        assert_eq!(encode_event(&ev).len(), MIN_ENCODED_LEN);
        for ev in samples() {
            assert!(encode_event(&ev).len() >= MIN_ENCODED_LEN);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = decode_event(&bytes);
        }

        #[test]
        fn random_events_roundtrip(
            seed in any::<u8>(),
            weight in 0u32..1_000_000,
            at_ms in any::<u64>(),
            kind in 0u8..2,
            is_tx in any::<bool>(),
        ) {
            let node = NodeId([seed; 32]);
            let at = SimTime::from_millis(at_ms);
            let ev = if is_tx {
                CreditEvent::validated(node, weight as f64, at)
            } else {
                let kind = if kind == 0 { Misbehavior::LazyTips } else { Misbehavior::DoubleSpend };
                CreditEvent::misbehaved(node, kind, at)
            };
            let bytes = encode_event(&ev);
            prop_assert_eq!(decode_event(&bytes), Ok(ev));
        }
    }
}
