//! Regression guard for the PR-9 reactor extraction: the items under
//! `biot_ingest::reactor` must be *the same items* as `biot_reactor`'s —
//! not parallel copies — so code written against either path interops
//! freely and the ingest suite is behaviourally unchanged.

use biot_ingest::reactor as via_ingest;

/// A function written against the shared crate's types...
fn count_ready(poller: &mut dyn biot_reactor::Poller) -> usize {
    let mut events: Vec<biot_reactor::Event> = Vec::new();
    poller.poll(&mut events, 0).unwrap();
    events.len()
}

#[test]
fn reexported_types_are_the_same_items() {
    // ...accepts a poller built through the historical ingest path. This
    // compiles only if the trait, Event, Interest, and PollerKind are
    // identical items in both namespaces.
    let mut scan = via_ingest::ScanPoller::new();
    let interest: biot_reactor::Interest = via_ingest::Interest::READ;
    assert_eq!(interest, biot_reactor::Interest::READ);
    via_ingest::Poller::register(&mut scan, 7, 1, interest).unwrap();
    assert_eq!(count_ready(&mut scan), 1);

    let kind: biot_reactor::PollerKind = via_ingest::PollerKind::Scan;
    let mut built = via_ingest::build_poller(kind).unwrap();
    assert_eq!(built.kind(), biot_reactor::PollerKind::Scan);
    assert_eq!(count_ready(built.as_mut()), 0);
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
#[test]
fn sys_reexport_is_the_same_module() {
    // The syscall wrappers moved too; the constants must agree because
    // they are the same consts.
    assert_eq!(biot_ingest::sys::EPOLLIN, biot_reactor::sys::EPOLLIN);
    let ep = biot_ingest::sys::epoll_create1().unwrap();
    biot_reactor::sys::close(ep);
}
