//! End-to-end tests of the ingest reactor over real sockets.
//!
//! Three properties the issue demands proof of:
//!
//! 1. **Equivalence** — what a live server admits is bit-identical to
//!    feeding the same stream into [`Gateway::submit_batch`] directly
//!    (front-end rejections accounted separately, since the gateway
//!    never sees them).
//! 2. **Bounded backpressure** — a client that floods and never reads
//!    its acks cannot grow any server buffer past its cap, and healthy
//!    clients keep admitting while it misbehaves.
//! 3. **Clock agreement** — the virtual-time and monotonic-wall-clock
//!    paths into the rate limiter make identical decisions.

use biot_core::node::Gateway;
use biot_core::ratelimit::{RateLimitConfig, RateLimiter};
use biot_gossip::tcp::MAX_TX_BUFFER_BYTES;
use biot_ingest::clock::simtime_of_elapsed;
use biot_ingest::protocol::{
    decode_server, encode_client, AckCode, AckResult, ClientMsg, ServerMsg,
};
use biot_ingest::{IngestConfig, IngestServer, MonotonicClock};
use biot_net::time::SimTime;
use biot_sim::loadgen::build_world;
use biot_tangle::tx::{NodeId, Transaction};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

// --- Minimal blocking client (independent of the server's transport) ----

fn write_frame(stream: &mut TcpStream, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame fits u32");
    stream.write_all(&len.to_be_bytes()).expect("write len");
    stream.write_all(payload).expect("write payload");
}

fn read_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("read len");
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("read payload");
    payload
}

fn read_ack(stream: &mut TcpStream) -> Vec<AckResult> {
    let ServerMsg::Ack(results) =
        decode_server(&read_frame(stream)).expect("well-formed ack");
    results
}

/// Sends each transaction as its own `SubmitTx` frame and returns the
/// acks, in frame order.
fn submit_one_by_one(addr: SocketAddr, txs: Vec<Transaction>) -> Vec<AckResult> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut acks = Vec::with_capacity(txs.len());
    for tx in txs {
        write_frame(&mut stream, &encode_client(&ClientMsg::SubmitTx(tx)));
        let mut results = read_ack(&mut stream);
        assert_eq!(results.len(), 1, "one result per SubmitTx");
        acks.push(results.remove(0));
    }
    acks
}

/// Polls the server until `done` says every client finished.
fn serve_until_done(
    server: &mut IngestServer,
    gateway: &mut Gateway,
    done: &AtomicUsize,
    clients: usize,
) {
    let clock = MonotonicClock::new();
    while done.load(Ordering::Acquire) < clients {
        server
            .poll(gateway, clock.now(), 1)
            .expect("server poll");
        assert!(
            clock.now() < SimTime::from_secs(60),
            "e2e run wedged: {:?}",
            server.stats()
        );
    }
}

// --- 1. Equivalence ------------------------------------------------------

#[test]
fn server_admissions_bit_identical_to_direct_submit_batch() {
    const CLIENTS: usize = 6;
    const TXS_PER_CLIENT: usize = 5;
    const SEED: u64 = 0xE0_1234;

    let world = build_world(SEED, 3, CLIENTS * TXS_PER_CLIENT);
    let mut gateway = world.gateway;
    let mut server = IngestServer::bind(
        "127.0.0.1:0",
        IngestConfig {
            record_admissions: true,
            // Burst of 2 with (effectively) no refill: deterministically,
            // each connection's first two transactions reach the gateway
            // and the rest bounce at the front end — regardless of
            // scheduling, which is the point.
            rate_limit: Some(RateLimitConfig {
                burst: 2.0,
                per_second: 0.001,
            }),
            ..IngestConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");

    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let txs =
                world.pool[c * TXS_PER_CLIENT..(c + 1) * TXS_PER_CLIENT].to_vec();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let acks = submit_one_by_one(addr, txs);
                done.fetch_add(1, Ordering::Release);
                acks
            })
        })
        .collect();
    serve_until_done(&mut server, &mut gateway, &done, CLIENTS);
    let client_acks: Vec<Vec<AckResult>> =
        handles.into_iter().map(|h| h.join().expect("client")).collect();

    // Front-end accounting: per connection, exactly burst-many got
    // through; the rest were refused without ever reaching the gateway.
    for acks in &client_acks {
        let codes: Vec<AckCode> = acks.iter().map(|a| a.code).collect();
        assert_eq!(
            codes,
            vec![
                AckCode::Accepted,
                AckCode::Accepted,
                AckCode::RateLimited,
                AckCode::RateLimited,
                AckCode::RateLimited,
            ],
            "token bucket admits exactly the burst"
        );
    }
    let log = server.take_admission_log();
    assert_eq!(log.len(), CLIENTS * 2, "only allowed txs reach the gateway");
    let stats = server.stats();
    assert_eq!(stats.txs_rate_limited as usize, CLIENTS * 3);
    assert_eq!(stats.txs_admitted as usize, CLIENTS * 2);

    // Replay the recorded stream through a twin gateway, batched exactly
    // as the server batched it (consecutive entries sharing an instant).
    let mut twin = build_world(SEED, 3, CLIENTS * TXS_PER_CLIENT).gateway;
    let mut i = 0;
    while i < log.len() {
        let now = log[i].1;
        let mut batch = Vec::new();
        let mut j = i;
        while j < log.len() && log[j].1 == now {
            batch.push(log[j].0.clone());
            j += 1;
        }
        let results = twin.submit_batch(batch, now);
        for (k, result) in results.into_iter().enumerate() {
            assert_eq!(
                result,
                log[i + k].2,
                "replayed admission #{} diverged",
                i + k
            );
        }
        i = j;
    }
    assert_eq!(
        twin.stats(),
        gateway.stats(),
        "twin gateway ends in the same state"
    );

    // The accepted ack ids are exactly the logged admissions.
    let mut acked_ids: Vec<_> = client_acks
        .iter()
        .flatten()
        .filter_map(|a| a.id)
        .collect();
    let mut logged_ids: Vec<_> = log
        .iter()
        .map(|(_, _, r)| *r.as_ref().expect("pre-mined txs admit"))
        .collect();
    acked_ids.sort();
    logged_ids.sort();
    assert_eq!(acked_ids, logged_ids);
}

/// A client that pipelines far more frames than `frames_per_tick` and
/// only then starts reading acks. The transport drains the whole kernel
/// buffer into userspace on first contact, so every frame past the
/// budget is invisible to a level-triggered poller — serving them
/// requires the reactor's resume list. Before that fix this deadlocked:
/// the server went silent after the first budget's worth of acks and the
/// client was eventually reaped by the idle sweep.
#[test]
fn pipelined_frames_beyond_tick_budget_all_acked() {
    const FRAMES: usize = 40;
    let world = build_world(0xB1D6E7, 3, FRAMES);
    let mut gateway = world.gateway;
    let mut server = IngestServer::bind(
        "127.0.0.1:0",
        IngestConfig {
            frames_per_tick: 4,
            ..IngestConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");

    let done = Arc::new(AtomicUsize::new(0));
    let txs = world.pool.clone();
    let client_done = Arc::clone(&done);
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        for tx in &txs {
            write_frame(&mut stream, &encode_client(&ClientMsg::SubmitTx(tx.clone())));
        }
        let mut acks = Vec::with_capacity(FRAMES);
        for _ in 0..FRAMES {
            let mut results = read_ack(&mut stream);
            assert_eq!(results.len(), 1, "one result per SubmitTx");
            acks.push(results.remove(0));
        }
        client_done.fetch_add(1, Ordering::Release);
        acks
    });
    serve_until_done(&mut server, &mut gateway, &done, 1);
    let acks = client.join().expect("pipelining client");

    assert!(
        acks.iter().all(|a| a.code == AckCode::Accepted),
        "every pipelined frame acked: {acks:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.frames_in as usize, FRAMES);
    assert_eq!(stats.txs_admitted as usize, FRAMES);
    assert_eq!(stats.conns_timed_out, 0, "nobody starved into the idle sweep");
}

/// Connection churn with rate limiting on: bucket state is keyed by
/// never-reused connection tokens, so without the idle sweep's limiter
/// compaction it would grow with total arrivals, not live connections.
/// Virtual time is driven explicitly so the sweep horizon elapses
/// without wall-clock waits.
#[test]
fn connection_churn_compacts_limiter_buckets() {
    const WAVES: usize = 8;
    const CLIENTS_PER_WAVE: usize = 4;
    let world = build_world(0x11317E6, 3, WAVES * CLIENTS_PER_WAVE);
    let mut gateway = world.gateway;
    let mut server = IngestServer::bind(
        "127.0.0.1:0",
        IngestConfig {
            rate_limit: Some(RateLimitConfig::default()),
            idle_timeout_ms: 200,
            ..IngestConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");

    for wave in 0..WAVES {
        let now = SimTime::from_millis(wave as u64 * 1_000);
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..CLIENTS_PER_WAVE)
            .map(|c| {
                let txs = vec![world.pool[wave * CLIENTS_PER_WAVE + c].clone()];
                let client_done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let acks = submit_one_by_one(addr, txs);
                    client_done.fetch_add(1, Ordering::Release);
                    acks
                })
            })
            .collect();
        while done.load(Ordering::Acquire) < CLIENTS_PER_WAVE {
            server.poll(&mut gateway, now, 1).expect("server poll");
        }
        for handle in handles {
            let acks = handle.join().expect("wave client");
            assert!(
                acks.iter().all(|a| a.code == AckCode::Accepted),
                "wave {wave} admitted: {acks:?}"
            );
        }
        // One more tick well past the idle horizon: the sweep's cutoff
        // trails the timeout, so earlier waves' buckets must be gone.
        server
            .poll(&mut gateway, SimTime::from_millis(wave as u64 * 1_000 + 900), 1)
            .expect("sweep poll");
        assert!(
            server.rate_buckets() <= CLIENTS_PER_WAVE,
            "wave {wave}: {} buckets survived — state grows with arrivals",
            server.rate_buckets()
        );
    }
    assert_eq!(
        server.stats().conns_accepted as usize,
        WAVES * CLIENTS_PER_WAVE,
        "every wave actually churned a fresh connection"
    );
}

// --- 2. Bounded backpressure ---------------------------------------------

#[test]
fn stalled_client_keeps_backpressure_bounded_while_others_admit() {
    const STALLED_FRAMES: usize = 50;
    const STALLED_BATCH: usize = 8;
    const HEALTHY: usize = 4;
    const HEALTHY_TXS: usize = 12;
    let stalled_txs = STALLED_FRAMES * STALLED_BATCH;
    let pool_size = stalled_txs + HEALTHY * HEALTHY_TXS;

    let world = build_world(0xBACC, 3, pool_size);
    let mut gateway = world.gateway;
    let config = IngestConfig {
        per_conn_inflight: 8,
        global_inflight: 64,
        frames_per_tick: 256,
        ..IngestConfig::default()
    };
    let mut server = IngestServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");

    // The stalled client: floods its whole schedule, never reads a single
    // ack, and keeps the socket open until the test ends.
    let release = Arc::new(AtomicBool::new(false));
    let stalled_release = Arc::clone(&release);
    let stalled_pool = world.pool[..stalled_txs].to_vec();
    let stalled = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for chunk in stalled_pool.chunks(STALLED_BATCH) {
            write_frame(
                &mut stream,
                &encode_client(&ClientMsg::SubmitBatch(chunk.to_vec())),
            );
        }
        while !stalled_release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    // Healthy clients run their full request/response schedule while the
    // flood is in progress.
    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..HEALTHY)
        .map(|c| {
            let lo = stalled_txs + c * HEALTHY_TXS;
            let txs = world.pool[lo..lo + HEALTHY_TXS].to_vec();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let acks = submit_one_by_one(addr, txs);
                done.fetch_add(1, Ordering::Release);
                acks
            })
        })
        .collect();
    serve_until_done(&mut server, &mut gateway, &done, HEALTHY);

    // Let the server finish consuming whatever the stalled client queued
    // (its frames are all written; drain until quiescent).
    let clock = MonotonicClock::new();
    loop {
        let progress = server
            .poll(&mut gateway, clock.now(), 1)
            .expect("server poll");
        if progress.frames == 0 && progress.submitted == 0 && server.inflight() == 0 {
            break;
        }
        assert!(clock.now() < SimTime::from_secs(30), "drain wedged");
    }
    release.store(true, Ordering::Release);
    stalled.join().expect("stalled client");

    for handle in handles {
        let acks = handle.join().expect("healthy client");
        assert!(
            acks.iter().all(|a| a.code == AckCode::Accepted),
            "healthy clients admit during the flood: {acks:?}"
        );
    }

    let stats = server.stats();
    assert!(stats.txs_busy > 0, "the flood did hit the caps: {stats:?}");
    assert!(
        stats.high_water_conn_inflight <= config.per_conn_inflight,
        "per-connection queue stayed bounded: {stats:?}"
    );
    assert!(
        stats.high_water_global_inflight <= config.global_inflight,
        "global queue stayed bounded: {stats:?}"
    );
    assert!(
        stats.high_water_tx_buffer <= MAX_TX_BUFFER_BYTES,
        "ack buffer stayed under the transport cap: {stats:?}"
    );
    // Every transaction was decided: admitted or refused-busy, none lost.
    assert_eq!(
        stats.txs_admitted + stats.txs_busy,
        (stalled_txs + HEALTHY * HEALTHY_TXS) as u64,
        "{stats:?}"
    );
}

// --- 3. Clock agreement --------------------------------------------------

#[test]
fn virtual_and_monotonic_clock_paths_agree() {
    let config = RateLimitConfig {
        burst: 3.0,
        per_second: 4.0,
    };
    let node = NodeId([7; 32]);
    // A schedule mixing bursts, sub-refill gaps, and long idles.
    let schedule_ms: Vec<u64> = vec![
        0, 0, 0, 0, 1, 100, 250, 251, 252, 400, 900, 901, 902, 1_500, 1_501,
        3_000, 3_001, 3_002, 3_003, 10_000,
    ];
    let mut virtual_path = RateLimiter::new(config);
    let mut monotonic_path = RateLimiter::new(config);
    for &ms in &schedule_ms {
        let v = virtual_path.allow(node, SimTime::from_millis(ms));
        // The wall-clock path sees the same elapsed time plus sub-ms
        // jitter a real clock would add; the adapter's truncation to
        // whole milliseconds must erase it.
        let wall = Duration::from_millis(ms) + Duration::from_micros(499);
        let m = monotonic_path.allow(node, simtime_of_elapsed(wall));
        assert_eq!(v, m, "decisions diverged at {ms} ms");
    }

    // And the live clock is sane: strictly non-decreasing, starting at 0.
    let clock = MonotonicClock::new();
    let first = clock.now();
    assert!(first <= SimTime::from_secs(1));
    std::thread::sleep(Duration::from_millis(5));
    assert!(clock.now() >= first);
}
