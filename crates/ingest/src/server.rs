//! The ingestion server: reactor-driven admission front end.
//!
//! One [`IngestServer`] owns a listening socket, N client connections,
//! and a [`Poller`]; each call to [`IngestServer::poll`] runs one tick of
//! the event loop against the caller's [`Gateway`]:
//!
//! 1. ask the poller which sockets have news (O(ready) under epoll);
//! 2. drain the accept backlog in bounded bursts;
//! 3. read and decode frames from ready connections, under a per-tick
//!    budget, a per-connection token bucket, and two inflight caps;
//! 4. feed everything admitted into [`Gateway::submit_batch`] — the
//!    already-parallel signature/PoW verify fan-out — in arrival order;
//! 5. ack every submission with per-transaction result codes.
//!
//! ## Backpressure policy (provably bounded memory)
//!
//! Every buffer a client can influence has a hard cap, and every cap
//! refuses instead of growing:
//!
//! * **inbound frames** — the transport refuses frames over
//!   `MAX_FRAME_BYTES` before buffering them;
//! * **decoded transactions** — at most
//!   [`IngestConfig::per_conn_inflight`] per connection and
//!   [`IngestConfig::global_inflight`] overall; past either cap a
//!   submission is acked [`AckCode::Busy`] and the connection's *read
//!   interest is deferred* (the socket stays open, the kernel queues and
//!   eventually flow-controls the sender via TCP);
//! * **outbound acks** — the transport's 4 MiB tx cap
//!   ([`biot_gossip::tcp::MAX_TX_BUFFER_BYTES`]); a client that will not
//!   read its acks is disconnected rather than buffered without bound.
//!
//! High-water marks for all three are tracked in [`IngestStats`], and the
//! stalled-client test in `tests/ingest_e2e.rs` asserts they hold while
//! healthy connections keep admitting.
//!
//! Two more states are bounded by explicit sweeps rather than caps:
//!
//! * **front-end limiter buckets** — keyed by connection token, and
//!   tokens are never reused, so the idle sweep also compacts the
//!   [`RateLimiter`] with a cutoff trailing the idle timeout; bucket
//!   count tracks *live* connections, not total arrivals;
//! * **frames parked past the tick budget** — the transport drains the
//!   whole kernel buffer into userspace, so frames beyond
//!   [`IngestConfig::frames_per_tick`] would never re-trigger a
//!   level-triggered poller; connections still holding a complete
//!   buffered frame go on the resume list and are serviced next tick.

use crate::protocol::{
    decode_client, encode_server, AckCode, AckResult, ClientMsg, ServerMsg,
};
use crate::reactor::{build_poller, Event, Interest, Poller, PollerKind};
use biot_core::node::{Gateway, SubmitError};
use biot_core::ratelimit::{RateLimitConfig, RateLimiter};
use biot_gossip::tcp::{TcpAcceptor, TcpTransport};
use biot_gossip::transport::Transport;
use biot_net::time::SimTime;
use biot_tangle::tx::{NodeId, Transaction, TxId};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};

/// Token under which the listening socket is registered.
const ACCEPTOR_TOKEN: usize = usize::MAX;

/// How long the listener stays parked after a non-transient accept
/// failure (fd exhaustion and kin). Level-triggered readiness would
/// otherwise re-fire the doomed accept every tick; parking trades a
/// short admission delay for not hot-spinning while the failure lasts.
const ACCEPT_BACKOFF_MS: u64 = 50;

/// Tuning knobs for the ingest front end. Defaults serve thousands of
/// connections on one core; every knob exists to keep some buffer finite.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Connection cap; accepts past it are immediately closed.
    pub max_connections: usize,
    /// Most connections accepted per tick (one listener readiness event
    /// drains a whole dial burst, but boundedly).
    pub accept_burst: usize,
    /// Decoded-transaction cap per connection; past it the connection is
    /// acked `Busy` and its read interest deferred.
    pub per_conn_inflight: usize,
    /// Decoded-transaction cap across all connections.
    pub global_inflight: usize,
    /// Most frames decoded from one connection in one tick (fairness:
    /// one chatty device cannot monopolize a tick).
    pub frames_per_tick: usize,
    /// Most transactions per [`Gateway::submit_batch`] call.
    pub batch_max: usize,
    /// Per-connection token bucket (requests/s shaping ahead of the
    /// gateway's own per-device limiter). `None` disables.
    pub rate_limit: Option<RateLimitConfig>,
    /// Drop connections silent for this long (ms); `0` disables.
    pub idle_timeout_ms: u64,
    /// Which readiness implementation to run.
    pub poller: PollerKind,
    /// Record every (transaction, instant, outcome) fed to the gateway —
    /// for the bit-identical equivalence test; off in production.
    pub record_admissions: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            max_connections: 4096,
            accept_burst: 256,
            per_conn_inflight: 256,
            global_inflight: 8192,
            frames_per_tick: 64,
            batch_max: 512,
            rate_limit: None,
            idle_timeout_ms: 30_000,
            poller: PollerKind::Epoll,
            record_admissions: false,
        }
    }
}

/// Connection lifecycle and admission counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Connections accepted and registered.
    pub conns_accepted: u64,
    /// Connections refused because [`IngestConfig::max_connections`] was
    /// reached.
    pub conns_refused_capacity: u64,
    /// Connections dropped: peer closed, I/O failure, protocol
    /// violation, or unread acks past the outbound cap.
    pub conns_dropped: u64,
    /// Connections dropped by the idle timeout.
    pub conns_timed_out: u64,
    /// Non-transient accept failures (fd exhaustion and kin); each also
    /// parks the listener for a short backoff.
    pub accept_errors: u64,
    /// Well-formed frames decoded.
    pub frames_in: u64,
    /// Malformed frames (each also drops its connection).
    pub frames_malformed: u64,
    /// Transactions accepted onto the ledger.
    pub txs_admitted: u64,
    /// Transactions the gateway refused (any [`SubmitError`]).
    pub txs_rejected: u64,
    /// Transactions refused by the front end's per-connection bucket.
    pub txs_rate_limited: u64,
    /// Transactions refused `Busy` by the inflight caps.
    pub txs_busy: u64,
    /// Highest global inflight-queue depth ever observed.
    pub high_water_global_inflight: usize,
    /// Highest per-connection inflight depth ever observed.
    pub high_water_conn_inflight: usize,
    /// Highest per-connection unflushed outbound byte count observed.
    pub high_water_tx_buffer: usize,
}

/// What one [`IngestServer::poll`] tick did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollProgress {
    /// Readiness events dispatched.
    pub events: usize,
    /// Frames decoded.
    pub frames: usize,
    /// Transactions run through the gateway (any outcome).
    pub submitted: usize,
}

/// One queued entry of a submission: either a transaction awaiting the
/// gateway, or a result already decided at the front end (rate-limited,
/// busy).
#[derive(Debug)]
enum Entry {
    Queued(Transaction),
    Immediate(AckResult),
}

/// One client submission (`SubmitTx` or `SubmitBatch`), acked as a unit.
#[derive(Debug)]
struct Submission {
    token: usize,
    entries: Vec<Entry>,
}

impl Submission {
    fn queued_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, Entry::Queued(_)))
            .count()
    }
}

#[derive(Debug)]
struct Conn {
    transport: TcpTransport,
    fd: std::os::fd::RawFd,
    /// Transactions of this connection inside the pending queue.
    inflight: usize,
    /// Read interest deferred until acks drain (backpressure).
    paused: bool,
    last_activity: SimTime,
    interest: Interest,
}

/// An admission record for the equivalence oracle (see
/// [`IngestConfig::record_admissions`]).
pub type AdmissionRecord = (Transaction, SimTime, Result<TxId, SubmitError>);

/// The reactor-driven ingestion front end. See the module docs.
pub struct IngestServer {
    acceptor: TcpAcceptor,
    poller: Box<dyn Poller>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    pending: VecDeque<Submission>,
    /// Total queued transactions across `pending` (≤ global_inflight).
    inflight: usize,
    limiter: Option<RateLimiter>,
    config: IngestConfig,
    stats: IngestStats,
    events: Vec<Event>,
    /// Connections whose buffered frames must be serviced next tick
    /// even without a fresh readiness event: unpaused this tick, or
    /// still holding complete frames after the per-tick budget.
    resume: Vec<usize>,
    /// When a parked listener re-arms (set on non-transient accept
    /// failure; `None` while accepting normally).
    accept_resume_at: Option<SimTime>,
    last_sweep: SimTime,
    admission_log: Vec<AdmissionRecord>,
}

impl std::fmt::Debug for IngestServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestServer")
            .field("conns", &self.conns.len())
            .field("inflight", &self.inflight)
            .field("poller", &self.poller.kind())
            .finish()
    }
}

impl IngestServer {
    /// Binds the listener and sets up the poller.
    ///
    /// # Errors
    ///
    /// Socket or poller-creation failures.
    pub fn bind(addr: impl ToSocketAddrs, config: IngestConfig) -> io::Result<Self> {
        let acceptor = TcpAcceptor::bind(addr)?;
        // Deepen the kernel accept backlog to the connection cap: std's
        // 128 overflows under a fleet-sized dial burst, and every dropped
        // SYN costs that client a ~1 s retransmission stall.
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        crate::sys::listen(
            acceptor.raw_fd(),
            i32::try_from(config.max_connections).unwrap_or(i32::MAX),
        )?;
        let mut poller = build_poller(config.poller)?;
        poller.register(acceptor.raw_fd(), ACCEPTOR_TOKEN, Interest::READ)?;
        Ok(Self {
            acceptor,
            poller,
            conns: HashMap::new(),
            next_token: 0,
            pending: VecDeque::new(),
            inflight: 0,
            limiter: config.rate_limit.map(RateLimiter::new),
            config,
            stats: IngestStats::default(),
            events: Vec::new(),
            resume: Vec::new(),
            accept_resume_at: None,
            last_sweep: SimTime::ZERO,
            admission_log: Vec::new(),
        })
    }

    /// The bound listening address.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.acceptor.local_addr()
    }

    /// Which poller actually runs (epoll requests fall back to scan on
    /// unsupported platforms).
    pub fn poller_kind(&self) -> PollerKind {
        self.poller.kind()
    }

    /// The poller's own pollable descriptor, when it has one (epoll).
    ///
    /// An outer event loop registers this fd for READ and wakes exactly
    /// when some ingest socket is ready — epoll fds are themselves
    /// level-readable while their ready-list is non-empty — instead of
    /// calling [`IngestServer::poll`] on a timer.
    pub fn poller_fd(&self) -> Option<std::os::fd::RawFd> {
        self.poller.raw_fd()
    }

    /// Earliest instant (absolute ms) at which this server has internal
    /// work that kernel readiness will *not* signal: buffered frames on
    /// the resume list (due immediately), a parked listener waiting out
    /// its accept backoff, or the next idle sweep. `None` when only
    /// socket readiness can create work.
    pub fn next_deadline(&self, now: SimTime) -> Option<u64> {
        if !self.resume.is_empty() {
            return Some(now.as_millis());
        }
        let mut next = self.accept_resume_at.map(SimTime::as_millis);
        let timeout = self.config.idle_timeout_ms;
        if !self.conns.is_empty() || timeout != 0 {
            let horizon = if timeout == 0 { 60_000 } else { timeout };
            let sweep_at = self.last_sweep.as_millis() + horizon / 4 + 1;
            next = Some(next.map_or(sweep_at, |n| n.min(sweep_at)));
        }
        next
    }

    /// Lifecycle and admission counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Live connection count.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Transactions currently queued for admission.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Token buckets currently tracked by the front-end limiter — `0`
    /// when rate limiting is off. Bounded by the idle sweep's periodic
    /// [`RateLimiter::compact`], not by total connections ever accepted.
    pub fn rate_buckets(&self) -> usize {
        self.limiter.as_ref().map_or(0, RateLimiter::tracked_nodes)
    }

    /// Drains the recorded admission stream (only filled when
    /// [`IngestConfig::record_admissions`] is set).
    pub fn take_admission_log(&mut self) -> Vec<AdmissionRecord> {
        std::mem::take(&mut self.admission_log)
    }

    /// Runs one event-loop tick against `gateway` at instant `now`.
    /// Blocks at most `timeout_ms` waiting for readiness (epoll; the
    /// scan poller returns immediately).
    ///
    /// # Errors
    ///
    /// Poller failures only — per-connection I/O errors are handled by
    /// dropping the connection.
    pub fn poll(
        &mut self,
        gateway: &mut Gateway,
        now: SimTime,
        timeout_ms: i32,
    ) -> io::Result<PollProgress> {
        let mut progress = PollProgress::default();
        // Pending local work must not wait out the poll timeout: frames
        // parked in userspace produce no kernel readiness, and a parked
        // listener re-arms on a deadline, not an event.
        let backoff = i32::try_from(ACCEPT_BACKOFF_MS).expect("small constant");
        let timeout_ms = if !self.resume.is_empty() {
            0
        } else if self.accept_resume_at.is_some() && !(0..=backoff).contains(&timeout_ms) {
            // Negative means "block forever" — still wake for the re-arm.
            backoff
        } else {
            timeout_ms
        };
        let mut events = std::mem::take(&mut self.events);
        self.poller.poll(&mut events, timeout_ms)?;
        progress.events = events.len();

        if let Some(at) = self.accept_resume_at {
            if now >= at {
                self.accept_resume_at = None;
                let _ = self.poller.reregister(
                    self.acceptor.raw_fd(),
                    ACCEPTOR_TOKEN,
                    Interest::READ,
                );
                // The parked listener produced no event this tick; drain
                // whatever queued in the backlog during the backoff.
                self.accept_burst(now)?;
            }
        }

        // Connections with frames already buffered in userspace (unpaused
        // last tick, or past the frame budget) produce no kernel event.
        let resume = std::mem::take(&mut self.resume);
        for token in resume {
            self.read_conn(token, now, &mut progress);
        }

        for ev in &events {
            if ev.token == ACCEPTOR_TOKEN {
                self.accept_burst(now)?;
                continue;
            }
            // EPOLLHUP/EPOLLERR ignore the interest mask, so a dead
            // *paused* socket re-fires every tick while read_conn bails
            // on `paused` — reap it now instead of busy-looping until
            // the idle sweep gets there.
            if ev.hangup && self.conns.get(&ev.token).is_some_and(|c| c.paused) {
                self.close_conn(ev.token, false);
                continue;
            }
            if ev.writable {
                self.flush_conn(ev.token);
            }
            if ev.readable {
                self.read_conn(ev.token, now, &mut progress);
            }
        }
        self.events = events;

        self.drain(gateway, now, &mut progress);
        self.unpause_ready();
        self.sweep_idle(now);
        Ok(progress)
    }

    // --- Accept -----------------------------------------------------------

    fn accept_burst(&mut self, now: SimTime) -> io::Result<()> {
        let batch = match self.acceptor.try_accept_all(self.config.accept_burst) {
            Ok(batch) => batch,
            // The connection at the head of the backlog died before we
            // got to it — its failure, not the listener's.
            Err(ref e) if is_transient_accept_error(e) => return Ok(()),
            // Resource exhaustion (EMFILE/ENFILE/ENOMEM): the pending
            // connection stays in the backlog, so level-triggered
            // readiness would re-fire the doomed accept every tick.
            // Account for it and park the listener briefly instead.
            Err(_) => {
                self.stats.accept_errors += 1;
                self.accept_resume_at = Some(SimTime::from_millis(
                    now.as_millis().saturating_add(ACCEPT_BACKOFF_MS),
                ));
                let _ = self.poller.reregister(
                    self.acceptor.raw_fd(),
                    ACCEPTOR_TOKEN,
                    Interest::NONE,
                );
                return Ok(());
            }
        };
        for mut transport in batch {
            if self.conns.len() >= self.config.max_connections {
                transport.close();
                self.stats.conns_refused_capacity += 1;
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            let fd = transport.raw_fd();
            if self.poller.register(fd, token, Interest::READ).is_err() {
                transport.close();
                self.stats.conns_dropped += 1;
                continue;
            }
            self.conns.insert(
                token,
                Conn {
                    transport,
                    fd,
                    inflight: 0,
                    paused: false,
                    last_activity: now,
                    interest: Interest::READ,
                },
            );
            self.stats.conns_accepted += 1;
        }
        Ok(())
    }

    // --- Per-connection I/O ----------------------------------------------

    fn flush_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.transport.flush().is_err() {
            self.close_conn(token, false);
            return;
        }
        self.update_interest(token);
    }

    fn read_conn(&mut self, token: usize, now: SimTime, progress: &mut PollProgress) {
        for _ in 0..self.config.frames_per_tick {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.paused {
                return;
            }
            let frame = match conn.transport.try_recv() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => {
                    self.close_conn(token, false);
                    return;
                }
            };
            conn.last_activity = now;
            let msg = match decode_client(&frame) {
                Ok(msg) => msg,
                Err(_) => {
                    // Protocol violation: this peer cannot be reasoned
                    // with (framing may be desynchronized) — drop it.
                    self.stats.frames_malformed += 1;
                    self.close_conn(token, false);
                    return;
                }
            };
            self.stats.frames_in += 1;
            progress.frames += 1;
            self.enqueue_submission(token, msg, now);
        }
        // Budget exhausted, but the transport drained the whole kernel
        // buffer into userspace: a level-triggered poller sees nothing
        // left to report, so any complete frame still parked there must
        // be revisited explicitly or the client deadlocks awaiting acks
        // it pipelined past the budget.
        if let Some(conn) = self.conns.get(&token) {
            if !conn.paused
                && conn.transport.has_buffered_frame()
                && !self.resume.contains(&token)
            {
                self.resume.push(token);
            }
        }
        self.update_interest(token);
    }

    /// Applies the front-end gates (token bucket, inflight caps) to one
    /// submission and queues what survives. Gate outcomes are decided
    /// per transaction, so one oversized batch gets a mixed ack instead
    /// of all-or-nothing.
    fn enqueue_submission(&mut self, token: usize, msg: ClientMsg, now: SimTime) {
        let txs = match msg {
            ClientMsg::SubmitTx(tx) => vec![tx],
            ClientMsg::SubmitBatch(txs) => txs,
        };
        let bucket_key = conn_limiter_key(token);
        let mut entries = Vec::with_capacity(txs.len());
        let mut queued = 0usize;
        let mut hit_cap = false;
        {
            let conn = self.conns.get_mut(&token).expect("caller verified conn");
            for tx in txs {
                if let Some(limiter) = self.limiter.as_mut() {
                    if !limiter.allow(bucket_key, now) {
                        self.stats.txs_rate_limited += 1;
                        entries.push(Entry::Immediate(AckResult::rejected(AckCode::RateLimited)));
                        continue;
                    }
                }
                if conn.inflight + queued >= self.config.per_conn_inflight
                    || self.inflight + queued >= self.config.global_inflight
                {
                    self.stats.txs_busy += 1;
                    hit_cap = true;
                    entries.push(Entry::Immediate(AckResult::rejected(AckCode::Busy)));
                    continue;
                }
                queued += 1;
                entries.push(Entry::Queued(tx));
            }
            conn.inflight += queued;
            self.stats.high_water_conn_inflight =
                self.stats.high_water_conn_inflight.max(conn.inflight);
            if hit_cap {
                // Defer read interest: stop pulling from this socket and
                // let TCP flow control push back to the device. The acks
                // just queued still go out; `unpause_ready` re-arms reads
                // once the queues drain.
                conn.paused = true;
            }
        }
        self.inflight += queued;
        self.stats.high_water_global_inflight =
            self.stats.high_water_global_inflight.max(self.inflight);
        // Even fully-rejected (and empty) submissions go through the
        // queue: acks leave each connection in frame order, so clients
        // can pair ack N with frame N without sequence numbers.
        self.pending.push_back(Submission { token, entries });
        if hit_cap {
            self.update_interest(token);
        }
    }

    // --- Admission --------------------------------------------------------

    /// Feeds queued submissions into the gateway's batch verify fan-out,
    /// in arrival order, and acks each submission.
    fn drain(&mut self, gateway: &mut Gateway, now: SimTime, progress: &mut PollProgress) {
        while !self.pending.is_empty() {
            // Merge whole submissions up to batch_max transactions.
            let mut subs: Vec<Submission> = Vec::new();
            let mut txs: Vec<Transaction> = Vec::new();
            while let Some(front) = self.pending.front() {
                let n = front.queued_count();
                if !txs.is_empty() && txs.len() + n > self.config.batch_max {
                    break;
                }
                let sub = self.pending.pop_front().expect("front exists");
                for e in &sub.entries {
                    if let Entry::Queued(tx) = e {
                        txs.push(tx.clone());
                    }
                }
                subs.push(sub);
                if txs.len() >= self.config.batch_max {
                    break;
                }
            }
            let submitted = txs.len();
            let logged: Option<Vec<Transaction>> =
                self.config.record_admissions.then(|| txs.clone());
            let results = if txs.is_empty() {
                Vec::new()
            } else {
                gateway.submit_batch(txs, now)
            };
            progress.submitted += submitted;
            self.inflight -= submitted;
            if let Some(logged) = logged {
                for (tx, res) in logged.into_iter().zip(results.iter()) {
                    self.admission_log.push((tx, now, res.clone()));
                }
            }

            let mut results = results.into_iter();
            for sub in subs {
                let mut acks = Vec::with_capacity(sub.entries.len());
                let mut queued = 0usize;
                for entry in sub.entries {
                    match entry {
                        Entry::Immediate(r) => acks.push(r),
                        Entry::Queued(_) => {
                            queued += 1;
                            match results.next().expect("one result per queued tx") {
                                Ok(id) => {
                                    self.stats.txs_admitted += 1;
                                    acks.push(AckResult::accepted(id));
                                }
                                Err(e) => {
                                    self.stats.txs_rejected += 1;
                                    acks.push(AckResult::rejected(AckCode::from_submit_error(&e)));
                                }
                            }
                        }
                    }
                }
                if let Some(conn) = self.conns.get_mut(&sub.token) {
                    conn.inflight -= queued;
                }
                self.send_ack(sub.token, acks);
            }
        }
    }

    // --- Backpressure + lifecycle ----------------------------------------

    fn send_ack(&mut self, token: usize, results: Vec<AckResult>) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let frame = encode_server(&ServerMsg::Ack(results));
        if conn.transport.send(&frame).is_err() {
            // Closed, I/O failure, or 4 MiB of unread acks: either way
            // this peer is not consuming its side of the protocol.
            self.close_conn(token, false);
            return;
        }
        self.stats.high_water_tx_buffer = self
            .stats
            .high_water_tx_buffer
            .max(conn.transport.pending_tx_bytes());
        self.update_interest(token);
    }

    /// Re-arms read interest on paused connections whose queues drained.
    /// Hysteresis (half the per-connection cap, ¾ of the global one)
    /// keeps a flooding device from flapping every tick.
    fn unpause_ready(&mut self) {
        if self.inflight * 4 > self.config.global_inflight * 3 {
            return;
        }
        let mut unpaused: Vec<usize> = Vec::new();
        for (&token, conn) in &mut self.conns {
            if conn.paused && conn.inflight * 2 <= self.config.per_conn_inflight {
                conn.paused = false;
                unpaused.push(token);
            }
        }
        for token in unpaused {
            self.update_interest(token);
            // Frames may already sit decoded-but-unread in the rx buffer;
            // a level-triggered poller re-reports the socket, but bytes
            // parked in our buffer need an explicit revisit.
            self.resume.push(token);
        }
    }

    fn sweep_idle(&mut self, now: SimTime) {
        let timeout = self.config.idle_timeout_ms;
        // Limiter buckets are keyed by connection token and tokens are
        // never reused, so under churn they must be compacted even when
        // idle disconnects are disabled — fall back to a fixed horizon.
        let horizon = if timeout == 0 { 60_000 } else { timeout };
        if now.millis_since(self.last_sweep) < horizon / 4 + 1 {
            return;
        }
        self.last_sweep = now;
        // The cutoff trails the idle timeout: any bucket older than that
        // belongs to a connection that is closed or about to be swept,
        // so dropping it never changes a live connection's decisions.
        if let Some(limiter) = self.limiter.as_mut() {
            limiter.compact(SimTime::from_millis(
                now.as_millis().saturating_sub(horizon),
            ));
        }
        if timeout == 0 {
            return;
        }
        let dead: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| now.millis_since(c.last_activity) > timeout)
            .map(|(&t, _)| t)
            .collect();
        for token in dead {
            self.close_conn(token, true);
        }
    }

    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let desired = Interest {
            readable: !conn.paused,
            writable: conn.transport.pending_tx_bytes() > 0,
        };
        if desired == conn.interest {
            return;
        }
        conn.interest = desired;
        let fd = conn.fd;
        if self.poller.reregister(fd, token, desired).is_err() {
            self.close_conn(token, false);
        }
    }

    fn close_conn(&mut self, token: usize, timed_out: bool) {
        let Some(mut conn) = self.conns.remove(&token) else { return };
        let _ = self.poller.deregister(conn.fd);
        conn.transport.close();
        if timed_out {
            self.stats.conns_timed_out += 1;
        } else {
            self.stats.conns_dropped += 1;
        }
        // Its queued transactions stay in `pending` (the gateway decision
        // is still made — admission never silently vanishes), but the ack
        // will find the connection gone and be skipped.
    }
}

/// The synthetic per-connection identity fed to the token bucket. Not a
/// device id: the front end shapes *connections*; the gateway's own
/// limiter (keyed by issuer) shapes devices.
fn conn_limiter_key(token: usize) -> NodeId {
    let mut id = [0xC0u8; 32];
    id[..8].copy_from_slice(&(token as u64).to_be_bytes());
    NodeId(id)
}

/// Whether an accept failure concerns only the connection being accepted
/// (keep accepting) rather than the listener or the process (park and
/// back off: fd or memory exhaustion persists across retries).
fn is_transient_accept_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_error_classification() {
        for kind in [
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
        ] {
            assert!(is_transient_accept_error(&io::Error::from(kind)), "{kind:?}");
        }
        // EMFILE (24 on Linux) and friends surface as uncategorized or
        // resource errors — anything unrecognized must take the backoff
        // path, never the silent-retry path.
        let emfile = io::Error::from_raw_os_error(24);
        assert!(!is_transient_accept_error(&emfile));
        assert!(!is_transient_accept_error(&io::Error::from(
            io::ErrorKind::OutOfMemory
        )));
    }
}
