//! Wall-clock → [`SimTime`] adapter.
//!
//! Everything stateful in a B-IoT gateway — the rate limiter's token
//! buckets, the credit ledger's CrP windows, lazy-tip ages — runs on
//! virtual [`SimTime`] milliseconds, which is what makes simulations and
//! tests deterministic. A production ingest loop runs on the machine's
//! monotonic clock instead; this module is the *entire* bridge between
//! the two, so the agreement proof is one function:
//! [`simtime_of_elapsed`]. Tests drive the limiter once with virtual
//! instants and once with synthetic `Duration`s through this adapter and
//! assert identical decisions (see `tests/ingest_e2e.rs`).

use biot_net::time::SimTime;
use std::time::{Duration, Instant};

/// Maps elapsed wall time since some origin to a [`SimTime`] instant —
/// millisecond truncation, exactly what `SimTime` stores. Shared by
/// [`MonotonicClock`] and by tests feeding synthetic durations.
pub fn simtime_of_elapsed(elapsed: Duration) -> SimTime {
    SimTime::from_millis(elapsed.as_millis() as u64)
}

/// A monotonic wall clock reporting [`SimTime`] since its creation.
///
/// Backed by [`Instant`], so it never goes backwards and is immune to
/// wall-clock adjustments — the property the token-bucket refill and the
/// idle-timeout sweep rely on.
#[derive(Clone, Copy, Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose `now()` starts at 0 ms.
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }

    /// Milliseconds elapsed since creation, as a virtual instant.
    pub fn now(&self) -> SimTime {
        simtime_of_elapsed(self.origin.elapsed())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

/// The reactor's [`Clock`](biot_reactor::Clock) view of the same
/// instant stream: event loops that block on a shared poller read
/// `now_ms()` here and feed it to every `SimTime`-driven subsystem,
/// so the gateway has exactly one notion of "now".
impl biot_reactor::Clock for MonotonicClock {
    fn now_ms(&self) -> u64 {
        self.now().as_millis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let mut prev = clock.now();
        for _ in 0..1000 {
            let now = clock.now();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn adapter_truncates_to_whole_milliseconds() {
        assert_eq!(simtime_of_elapsed(Duration::ZERO), SimTime::ZERO);
        assert_eq!(
            simtime_of_elapsed(Duration::from_micros(1_999)),
            SimTime::from_millis(1)
        );
        assert_eq!(
            simtime_of_elapsed(Duration::from_millis(30_000)),
            SimTime::from_secs(30)
        );
    }
}
