//! Re-export of the raw Linux `epoll`/`listen` syscall wrappers, moved
//! to [`biot_reactor::sys`] (PR 9) alongside the poller they serve.
//! Re-exported here so `biot_ingest::sys::{listen, …}` keeps working.

pub use biot_reactor::sys::*;
