//! # biot-ingest
//!
//! The admission front end of a B-IoT gateway: a single-threaded
//! readiness reactor serving thousands of concurrent light-node
//! connections over real TCP sockets, feeding the gateway's parallel
//! `submit_batch` verify pipeline.
//!
//! The paper's gateway is the chokepoint every IoT device goes through
//! (authorization list of Eqn 1, signature check, credit-scaled PoW).
//! Serving "heavy traffic from millions of users" therefore starts here:
//! the per-connection poll loop that was fine for two gossiping replicas
//! (`biot-gossip`) burns one read syscall per connection per tick whether
//! or not the device said anything. This crate replaces that with a
//! mio-style event loop — the kernel tells us *which* sockets are ready
//! and only those are touched.
//!
//! ## Layering
//!
//! * [`sys`] — raw Linux `epoll` syscalls (x86-64 / aarch64, no libc
//!   dependency); absent on other targets. Since PR 9 these live in the
//!   shared [`biot_reactor`] crate and are re-exported here.
//! * [`reactor`] — the [`reactor::Poller`] abstraction:
//!   [`reactor::EpollPoller`] (readiness from the kernel, O(ready) per
//!   tick) with a portable level-triggered [`reactor::ScanPoller`]
//!   fallback (O(connections) per tick) that doubles as the naive
//!   baseline in `results/BENCH_ingest.json`. Also re-exported from
//!   [`biot_reactor`], which `biot-node`'s HTTP query endpoint shares.
//! * [`protocol`] — the minimal length-prefixed client protocol:
//!   `SubmitTx` / `SubmitBatch` in, `Ack` with per-transaction result
//!   codes out.
//! * [`clock`] — a monotonic wall-clock adapter producing the virtual
//!   [`biot_net::time::SimTime`] instants the rate limiter and credit
//!   ledger run on, so production sockets and deterministic tests share
//!   every code path.
//! * [`server`] — the [`server::IngestServer`]: accept bursts, bounded
//!   per-connection and global inflight queues, per-connection token
//!   buckets ([`biot_core::ratelimit`]), explicit `Busy` backpressure
//!   with deferred read interest, idle timeouts, and lifecycle counters.
//!
//! Admission results are **bit-identical** to calling
//! [`biot_core::node::Gateway::submit_batch`] directly on the same
//! transaction stream: the reactor only changes *who reads the bytes*,
//! never the admission decision (see `tests/ingest_e2e.rs`).

#![warn(missing_docs)]

pub mod clock;
pub mod protocol;
pub mod reactor;
pub mod server;
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub mod sys;

pub use clock::MonotonicClock;
pub use protocol::{AckCode, ClientMsg, ProtocolError, ServerMsg};
pub use reactor::{build_poller, Event, Interest, Poller, PollerKind};
pub use server::{IngestConfig, IngestServer, IngestStats, PollProgress};
