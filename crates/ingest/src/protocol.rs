//! The light-node ingestion protocol: what a sensor speaks to a gateway.
//!
//! Deliberately minimal — constrained devices should not need the full
//! gossip vocabulary just to hand in a reading. One frame (4-byte BE
//! length prefix on the wire, handled by the transport) carries exactly
//! one message:
//!
//! ```text
//! client → server
//!   tag 0x01  SubmitTx     varint len, codec-encoded transaction
//!   tag 0x02  SubmitBatch  varint count (≤ 1024), count ×
//!                          (varint len, codec-encoded transaction)
//! server → client
//!   tag 0x81  Ack          varint count, count × result
//!                          result = u8 code; code 0 is followed by the
//!                          32-byte id of the accepted transaction
//! ```
//!
//! The server answers every submission with exactly one `Ack`, in the
//! order submissions arrived on that connection, carrying one result per
//! transaction. Transaction bodies reuse the checksummed
//! [`biot_tangle::codec`] encoding — a reading that crossed a socket gets
//! the same corruption detection as one read from disk.
//!
//! Every declared count is validated against the remaining frame length
//! **before** any allocation, mirroring the hardening of the gossip wire
//! codec.

use biot_core::node::SubmitError;
use biot_tangle::codec::{decode_tx, encode_tx, CodecError};
use biot_tangle::tx::{Transaction, TxId};
use std::fmt;

/// Cap on transactions in one `SubmitBatch` frame.
pub const MAX_BATCH_TXS: usize = 1024;

const TAG_SUBMIT_TX: u8 = 0x01;
const TAG_SUBMIT_BATCH: u8 = 0x02;
const TAG_ACK: u8 = 0x81;

/// Why a client frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Frame ended before the message was complete.
    UnexpectedEnd,
    /// Unknown message tag.
    BadTag(u8),
    /// A varint ran past 10 bytes.
    BadVarint,
    /// A declared count/length exceeds the frame or a protocol cap.
    BadLength(u64),
    /// Bytes left over after a complete message.
    TrailingBytes(usize),
    /// An embedded transaction failed to decode.
    Codec(CodecError),
    /// An ack carried an unknown result code.
    BadCode(u8),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnexpectedEnd => write!(f, "unexpected end of frame"),
            ProtocolError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtocolError::BadVarint => write!(f, "malformed varint"),
            ProtocolError::BadLength(n) => write!(f, "declared length {n} exceeds frame or cap"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            ProtocolError::Codec(e) => write!(f, "embedded transaction corrupt: {e}"),
            ProtocolError::BadCode(c) => write!(f, "unknown ack code {c}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

/// Per-transaction admission outcome, as carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum AckCode {
    /// Attached to the ledger.
    Accepted = 0,
    /// Issuer not on the authorization list (Eqn 1).
    Unauthorized = 1,
    /// Signature failed against the registered key.
    BadSignature = 2,
    /// PoW below the issuer's credit-scaled difficulty.
    InsufficientPow = 3,
    /// Refused by a token bucket — the gateway's per-device limiter or
    /// the front end's per-connection one.
    RateLimited = 4,
    /// Token-ownership violation.
    TokenViolation = 5,
    /// The tangle refused it (double-spend, unknown parents, duplicate).
    LedgerRejected = 6,
    /// The front end's inflight queues are full — backpressure, retry
    /// after the acks drain.
    Busy = 7,
}

impl AckCode {
    /// Maps a gateway refusal to its wire code.
    pub fn from_submit_error(e: &SubmitError) -> AckCode {
        match e {
            SubmitError::Unauthorized(_) => AckCode::Unauthorized,
            SubmitError::BadSignature(_) => AckCode::BadSignature,
            SubmitError::InsufficientPow { .. } => AckCode::InsufficientPow,
            SubmitError::RateLimited(_) => AckCode::RateLimited,
            SubmitError::Token(_) => AckCode::TokenViolation,
            SubmitError::Tangle(_) => AckCode::LedgerRejected,
        }
    }

    fn from_u8(c: u8) -> Result<AckCode, ProtocolError> {
        Ok(match c {
            0 => AckCode::Accepted,
            1 => AckCode::Unauthorized,
            2 => AckCode::BadSignature,
            3 => AckCode::InsufficientPow,
            4 => AckCode::RateLimited,
            5 => AckCode::TokenViolation,
            6 => AckCode::LedgerRejected,
            7 => AckCode::Busy,
            other => return Err(ProtocolError::BadCode(other)),
        })
    }
}

/// One per-transaction result inside an [`ServerMsg::Ack`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckResult {
    /// Outcome code.
    pub code: AckCode,
    /// The attached transaction's id, present iff `code` is
    /// [`AckCode::Accepted`].
    pub id: Option<TxId>,
}

impl AckResult {
    /// An accepted result carrying the attached id.
    pub fn accepted(id: TxId) -> Self {
        Self { code: AckCode::Accepted, id: Some(id) }
    }

    /// A refusal.
    pub fn rejected(code: AckCode) -> Self {
        Self { code, id: None }
    }
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMsg {
    /// One transaction for admission.
    SubmitTx(Transaction),
    /// Several transactions for admission, acked together.
    SubmitBatch(Vec<Transaction>),
}

impl ClientMsg {
    /// How many transactions this submission carries.
    pub fn tx_count(&self) -> usize {
        match self {
            ClientMsg::SubmitTx(_) => 1,
            ClientMsg::SubmitBatch(txs) => txs.len(),
        }
    }
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMsg {
    /// Results for one submission, transaction order preserved.
    Ack(Vec<AckResult>),
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Result<u64, ProtocolError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for _ in 0..10 {
        let byte = *input.get(*pos).ok_or(ProtocolError::UnexpectedEnd)?;
        *pos += 1;
        let bits = u64::from(byte & 0x7f);
        v = bits
            .checked_shl(shift)
            .and_then(|b| v.checked_add(b))
            .ok_or(ProtocolError::BadVarint)?;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
    Err(ProtocolError::BadVarint)
}

fn write_tx(out: &mut Vec<u8>, tx: &Transaction) {
    let body = encode_tx(tx);
    write_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
}

fn read_tx(input: &[u8], pos: &mut usize) -> Result<Transaction, ProtocolError> {
    let len = read_varint(input, pos)?;
    let remaining = (input.len() - *pos) as u64;
    if len > remaining {
        return Err(ProtocolError::BadLength(len));
    }
    let body = &input[*pos..*pos + len as usize];
    *pos += len as usize;
    Ok(decode_tx(body)?)
}

/// Encodes a client message into one frame body.
pub fn encode_client(msg: &ClientMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        ClientMsg::SubmitTx(tx) => {
            out.push(TAG_SUBMIT_TX);
            write_tx(&mut out, tx);
        }
        ClientMsg::SubmitBatch(txs) => {
            out.push(TAG_SUBMIT_BATCH);
            write_varint(&mut out, txs.len() as u64);
            for tx in txs {
                write_tx(&mut out, tx);
            }
        }
    }
    out
}

/// Decodes a client frame body.
///
/// # Errors
///
/// [`ProtocolError`] on any malformation; the server treats that as a
/// protocol violation and drops the connection.
pub fn decode_client(input: &[u8]) -> Result<ClientMsg, ProtocolError> {
    let mut pos = 0usize;
    let tag = *input.get(pos).ok_or(ProtocolError::UnexpectedEnd)?;
    pos += 1;
    let msg = match tag {
        TAG_SUBMIT_TX => ClientMsg::SubmitTx(read_tx(input, &mut pos)?),
        TAG_SUBMIT_BATCH => {
            let count = read_varint(input, &mut pos)?;
            // Each transaction needs at least its length varint, so a
            // forged count cannot exceed the remaining bytes — checked
            // before the Vec allocation.
            if count > MAX_BATCH_TXS as u64 || count > (input.len() - pos) as u64 {
                return Err(ProtocolError::BadLength(count));
            }
            let mut txs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                txs.push(read_tx(input, &mut pos)?);
            }
            ClientMsg::SubmitBatch(txs)
        }
        other => return Err(ProtocolError::BadTag(other)),
    };
    if pos != input.len() {
        return Err(ProtocolError::TrailingBytes(input.len() - pos));
    }
    Ok(msg)
}

/// Encodes a server message into one frame body.
pub fn encode_server(msg: &ServerMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        ServerMsg::Ack(results) => {
            out.push(TAG_ACK);
            write_varint(&mut out, results.len() as u64);
            for r in results {
                out.push(r.code as u8);
                if let Some(id) = r.id {
                    debug_assert_eq!(r.code, AckCode::Accepted);
                    out.extend_from_slice(&id.0);
                }
            }
        }
    }
    out
}

/// Decodes a server frame body (the client side of the protocol).
///
/// # Errors
///
/// [`ProtocolError`] on any malformation.
pub fn decode_server(input: &[u8]) -> Result<ServerMsg, ProtocolError> {
    let mut pos = 0usize;
    let tag = *input.get(pos).ok_or(ProtocolError::UnexpectedEnd)?;
    pos += 1;
    if tag != TAG_ACK {
        return Err(ProtocolError::BadTag(tag));
    }
    let count = read_varint(input, &mut pos)?;
    // One byte minimum per result bounds a forged count.
    if count > (input.len() - pos) as u64 {
        return Err(ProtocolError::BadLength(count));
    }
    let mut results = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let code = *input.get(pos).ok_or(ProtocolError::UnexpectedEnd)?;
        pos += 1;
        let code = AckCode::from_u8(code)?;
        let id = if code == AckCode::Accepted {
            let bytes = input
                .get(pos..pos + 32)
                .ok_or(ProtocolError::UnexpectedEnd)?;
            pos += 32;
            let mut id = [0u8; 32];
            id.copy_from_slice(bytes);
            Some(TxId(id))
        } else {
            None
        };
        results.push(AckResult { code, id });
    }
    if pos != input.len() {
        return Err(ProtocolError::TrailingBytes(input.len() - pos));
    }
    Ok(ServerMsg::Ack(results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};

    fn tx(n: u8) -> Transaction {
        TransactionBuilder::new(NodeId([n; 32]))
            .parents(TxId([1; 32]), TxId([2; 32]))
            .payload(Payload::Data(vec![n; 8]))
            .timestamp_ms(u64::from(n))
            .build()
    }

    #[test]
    fn client_roundtrip() {
        for msg in [
            ClientMsg::SubmitTx(tx(1)),
            ClientMsg::SubmitBatch(vec![tx(2), tx(3), tx(4)]),
            ClientMsg::SubmitBatch(Vec::new()),
        ] {
            let bytes = encode_client(&msg);
            assert_eq!(decode_client(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn server_roundtrip() {
        let msg = ServerMsg::Ack(vec![
            AckResult::accepted(TxId([9; 32])),
            AckResult::rejected(AckCode::RateLimited),
            AckResult::rejected(AckCode::Busy),
        ]);
        let bytes = encode_server(&msg);
        assert_eq!(decode_server(&bytes).unwrap(), msg);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let frames = [
            encode_client(&ClientMsg::SubmitBatch(vec![tx(5), tx(6)])),
            encode_server(&ServerMsg::Ack(vec![AckResult::accepted(TxId([7; 32]))])),
        ];
        for (i, frame) in frames.iter().enumerate() {
            for cut in 0..frame.len() {
                let part = &frame[..cut];
                let refused = if i == 0 {
                    decode_client(part).is_err()
                } else {
                    decode_server(part).is_err()
                };
                assert!(refused, "frame {i} truncated at {cut} must be refused");
            }
        }
    }

    #[test]
    fn forged_counts_refused_before_allocation() {
        // SubmitBatch declaring 2^40 transactions in a 16-byte frame.
        let mut frame = vec![TAG_SUBMIT_BATCH];
        write_varint(&mut frame, 1 << 40);
        frame.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_client(&frame),
            Err(ProtocolError::BadLength(_))
        ));

        let mut ack = vec![TAG_ACK];
        write_varint(&mut ack, u64::MAX);
        assert!(matches!(decode_server(&ack), Err(ProtocolError::BadLength(_))));
    }

    #[test]
    fn trailing_bytes_refused() {
        let mut frame = encode_client(&ClientMsg::SubmitTx(tx(8)));
        frame.push(0x00);
        assert!(matches!(
            decode_client(&frame),
            Err(ProtocolError::TrailingBytes(1))
        ));
    }

    #[test]
    fn bad_tags_and_codes_refused() {
        assert!(matches!(decode_client(&[0x55]), Err(ProtocolError::BadTag(0x55))));
        assert!(matches!(decode_server(&[0x01]), Err(ProtocolError::BadTag(0x01))));
        // Ack with an out-of-range result code.
        let frame = vec![TAG_ACK, 1, 99];
        assert!(matches!(decode_server(&frame), Err(ProtocolError::BadCode(99))));
    }

    #[test]
    fn submit_error_mapping_is_total() {
        use biot_core::pow::Difficulty;
        use biot_core::tokens::TokenError;
        use biot_tangle::graph::TangleError;
        let n = NodeId([1; 32]);
        let cases = [
            (SubmitError::Unauthorized(n), AckCode::Unauthorized),
            (SubmitError::BadSignature(n), AckCode::BadSignature),
            (
                SubmitError::InsufficientPow { required: Difficulty::INITIAL },
                AckCode::InsufficientPow,
            ),
            (SubmitError::RateLimited(n), AckCode::RateLimited),
            (
                SubmitError::Token(TokenError::UnknownToken([0; 32])),
                AckCode::TokenViolation,
            ),
            (
                SubmitError::Tangle(TangleError::Duplicate(TxId([2; 32]))),
                AckCode::LedgerRejected,
            ),
        ];
        for (err, code) in cases {
            assert_eq!(AckCode::from_submit_error(&err), code);
        }
    }
}
