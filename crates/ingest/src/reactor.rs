//! Re-export of the shared readiness reactor.
//!
//! The [`Poller`] abstraction and both implementations ([`EpollPoller`],
//! [`ScanPoller`]) were born here in PR 6 and extracted into the
//! standalone [`biot_reactor`] crate in PR 9 so the archival node's HTTP
//! query endpoint (`biot-node`) could share the same readiness loop.
//! This module re-exports every item under its historical path, so
//! `biot_ingest::reactor::{Poller, Event, Interest, …}` keeps working —
//! the types are literally the same items, not copies (see
//! `tests/reactor_reexport.rs`).

pub use biot_reactor::*;
