//! # biot-store
//!
//! File-backed persistence for gateway replicas: a length-framed,
//! checksummed write-ahead log plus periodic snapshot files, with crash
//! recovery. This addresses the paper's "storage limitations" future-work
//! note (§VIII): combined with `Tangle::snapshot` pruning, a gateway's
//! disk footprint stays bounded while the replica survives restarts.
//!
//! ## Layout
//!
//! A store directory holds:
//!
//! * `snapshot.biot` — the last checkpoint (all rows of a
//!   [`TangleSnapshot`] in the wire codec, custom-framed).
//! * `wal.biot` — transactions attached since that checkpoint, appended
//!   as `[varint attach_ms][varint len][codec bytes]` records.
//!
//! Recovery = restore the snapshot, then re-attach WAL records in order.
//! A torn final WAL record (crash mid-append) is detected by the codec
//! checksum and dropped.
//!
//! ## Example
//!
//! ```
//! use biot_store::LedgerStore;
//! use biot_tangle::graph::Tangle;
//! use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
//!
//! let dir = std::env::temp_dir().join(format!("biot-doc-{}", std::process::id()));
//! let mut store = LedgerStore::open(&dir)?;
//!
//! let mut tangle = Tangle::new();
//! let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
//! store.checkpoint(&tangle)?;
//!
//! let tx = TransactionBuilder::new(NodeId([1; 32]))
//!     .parents(genesis, genesis)
//!     .payload(Payload::Data(b"reading".to_vec()))
//!     .build();
//! tangle.attach(tx.clone(), 5)?;
//! store.append(&tx, 5)?;
//!
//! let recovered = LedgerStore::open(&dir)?.recover()?.expect("state on disk");
//! assert_eq!(recovered.len(), tangle.len());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use biot_tangle::codec::{decode_tx, encode_tx, CodecError};
use biot_tangle::graph::{Tangle, TangleError};
use biot_tangle::snapshot::TangleSnapshot;
use biot_tangle::tx::{Transaction, TxId};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A stored transaction failed to decode (and was not the final,
    /// possibly-torn WAL record).
    Codec(CodecError),
    /// Replaying the log produced an inconsistent ledger.
    Replay(TangleError),
    /// The snapshot file is structurally invalid.
    CorruptSnapshot(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o failure: {e}"),
            StoreError::Codec(e) => write!(f, "stored transaction corrupt: {e}"),
            StoreError::Replay(e) => write!(f, "log replay failed: {e}"),
            StoreError::CorruptSnapshot(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<TangleError> for StoreError {
    fn from(e: TangleError) -> Self {
        StoreError::Replay(e)
    }
}

const SNAPSHOT_MAGIC: &[u8; 8] = b"BIOTSNP1";
const WAL_MAGIC: &[u8; 8] = b"BIOTWAL1";

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    for i in 0..10 {
        let byte = *input.get(*pos)?;
        *pos += 1;
        value |= ((byte & 0x7F) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            return Some(value);
        }
    }
    None
}

/// A directory-backed ledger store: snapshot file + write-ahead log.
pub struct LedgerStore {
    dir: PathBuf,
    wal: File,
}

impl fmt::Debug for LedgerStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LedgerStore").field("dir", &self.dir).finish()
    }
}

impl LedgerStore {
    /// Opens (creating if needed) a store directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let wal_path = dir.join("wal.biot");
        let fresh = !wal_path.exists();
        let mut wal = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&wal_path)?;
        if fresh {
            wal.write_all(WAL_MAGIC)?;
            wal.sync_data()?;
        }
        Ok(Self { dir, wal })
    }

    /// Appends a freshly attached transaction to the WAL.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; on error the record may be torn,
    /// which recovery tolerates (the torn tail is dropped).
    pub fn append(&mut self, tx: &Transaction, attach_ms: u64) -> Result<(), StoreError> {
        let body = encode_tx(tx);
        let mut record = Vec::with_capacity(body.len() + 12);
        write_varint(&mut record, attach_ms);
        write_varint(&mut record, body.len() as u64);
        record.extend_from_slice(&body);
        self.wal.write_all(&record)?;
        self.wal.sync_data()?;
        Ok(())
    }

    /// Writes a full checkpoint of `tangle` and truncates the WAL.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. The snapshot is written to a
    /// temporary file and renamed, so a crash mid-checkpoint leaves the
    /// previous checkpoint intact.
    pub fn checkpoint(&mut self, tangle: &Tangle) -> Result<(), StoreError> {
        let snap = TangleSnapshot::capture(tangle);
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        write_varint(&mut out, snap.rows().len() as u64);
        for (tx, attach_ms, confirmed) in snap.rows() {
            write_varint(&mut out, *attach_ms);
            out.push(u8::from(*confirmed));
            let body = encode_tx(tx);
            write_varint(&mut out, body.len() as u64);
            out.extend_from_slice(&body);
        }
        write_varint(&mut out, snap.pruned().len() as u64);
        for id in snap.pruned() {
            out.extend_from_slice(&id.0);
        }
        let tmp = self.dir.join("snapshot.tmp");
        let final_path = self.dir.join("snapshot.biot");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        // Start a fresh WAL.
        let wal_path = self.dir.join("wal.biot");
        let mut wal = File::create(&wal_path)?;
        wal.write_all(WAL_MAGIC)?;
        wal.sync_data()?;
        self.wal = OpenOptions::new().append(true).read(true).open(&wal_path)?;
        Ok(())
    }

    /// Recovers the ledger from disk: snapshot (if any) plus WAL replay.
    ///
    /// Returns `Ok(None)` when the directory holds no state yet. A torn
    /// final WAL record is silently dropped; corruption anywhere else is
    /// an error.
    ///
    /// # Errors
    ///
    /// See [`StoreError`].
    pub fn recover(&self) -> Result<Option<Tangle>, StoreError> {
        let snap_path = self.dir.join("snapshot.biot");
        let mut tangle = if snap_path.exists() {
            Some(self.read_snapshot(&snap_path)?)
        } else {
            None
        };

        let wal_path = self.dir.join("wal.biot");
        if wal_path.exists() {
            let mut data = Vec::new();
            File::open(&wal_path)?.read_to_end(&mut data)?;
            if data.len() >= WAL_MAGIC.len() {
                if &data[..WAL_MAGIC.len()] != WAL_MAGIC {
                    return Err(StoreError::CorruptSnapshot("wal magic"));
                }
                let mut pos = WAL_MAGIC.len();
                while pos < data.len() {
                    let record_start = pos;
                    let Some(attach_ms) = read_varint(&data, &mut pos) else {
                        break; // torn tail
                    };
                    let Some(len) = read_varint(&data, &mut pos) else {
                        break;
                    };
                    // Checked arithmetic: a torn or corrupt length varint
                    // can decode to any u64; it must never overflow into a
                    // bogus in-bounds `end`.
                    let Some(end) = pos.checked_add(len as usize) else {
                        break; // torn tail
                    };
                    if end > data.len() {
                        break; // torn tail
                    }
                    match decode_tx(&data[pos..end]) {
                        Ok(tx) => {
                            let t = tangle.get_or_insert_with(Tangle::new);
                            if tx.is_genesis() {
                                if t.genesis().is_none() {
                                    t.attach_genesis(tx.issuer, attach_ms);
                                }
                            } else {
                                t.attach(tx, attach_ms)?;
                            }
                        }
                        Err(e) => {
                            // Only the final record may be torn/corrupt.
                            if end == data.len() {
                                break;
                            }
                            let _ = record_start;
                            return Err(e.into());
                        }
                    }
                    pos = end;
                }
            }
        }
        Ok(tangle)
    }

    fn read_snapshot(&self, path: &Path) -> Result<Tangle, StoreError> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        if data.len() < SNAPSHOT_MAGIC.len() || &data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(StoreError::CorruptSnapshot("magic"));
        }
        let mut pos = SNAPSHOT_MAGIC.len();
        let n = read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("row count"))?;
        let mut rows = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let attach_ms =
                read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("attach time"))?;
            let confirmed = *data.get(pos).ok_or(StoreError::CorruptSnapshot("flag"))? != 0;
            pos += 1;
            let len =
                read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("tx length"))?;
            let end = pos
                .checked_add(len as usize)
                .ok_or(StoreError::CorruptSnapshot("tx length"))?;
            if end > data.len() {
                return Err(StoreError::CorruptSnapshot("tx body"));
            }
            let tx = decode_tx(&data[pos..end])?;
            pos = end;
            rows.push((tx, attach_ms, confirmed));
        }
        let n_pruned =
            read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("pruned count"))?;
        let mut pruned = Vec::with_capacity(n_pruned as usize);
        for _ in 0..n_pruned {
            let end = pos + 32;
            let slice = data
                .get(pos..end)
                .ok_or(StoreError::CorruptSnapshot("pruned id"))?;
            let mut id = [0u8; 32];
            id.copy_from_slice(slice);
            pruned.push(TxId(id));
            pos = end;
        }
        let snap = TangleSnapshot::from_rows(rows, pruned);
        Ok(snap.restore()?)
    }

    /// Size of the current WAL in bytes (for checkpoint policies).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn wal_size(&self) -> Result<u64, StoreError> {
        Ok(fs::metadata(self.dir.join("wal.biot"))?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_NO: AtomicU64 = AtomicU64::new(0);

    /// A unique temp directory per test, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            let n = DIR_NO.fetch_add(1, Ordering::SeqCst);
            let path = std::env::temp_dir()
                .join(format!("biot-store-test-{}-{n}", std::process::id()));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn grow(tangle: &mut Tangle, store: &mut LedgerStore, n: usize, base_ms: u64) {
        for i in 0..n {
            let tips = tangle.tips();
            let tx = TransactionBuilder::new(NodeId([(i + 1) as u8; 32]))
                .parents(tips[0], *tips.last().unwrap())
                .payload(Payload::Data(vec![i as u8, base_ms as u8]))
                .timestamp_ms(base_ms + i as u64)
                .build();
            let at = base_ms + i as u64;
            tangle.attach(tx.clone(), at).unwrap();
            store.append(&tx, at).unwrap();
        }
    }

    #[test]
    fn fresh_store_recovers_nothing() {
        let dir = TempDir::new();
        let store = LedgerStore::open(&dir.0).unwrap();
        assert!(store.recover().unwrap().is_none());
    }

    #[test]
    fn wal_only_recovery() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 5, 10);

        let recovered = store.recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
    }

    #[test]
    fn checkpoint_plus_wal_recovery() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 5, 10);
        tangle.confirm_with_threshold(2);
        store.checkpoint(&tangle).unwrap();
        // WAL restarts empty after a checkpoint.
        assert_eq!(store.wal_size().unwrap(), WAL_MAGIC.len() as u64);
        grow(&mut tangle, &mut store, 4, 100);

        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
        // Confirmation flags survive the checkpoint.
        for tx in tangle.iter() {
            let id = tx.id();
            if tangle.attach_time_ms(&id).unwrap() < 100 {
                assert_eq!(recovered.status(&id), tangle.status(&id), "{id:?}");
            }
        }
    }

    #[test]
    fn torn_wal_tail_is_dropped() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        // Simulate a crash mid-append: truncate the last 5 bytes.
        let wal_path = dir.0.join("wal.biot");
        let data = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &data[..data.len() - 5]).unwrap();

        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        // One transaction lost (the torn one), everything earlier intact.
        assert_eq!(recovered.len(), tangle.len() - 1);
    }

    #[test]
    fn torn_tail_recovers_valid_prefix_at_every_byte_offset() {
        // Crash-consistency sweep: whatever byte the power died on while
        // the *last* record was being appended, recovery must keep every
        // complete earlier record and silently drop the torn tail.
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        let wal_path = dir.0.join("wal.biot");
        let before_last = fs::metadata(&wal_path).unwrap().len() as usize;
        grow(&mut tangle, &mut store, 1, 50);
        let full = fs::read(&wal_path).unwrap();
        assert!(full.len() > before_last, "last record must add bytes");

        for cut in before_last..full.len() {
            fs::write(&wal_path, &full[..cut]).unwrap();
            let recovered = LedgerStore::open(&dir.0)
                .unwrap()
                .recover()
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"))
                .expect("prefix state survives");
            // Everything before the last record is intact; the torn
            // record itself is gone.
            assert_eq!(recovered.len(), tangle.len() - 1, "cut at byte {cut}");
        }
        // And the untruncated log still recovers everything.
        fs::write(&wal_path, &full).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
    }

    #[test]
    fn corrupt_middle_record_is_an_error() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        let wal_path = dir.0.join("wal.biot");
        let mut data = fs::read(&wal_path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&wal_path, &data).unwrap();

        let result = LedgerStore::open(&dir.0).unwrap().recover();
        assert!(result.is_err(), "corruption in the middle must not pass silently");
    }

    #[test]
    fn checkpoint_is_atomic_under_reopen() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 3, 10);
        store.checkpoint(&tangle).unwrap();
        drop(store);
        // Reopen twice; state identical both times.
        let a = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        let b = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.tips(), b.tips());
    }

    #[test]
    fn pruned_ids_survive_checkpoint() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 6, 10);
        tangle.confirm_with_threshold(2);
        let pruned_count = tangle.snapshot(14);
        assert!(pruned_count > 0);
        store.checkpoint(&tangle).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        for tx in tangle.iter() {
            for p in tx.parents() {
                if tangle.is_pruned(&p) {
                    assert!(recovered.is_pruned(&p));
                }
            }
        }
    }
}
