//! # biot-store
//!
//! File-backed persistence for gateway replicas: a length-framed,
//! checksummed write-ahead log plus periodic snapshot files, with crash
//! recovery. This addresses the paper's "storage limitations" future-work
//! note (§VIII): combined with `Tangle::snapshot` pruning, a gateway's
//! disk footprint stays bounded while the replica survives restarts.
//!
//! ## Layout
//!
//! A store directory holds:
//!
//! * `snapshot.biot` — the last checkpoint (all rows of a
//!   [`TangleSnapshot`] in the wire codec, custom-framed).
//! * `wal.biot` — records appended since that checkpoint. The current
//!   (`BIOTWAL2`) format tags every record: tag 0 is a transaction
//!   (`[0][varint attach_ms][varint len][codec bytes]`), tag 1 is a
//!   credit event (`[1][varint len][biot_credit codec bytes]`) so
//!   behaviour evidence — including misbehaviour whose transactions never
//!   reached the tangle — survives a crash. Legacy untagged `BIOTWAL1`
//!   logs are still read.
//!
//! Recovery = restore the snapshot, then re-attach WAL records in order.
//! A torn final WAL record (crash mid-append) is detected by the codec
//! checksum and dropped. [`LedgerStore::recover_full`] returns the
//! replayed credit events alongside the tangle; feed them to
//! `Gateway::restore` so negative credit survives the restart.
//!
//! ## Example
//!
//! ```
//! use biot_store::LedgerStore;
//! use biot_tangle::graph::Tangle;
//! use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
//!
//! let dir = std::env::temp_dir().join(format!("biot-doc-{}", std::process::id()));
//! let mut store = LedgerStore::open(&dir)?;
//!
//! let mut tangle = Tangle::new();
//! let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
//! store.checkpoint(&tangle)?;
//!
//! let tx = TransactionBuilder::new(NodeId([1; 32]))
//!     .parents(genesis, genesis)
//!     .payload(Payload::Data(b"reading".to_vec()))
//!     .build();
//! tangle.attach(tx.clone(), 5)?;
//! store.append(&tx, 5)?;
//!
//! let recovered = LedgerStore::open(&dir)?.recover()?.expect("state on disk");
//! assert_eq!(recovered.len(), tangle.len());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use biot_credit::event::{decode_event, encode_event, CreditCodecError, CreditEvent};
use biot_tangle::codec::{decode_tx, encode_tx, CodecError};
use biot_tangle::graph::{Tangle, TangleError};
use biot_tangle::snapshot::TangleSnapshot;
use biot_tangle::tx::{Transaction, TxId};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A stored transaction failed to decode (and was not the final,
    /// possibly-torn WAL record).
    Codec(CodecError),
    /// A stored credit event failed to decode (and was not the final,
    /// possibly-torn WAL record).
    CreditCodec(CreditCodecError),
    /// Replaying the log produced an inconsistent ledger.
    Replay(TangleError),
    /// The snapshot file is structurally invalid.
    CorruptSnapshot(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o failure: {e}"),
            StoreError::Codec(e) => write!(f, "stored transaction corrupt: {e}"),
            StoreError::CreditCodec(e) => write!(f, "stored credit event corrupt: {e}"),
            StoreError::Replay(e) => write!(f, "log replay failed: {e}"),
            StoreError::CorruptSnapshot(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<CreditCodecError> for StoreError {
    fn from(e: CreditCodecError) -> Self {
        StoreError::CreditCodec(e)
    }
}

impl From<TangleError> for StoreError {
    fn from(e: TangleError) -> Self {
        StoreError::Replay(e)
    }
}

const SNAPSHOT_MAGIC: &[u8; 8] = b"BIOTSNP1";
/// Legacy WAL: untagged transaction records only.
const WAL_MAGIC_V1: &[u8; 8] = b"BIOTWAL1";
/// Current WAL: tagged records (transactions + credit events).
const WAL_MAGIC: &[u8; 8] = b"BIOTWAL2";

/// Tag prefixing a transaction record in a v2 WAL.
const WAL_TAG_TX: u8 = 0;
/// Tag prefixing a credit-event record in a v2 WAL.
const WAL_TAG_CREDIT: u8 = 1;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    for i in 0..10 {
        let byte = *input.get(*pos)?;
        *pos += 1;
        value |= ((byte & 0x7F) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            return Some(value);
        }
    }
    None
}

/// A directory-backed ledger store: snapshot file + write-ahead log.
pub struct LedgerStore {
    dir: PathBuf,
    wal: File,
    /// WAL format version in force: 2 for fresh stores, 1 when an old
    /// untagged log was found on open (appends then stay untagged so the
    /// file remains self-consistent).
    wal_version: u8,
}

/// Everything [`LedgerStore::recover_full`] can replay from disk.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// The tangle, when any transaction state was on disk.
    pub tangle: Option<Tangle>,
    /// Credit events in append order (empty for legacy v1 logs).
    pub credit_events: Vec<CreditEvent>,
}

impl fmt::Debug for LedgerStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LedgerStore").field("dir", &self.dir).finish()
    }
}

impl LedgerStore {
    /// Opens (creating if needed) a store directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let wal_path = dir.join("wal.biot");
        let fresh = !wal_path.exists();
        let mut wal = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&wal_path)?;
        let wal_version = if fresh {
            wal.write_all(WAL_MAGIC)?;
            wal.sync_data()?;
            2
        } else {
            let mut magic = [0u8; 8];
            let mut f = File::open(&wal_path)?;
            match f.read_exact(&mut magic) {
                Ok(()) if &magic == WAL_MAGIC_V1 => 1,
                // Unknown/short magics fail later, in recovery.
                _ => 2,
            }
        };
        Ok(Self {
            dir,
            wal,
            wal_version,
        })
    }

    /// Appends a freshly attached transaction to the WAL.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; on error the record may be torn,
    /// which recovery tolerates (the torn tail is dropped).
    pub fn append(&mut self, tx: &Transaction, attach_ms: u64) -> Result<(), StoreError> {
        let body = encode_tx(tx);
        let mut record = Vec::with_capacity(body.len() + 13);
        if self.wal_version >= 2 {
            record.push(WAL_TAG_TX);
        }
        write_varint(&mut record, attach_ms);
        write_varint(&mut record, body.len() as u64);
        record.extend_from_slice(&body);
        self.wal.write_all(&record)?;
        self.wal.sync_data()?;
        Ok(())
    }

    /// Appends credit events to the WAL (one write, one sync), so the
    /// behaviour evidence behind every credit value is as durable as the
    /// transactions themselves.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. Rejected on a legacy v1 WAL, whose
    /// untagged record format cannot carry credit events — checkpoint
    /// first to upgrade.
    pub fn append_credit_events(&mut self, events: &[CreditEvent]) -> Result<(), StoreError> {
        if self.wal_version < 2 {
            return Err(StoreError::CorruptSnapshot(
                "legacy v1 wal cannot hold credit events",
            ));
        }
        if events.is_empty() {
            return Ok(());
        }
        let mut record = Vec::new();
        for ev in events {
            let body = encode_event(ev);
            record.push(WAL_TAG_CREDIT);
            write_varint(&mut record, body.len() as u64);
            record.extend_from_slice(&body);
        }
        self.wal.write_all(&record)?;
        self.wal.sync_data()?;
        Ok(())
    }

    /// Writes a full checkpoint of `tangle` and truncates the WAL.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. The snapshot is written to a
    /// temporary file and renamed, so a crash mid-checkpoint leaves the
    /// previous checkpoint intact.
    pub fn checkpoint(&mut self, tangle: &Tangle) -> Result<(), StoreError> {
        let snap = TangleSnapshot::capture(tangle);
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        write_varint(&mut out, snap.rows().len() as u64);
        for (tx, attach_ms, confirmed) in snap.rows() {
            write_varint(&mut out, *attach_ms);
            out.push(u8::from(*confirmed));
            let body = encode_tx(tx);
            write_varint(&mut out, body.len() as u64);
            out.extend_from_slice(&body);
        }
        write_varint(&mut out, snap.pruned().len() as u64);
        for id in snap.pruned() {
            out.extend_from_slice(&id.0);
        }
        let tmp = self.dir.join("snapshot.tmp");
        let final_path = self.dir.join("snapshot.biot");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        // Start a fresh WAL (always current-format, upgrading v1 stores).
        let wal_path = self.dir.join("wal.biot");
        let mut wal = File::create(&wal_path)?;
        wal.write_all(WAL_MAGIC)?;
        wal.sync_data()?;
        self.wal = OpenOptions::new().append(true).read(true).open(&wal_path)?;
        self.wal_version = 2;
        Ok(())
    }

    /// [`checkpoint`](Self::checkpoint), then re-seeds the fresh WAL with
    /// `credit_events` — pass `CreditLedger::snapshot_events()` so the
    /// truncation never forgets misbehaviour (§IV-B). The carried set is
    /// bounded: one ΔT window of validations plus the misbehaviour list.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn checkpoint_with_credit(
        &mut self,
        tangle: &Tangle,
        credit_events: &[CreditEvent],
    ) -> Result<(), StoreError> {
        self.checkpoint(tangle)?;
        self.append_credit_events(credit_events)
    }

    /// Recovers the ledger from disk: snapshot (if any) plus WAL replay.
    ///
    /// Returns `Ok(None)` when the directory holds no state yet. A torn
    /// final WAL record is silently dropped; corruption anywhere else is
    /// an error.
    ///
    /// # Errors
    ///
    /// See [`StoreError`].
    pub fn recover(&self) -> Result<Option<Tangle>, StoreError> {
        Ok(self.recover_full()?.tangle)
    }

    /// Recovers everything on disk: the tangle (snapshot + WAL replay)
    /// *and* the credit events appended since the last checkpoint, in
    /// order — replay them (`CreditLedger::from_events` /
    /// `Gateway::restore`) so credit survives the restart. Torn-tail
    /// semantics are identical to [`recover`](Self::recover).
    ///
    /// # Errors
    ///
    /// See [`StoreError`].
    pub fn recover_full(&self) -> Result<RecoveredState, StoreError> {
        let snap_path = self.dir.join("snapshot.biot");
        let mut tangle = if snap_path.exists() {
            Some(self.read_snapshot(&snap_path)?)
        } else {
            None
        };
        let mut credit_events = Vec::new();

        let wal_path = self.dir.join("wal.biot");
        if wal_path.exists() {
            let mut data = Vec::new();
            File::open(&wal_path)?.read_to_end(&mut data)?;
            if data.len() >= WAL_MAGIC.len() {
                let tagged = match &data[..WAL_MAGIC.len()] {
                    m if m == WAL_MAGIC => true,
                    m if m == WAL_MAGIC_V1 => false,
                    _ => return Err(StoreError::CorruptSnapshot("wal magic")),
                };
                let mut pos = WAL_MAGIC.len();
                while pos < data.len() {
                    let tag = if tagged {
                        let t = data[pos];
                        pos += 1;
                        t
                    } else {
                        WAL_TAG_TX
                    };
                    match tag {
                        WAL_TAG_TX => {
                            let Some(attach_ms) = read_varint(&data, &mut pos) else {
                                break; // torn tail
                            };
                            let Some(len) = read_varint(&data, &mut pos) else {
                                break;
                            };
                            // Checked arithmetic: a torn or corrupt length
                            // varint can decode to any u64; it must never
                            // overflow into a bogus in-bounds `end`.
                            let Some(end) = pos.checked_add(len as usize) else {
                                break; // torn tail
                            };
                            if end > data.len() {
                                break; // torn tail
                            }
                            match decode_tx(&data[pos..end]) {
                                Ok(tx) => {
                                    let t = tangle.get_or_insert_with(Tangle::new);
                                    if tx.is_genesis() {
                                        if t.genesis().is_none() {
                                            t.attach_genesis(tx.issuer, attach_ms);
                                        }
                                    } else {
                                        t.attach(tx, attach_ms)?;
                                    }
                                }
                                Err(e) => {
                                    // Only the final record may be torn/corrupt.
                                    if end == data.len() {
                                        break;
                                    }
                                    return Err(e.into());
                                }
                            }
                            pos = end;
                        }
                        WAL_TAG_CREDIT => {
                            let Some(len) = read_varint(&data, &mut pos) else {
                                break; // torn tail
                            };
                            let Some(end) = pos.checked_add(len as usize) else {
                                break; // torn tail
                            };
                            if end > data.len() {
                                break; // torn tail
                            }
                            match decode_event(&data[pos..end]) {
                                Ok(ev) => credit_events.push(ev),
                                Err(e) => {
                                    // Only the final record may be torn/corrupt.
                                    if end == data.len() {
                                        break;
                                    }
                                    return Err(e.into());
                                }
                            }
                            pos = end;
                        }
                        _ => return Err(StoreError::CorruptSnapshot("wal record tag")),
                    }
                }
            }
        }
        Ok(RecoveredState {
            tangle,
            credit_events,
        })
    }

    fn read_snapshot(&self, path: &Path) -> Result<Tangle, StoreError> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        if data.len() < SNAPSHOT_MAGIC.len() || &data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(StoreError::CorruptSnapshot("magic"));
        }
        let mut pos = SNAPSHOT_MAGIC.len();
        let n = read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("row count"))?;
        let mut rows = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let attach_ms =
                read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("attach time"))?;
            let confirmed = *data.get(pos).ok_or(StoreError::CorruptSnapshot("flag"))? != 0;
            pos += 1;
            let len =
                read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("tx length"))?;
            let end = pos
                .checked_add(len as usize)
                .ok_or(StoreError::CorruptSnapshot("tx length"))?;
            if end > data.len() {
                return Err(StoreError::CorruptSnapshot("tx body"));
            }
            let tx = decode_tx(&data[pos..end])?;
            pos = end;
            rows.push((tx, attach_ms, confirmed));
        }
        let n_pruned =
            read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("pruned count"))?;
        let mut pruned = Vec::with_capacity(n_pruned as usize);
        for _ in 0..n_pruned {
            let end = pos + 32;
            let slice = data
                .get(pos..end)
                .ok_or(StoreError::CorruptSnapshot("pruned id"))?;
            let mut id = [0u8; 32];
            id.copy_from_slice(slice);
            pruned.push(TxId(id));
            pos = end;
        }
        let snap = TangleSnapshot::from_rows(rows, pruned);
        Ok(snap.restore()?)
    }

    /// Size of the current WAL in bytes (for checkpoint policies).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn wal_size(&self) -> Result<u64, StoreError> {
        Ok(fs::metadata(self.dir.join("wal.biot"))?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_NO: AtomicU64 = AtomicU64::new(0);

    /// A unique temp directory per test, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            let n = DIR_NO.fetch_add(1, Ordering::SeqCst);
            let path = std::env::temp_dir()
                .join(format!("biot-store-test-{}-{n}", std::process::id()));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn grow(tangle: &mut Tangle, store: &mut LedgerStore, n: usize, base_ms: u64) {
        for i in 0..n {
            let tips = tangle.tips();
            let tx = TransactionBuilder::new(NodeId([(i + 1) as u8; 32]))
                .parents(tips[0], *tips.last().unwrap())
                .payload(Payload::Data(vec![i as u8, base_ms as u8]))
                .timestamp_ms(base_ms + i as u64)
                .build();
            let at = base_ms + i as u64;
            tangle.attach(tx.clone(), at).unwrap();
            store.append(&tx, at).unwrap();
        }
    }

    #[test]
    fn fresh_store_recovers_nothing() {
        let dir = TempDir::new();
        let store = LedgerStore::open(&dir.0).unwrap();
        assert!(store.recover().unwrap().is_none());
    }

    #[test]
    fn wal_only_recovery() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 5, 10);

        let recovered = store.recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
    }

    #[test]
    fn checkpoint_plus_wal_recovery() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 5, 10);
        tangle.confirm_with_threshold(2);
        store.checkpoint(&tangle).unwrap();
        // WAL restarts empty after a checkpoint.
        assert_eq!(store.wal_size().unwrap(), WAL_MAGIC.len() as u64);
        grow(&mut tangle, &mut store, 4, 100);

        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
        // Confirmation flags survive the checkpoint.
        for tx in tangle.iter() {
            let id = tx.id();
            if tangle.attach_time_ms(&id).unwrap() < 100 {
                assert_eq!(recovered.status(&id), tangle.status(&id), "{id:?}");
            }
        }
    }

    #[test]
    fn torn_wal_tail_is_dropped() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        // Simulate a crash mid-append: truncate the last 5 bytes.
        let wal_path = dir.0.join("wal.biot");
        let data = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &data[..data.len() - 5]).unwrap();

        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        // One transaction lost (the torn one), everything earlier intact.
        assert_eq!(recovered.len(), tangle.len() - 1);
    }

    #[test]
    fn torn_tail_recovers_valid_prefix_at_every_byte_offset() {
        // Crash-consistency sweep: whatever byte the power died on while
        // the *last* record was being appended, recovery must keep every
        // complete earlier record and silently drop the torn tail.
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        let wal_path = dir.0.join("wal.biot");
        let before_last = fs::metadata(&wal_path).unwrap().len() as usize;
        grow(&mut tangle, &mut store, 1, 50);
        let full = fs::read(&wal_path).unwrap();
        assert!(full.len() > before_last, "last record must add bytes");

        for cut in before_last..full.len() {
            fs::write(&wal_path, &full[..cut]).unwrap();
            let recovered = LedgerStore::open(&dir.0)
                .unwrap()
                .recover()
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"))
                .expect("prefix state survives");
            // Everything before the last record is intact; the torn
            // record itself is gone.
            assert_eq!(recovered.len(), tangle.len() - 1, "cut at byte {cut}");
        }
        // And the untruncated log still recovers everything.
        fs::write(&wal_path, &full).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
    }

    #[test]
    fn corrupt_middle_record_is_an_error() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        let wal_path = dir.0.join("wal.biot");
        let mut data = fs::read(&wal_path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&wal_path, &data).unwrap();

        let result = LedgerStore::open(&dir.0).unwrap().recover();
        assert!(result.is_err(), "corruption in the middle must not pass silently");
    }

    #[test]
    fn checkpoint_is_atomic_under_reopen() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 3, 10);
        store.checkpoint(&tangle).unwrap();
        drop(store);
        // Reopen twice; state identical both times.
        let a = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        let b = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.tips(), b.tips());
    }

    fn event(n: u8, secs: u64, weight: f64) -> CreditEvent {
        CreditEvent::validated(NodeId([n; 32]), weight, SimTime::from_secs(secs))
    }

    fn mis(n: u8, secs: u64) -> CreditEvent {
        CreditEvent::misbehaved(
            NodeId([n; 32]),
            biot_credit::Misbehavior::DoubleSpend,
            SimTime::from_secs(secs),
        )
    }

    use biot_net::time::SimTime;

    #[test]
    fn credit_events_roundtrip_interleaved_with_txs() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        store.append_credit_events(&[event(1, 1, 1.0)]).unwrap();
        grow(&mut tangle, &mut store, 3, 10);
        store
            .append_credit_events(&[mis(2, 12), event(1, 13, 4.0)])
            .unwrap();
        grow(&mut tangle, &mut store, 2, 40);

        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        assert_eq!(
            recovered.credit_events,
            vec![event(1, 1, 1.0), mis(2, 12), event(1, 13, 4.0)],
            "events replay losslessly, in append order"
        );
    }

    #[test]
    fn torn_credit_tail_recovers_valid_prefix_at_every_byte_offset() {
        // The credit analogue of the tx torn-tail sweep: power dies at any
        // byte while the last record (a credit event) is appended.
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 2, 10);
        store.append_credit_events(&[mis(3, 11)]).unwrap();

        let wal_path = dir.0.join("wal.biot");
        let before_last = fs::metadata(&wal_path).unwrap().len() as usize;
        store.append_credit_events(&[event(4, 12, 2.0)]).unwrap();
        let full = fs::read(&wal_path).unwrap();
        assert!(full.len() > before_last);

        for cut in before_last..full.len() {
            fs::write(&wal_path, &full[..cut]).unwrap();
            let recovered = LedgerStore::open(&dir.0)
                .unwrap()
                .recover_full()
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            assert_eq!(
                recovered.credit_events,
                vec![mis(3, 11)],
                "cut at byte {cut}: earlier event intact, torn one dropped"
            );
            assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        }
        fs::write(&wal_path, &full).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        assert_eq!(recovered.credit_events, vec![mis(3, 11), event(4, 12, 2.0)]);
    }

    #[test]
    fn corrupt_middle_credit_record_is_an_error() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        let wal_clean = fs::metadata(dir.0.join("wal.biot")).unwrap().len() as usize;
        store.append_credit_events(&[mis(1, 5)]).unwrap();
        grow(&mut tangle, &mut store, 2, 10);

        // Flip a bit inside the credit event's body (not the last record,
        // so torn-tail tolerance does not apply).
        let wal_path = dir.0.join("wal.biot");
        let mut data = fs::read(&wal_path).unwrap();
        data[wal_clean + 10] ^= 0x01;
        fs::write(&wal_path, &data).unwrap();
        let result = LedgerStore::open(&dir.0).unwrap().recover_full();
        assert!(result.is_err(), "mid-log credit corruption must not pass");
    }

    #[test]
    fn legacy_v1_wal_still_recovers() {
        // Hand-write a v1 (untagged) WAL and check both that it recovers
        // and that post-open appends keep the legacy framing.
        let dir = TempDir::new();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        let mut data = WAL_MAGIC_V1.to_vec();
        let body = encode_tx(&genesis_tx);
        write_varint(&mut data, 0);
        write_varint(&mut data, body.len() as u64);
        data.extend_from_slice(&body);
        fs::write(dir.0.join("wal.biot"), &data).unwrap();

        let mut store = LedgerStore::open(&dir.0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);
        let recovered = store.recover_full().unwrap();
        assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        assert!(recovered.credit_events.is_empty());
        // Credit events need the tagged format; a checkpoint upgrades.
        assert!(store.append_credit_events(&[mis(1, 5)]).is_err());
        store.checkpoint(&tangle).unwrap();
        store.append_credit_events(&[mis(1, 5)]).unwrap();
        let recovered = store.recover_full().unwrap();
        assert_eq!(recovered.credit_events, vec![mis(1, 5)]);
    }

    #[test]
    fn checkpoint_with_credit_carries_events_across_truncation() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        store
            .append_credit_events(&[event(1, 1, 1.0), mis(2, 2)])
            .unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        // A plain checkpoint would drop the events with the WAL; the
        // credit-aware one re-seeds them.
        store
            .checkpoint_with_credit(&tangle, &[event(1, 1, 1.0), mis(2, 2)])
            .unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        assert_eq!(recovered.credit_events, vec![event(1, 1, 1.0), mis(2, 2)]);
    }

    // WAL round-trip fuzz: any event stream appended in any batching must
    // recover bit-for-bat identical and in order.
    use proptest::prelude::*;
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_event_streams_roundtrip_through_the_wal(
            stream in proptest::collection::vec(
                (any::<bool>(), 0u8..5, 0u64..100_000, 1u32..1000),
                0..40,
            ),
            batch in 1usize..7,
        ) {
            let dir = TempDir::new();
            let mut store = LedgerStore::open(&dir.0).unwrap();
            let events: Vec<CreditEvent> = stream
                .iter()
                .map(|&(is_tx, n, at_ms, w)| {
                    if is_tx {
                        CreditEvent::validated(
                            NodeId([n; 32]),
                            w as f64,
                            SimTime::from_millis(at_ms),
                        )
                    } else {
                        CreditEvent::misbehaved(
                            NodeId([n; 32]),
                            biot_credit::Misbehavior::LazyTips,
                            SimTime::from_millis(at_ms),
                        )
                    }
                })
                .collect();
            for chunk in events.chunks(batch) {
                store.append_credit_events(chunk).unwrap();
            }
            let recovered = store.recover_full().unwrap();
            prop_assert_eq!(recovered.credit_events, events);
        }
    }

    #[test]
    fn pruned_ids_survive_checkpoint() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 6, 10);
        tangle.confirm_with_threshold(2);
        let pruned_count = tangle.snapshot(14);
        assert!(pruned_count > 0);
        store.checkpoint(&tangle).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        for tx in tangle.iter() {
            for p in tx.parents() {
                if tangle.is_pruned(&p) {
                    assert!(recovered.is_pruned(&p));
                }
            }
        }
    }
}
