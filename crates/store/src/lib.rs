//! # biot-store
//!
//! File-backed persistence for gateway replicas: a length-framed,
//! checksummed write-ahead log plus periodic snapshot files, with crash
//! recovery. This addresses the paper's "storage limitations" future-work
//! note (§VIII): combined with `Tangle::snapshot` pruning, a gateway's
//! disk footprint stays bounded while the replica survives restarts.
//!
//! ## Layout
//!
//! A store directory holds:
//!
//! * `snapshot.biot` — the last checkpoint (all rows of a
//!   [`TangleSnapshot`] in the wire codec, custom-framed). The current
//!   (`BIOTSNP2`) format additionally records a *fold watermark* (the
//!   first WAL segment not yet folded in) and any credit events carried
//!   out of folded segments; legacy `BIOTSNP1` snapshots are still read.
//! * `wal.biot`, `wal-000001.biot`, `wal-000002.biot`, … — the
//!   write-ahead log, split into numbered segments (`wal.biot` is
//!   segment 0). Appends go to the newest segment; once it exceeds
//!   [`StoreConfig::segment_bytes`] it is *sealed* and a fresh segment is
//!   started. Each segment carries its own magic. The current
//!   (`BIOTWAL2`) format tags every record: tag 0 is a transaction
//!   (`[0][varint attach_ms][varint len][codec bytes]`), tag 1 is a
//!   credit event (`[1][varint len][biot_credit codec bytes]`) so
//!   behaviour evidence — including misbehaviour whose transactions never
//!   reached the tangle — survives a crash. Legacy untagged `BIOTWAL1`
//!   logs are still read (as segment 0).
//!
//! Recovery = restore the snapshot, then re-attach the records of every
//! segment at or past the watermark, in segment order. A torn final
//! record in the *newest* segment (crash mid-append) is detected by the
//! codec checksum and dropped; sealed segments must replay completely —
//! corruption there is an error, exactly as mid-file corruption was for
//! the single-file WAL. [`LedgerStore::recover_full`] returns the
//! replayed credit events alongside the tangle; feed them to
//! `Gateway::restore` so negative credit survives the restart.
//!
//! ## Incremental compaction
//!
//! [`LedgerStore::compact_step`] folds the *oldest sealed* segment into
//! the snapshot — transactions join the snapshot rows, credit events are
//! carried in the snapshot's credit section so replay order is preserved
//! — and advances the watermark. The commit point is the atomic snapshot
//! rename: a crash before the folded segment file is unlinked merely
//! leaves a stale segment that recovery (and the next compaction) skips
//! by watermark. Checkpointing thus becomes a continuous process:
//! bounded, background-able steps instead of one O(n) pause.
//! [`LedgerStore::maybe_checkpoint`] drives full checkpoints from a
//! [`CheckpointPolicy`] (WAL bytes / segment-count thresholds) so callers
//! stop hand-rolling `wal_size()` checks.
//!
//! ## Example
//!
//! ```
//! use biot_store::LedgerStore;
//! use biot_tangle::graph::Tangle;
//! use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
//!
//! let dir = std::env::temp_dir().join(format!("biot-doc-{}", std::process::id()));
//! let mut store = LedgerStore::open(&dir)?;
//!
//! let mut tangle = Tangle::new();
//! let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
//! store.checkpoint(&tangle)?;
//!
//! let tx = TransactionBuilder::new(NodeId([1; 32]))
//!     .parents(genesis, genesis)
//!     .payload(Payload::Data(b"reading".to_vec()))
//!     .build();
//! tangle.attach(tx.clone(), 5)?;
//! store.append(&tx, 5)?;
//!
//! let recovered = LedgerStore::open(&dir)?.recover()?.expect("state on disk");
//! assert_eq!(recovered.len(), tangle.len());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use biot_credit::event::{decode_event, encode_event, CreditCodecError, CreditEvent};
use biot_tangle::codec::{decode_tx, encode_tx, CodecError};
use biot_tangle::graph::{Tangle, TangleError};
use biot_tangle::snapshot::TangleSnapshot;
use biot_tangle::tx::{Transaction, TxId};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A stored transaction failed to decode (and was not the final,
    /// possibly-torn WAL record).
    Codec(CodecError),
    /// A stored credit event failed to decode (and was not the final,
    /// possibly-torn WAL record).
    CreditCodec(CreditCodecError),
    /// Replaying the log produced an inconsistent ledger.
    Replay(TangleError),
    /// The snapshot file is structurally invalid.
    CorruptSnapshot(&'static str),
    /// A mutating call on a store opened with
    /// [`LedgerStore::open_read_only`].
    ReadOnly,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o failure: {e}"),
            StoreError::Codec(e) => write!(f, "stored transaction corrupt: {e}"),
            StoreError::CreditCodec(e) => write!(f, "stored credit event corrupt: {e}"),
            StoreError::Replay(e) => write!(f, "log replay failed: {e}"),
            StoreError::CorruptSnapshot(what) => write!(f, "snapshot corrupt: {what}"),
            StoreError::ReadOnly => write!(f, "store opened read-only"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<CreditCodecError> for StoreError {
    fn from(e: CreditCodecError) -> Self {
        StoreError::CreditCodec(e)
    }
}

impl From<TangleError> for StoreError {
    fn from(e: TangleError) -> Self {
        StoreError::Replay(e)
    }
}

/// Legacy snapshot: rows + pruned ids only.
const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"BIOTSNP1";
/// Current snapshot: fold watermark + rows + pruned ids + carried credit
/// events (see the module docs on incremental compaction).
const SNAPSHOT_MAGIC: &[u8; 8] = b"BIOTSNP2";
/// Legacy WAL: untagged transaction records only.
const WAL_MAGIC_V1: &[u8; 8] = b"BIOTWAL1";
/// Current WAL: tagged records (transactions + credit events).
const WAL_MAGIC: &[u8; 8] = b"BIOTWAL2";

/// Tag prefixing a transaction record in a v2 WAL.
const WAL_TAG_TX: u8 = 0;
/// Tag prefixing a credit-event record in a v2 WAL.
const WAL_TAG_CREDIT: u8 = 1;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    for i in 0..10 {
        let byte = *input.get(*pos)?;
        *pos += 1;
        value |= ((byte & 0x7F) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            return Some(value);
        }
    }
    None
}

/// Tuning knobs for the on-disk layout.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Seal the active WAL segment and start a fresh one once it exceeds
    /// this many bytes. Default 4 MiB — large enough that short-lived
    /// stores behave exactly like the historical single-file WAL.
    pub segment_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 4 * 1024 * 1024,
        }
    }
}

/// When [`LedgerStore::maybe_checkpoint`] should write a full checkpoint.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint once the WAL (all segments together) reaches this many
    /// bytes. Default 1 MiB.
    pub max_wal_bytes: u64,
    /// Checkpoint once more than this many segments exist — incremental
    /// compaction keeps up under steady load, so hitting this means the
    /// log is outgrowing it. Default 4.
    pub max_segments: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self {
            max_wal_bytes: 1024 * 1024,
            max_segments: 4,
        }
    }
}

/// Path of WAL segment `n` inside `dir`: segment 0 keeps the historical
/// name `wal.biot`, later segments are `wal-NNNNNN.biot`.
fn segment_path(dir: &Path, n: u64) -> PathBuf {
    if n == 0 {
        dir.join("wal.biot")
    } else {
        dir.join(format!("wal-{n:06}.biot"))
    }
}

/// Every WAL segment present in `dir`, sorted oldest first.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    let legacy = dir.join("wal.biot");
    if legacy.exists() {
        out.push((0, legacy));
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".biot"))
        else {
            continue;
        };
        if num.len() == 6 && num.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = num.parse::<u64>() {
                if n > 0 {
                    out.push((n, entry.path()));
                }
            }
        }
    }
    out.sort_unstable_by_key(|(n, _)| *n);
    Ok(out)
}

/// A directory-backed ledger store: snapshot file + segmented write-ahead
/// log.
pub struct LedgerStore {
    dir: PathBuf,
    /// The active WAL segment's append handle; `None` for a store opened
    /// with [`LedgerStore::open_read_only`], which never touches the
    /// write path.
    wal: Option<File>,
    /// WAL format version in force: 2 for fresh stores, 1 when an old
    /// untagged log was found on open (appends then stay untagged so the
    /// file remains self-consistent until the segment is sealed).
    wal_version: u8,
    /// Number of the segment `wal` appends to (always the newest).
    active: u64,
    config: StoreConfig,
}

/// Decoded contents of a snapshot file.
struct SnapshotFile {
    tangle: Tangle,
    /// Credit events folded out of compacted WAL segments, in their
    /// original append order (they replay before every live segment).
    carried: Vec<CreditEvent>,
    /// First WAL segment *not* folded into this snapshot; segments below
    /// this number are stale leftovers of an interrupted compaction and
    /// must be ignored.
    next_segment: u64,
}

/// Everything [`LedgerStore::recover_full`] can replay from disk.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// The tangle, when any transaction state was on disk.
    pub tangle: Option<Tangle>,
    /// Credit events in append order (empty for legacy v1 logs).
    pub credit_events: Vec<CreditEvent>,
}

impl fmt::Debug for LedgerStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LedgerStore").field("dir", &self.dir).finish()
    }
}

impl LedgerStore {
    /// Opens (creating if needed) a store directory with default tuning.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_config(dir, StoreConfig::default())
    }

    /// Opens (creating if needed) a store directory.
    ///
    /// Appends resume on the newest existing WAL segment; a brand-new
    /// directory starts at segment 0 (`wal.biot`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open_with_config(
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let (active, wal_path, fresh) = match list_segments(&dir)?.pop() {
            Some((n, path)) => (n, path, false),
            None => (0, segment_path(&dir, 0), true),
        };
        let mut wal = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&wal_path)?;
        let wal_version = if fresh {
            wal.write_all(WAL_MAGIC)?;
            wal.sync_data()?;
            2
        } else {
            let mut magic = [0u8; 8];
            let mut f = File::open(&wal_path)?;
            match f.read_exact(&mut magic) {
                Ok(()) if &magic == WAL_MAGIC_V1 => 1,
                // Unknown/short magics fail later, in recovery.
                _ => 2,
            }
        };
        Ok(Self {
            dir,
            wal: Some(wal),
            wal_version,
            active,
            config,
        })
    }

    /// Opens an *existing* store directory for reading only — the mode an
    /// archival node serves queries from: snapshot + sealed segments are
    /// readable, but the WAL write path is never taken (no segment is
    /// created, no magic written, no append handle held). Every mutating
    /// call ([`append`](Self::append), [`checkpoint`](Self::checkpoint),
    /// [`compact_step`](Self::compact_step), …) fails with
    /// [`StoreError::ReadOnly`].
    ///
    /// [`recover_full`](Self::recover_full) additionally tolerates a
    /// *concurrent* writer's incremental compaction: if a segment file
    /// vanishes between the directory listing and its read (the
    /// compaction's atomic snapshot rename plus segment unlink), recovery
    /// restarts from the fresh snapshot instead of failing.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory does not exist; other
    /// filesystem failures propagate.
    pub fn open_read_only(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        if !dir.is_dir() {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                format!("store directory {} does not exist", dir.display()),
            )));
        }
        Ok(Self {
            dir,
            wal: None,
            wal_version: 2,
            active: 0,
            config: StoreConfig::default(),
        })
    }

    /// Whether this handle was opened with
    /// [`open_read_only`](Self::open_read_only).
    pub fn is_read_only(&self) -> bool {
        self.wal.is_none()
    }

    /// Seals the active segment and starts the next one once it has
    /// outgrown [`StoreConfig::segment_bytes`]. Called after every append
    /// so a segment exceeds the threshold by at most one record.
    fn roll_if_full(&mut self) -> Result<(), StoreError> {
        let wal = self.wal.as_ref().ok_or(StoreError::ReadOnly)?;
        if wal.metadata()?.len() < self.config.segment_bytes {
            return Ok(());
        }
        let next = self.active + 1;
        let path = segment_path(&self.dir, next);
        let mut f = File::create(&path)?;
        f.write_all(WAL_MAGIC)?;
        f.sync_data()?;
        self.wal = Some(OpenOptions::new().append(true).read(true).open(&path)?);
        // Fresh segments are always current-format, even when segment 0
        // was a legacy v1 log.
        self.wal_version = 2;
        self.active = next;
        Ok(())
    }

    /// Appends a freshly attached transaction to the WAL.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; on error the record may be torn,
    /// which recovery tolerates (the torn tail is dropped).
    pub fn append(&mut self, tx: &Transaction, attach_ms: u64) -> Result<(), StoreError> {
        let body = encode_tx(tx);
        let mut record = Vec::with_capacity(body.len() + 13);
        if self.wal_version >= 2 {
            record.push(WAL_TAG_TX);
        }
        write_varint(&mut record, attach_ms);
        write_varint(&mut record, body.len() as u64);
        record.extend_from_slice(&body);
        let wal = self.wal.as_mut().ok_or(StoreError::ReadOnly)?;
        wal.write_all(&record)?;
        wal.sync_data()?;
        self.roll_if_full()
    }

    /// Appends credit events to the WAL (one write, one sync), so the
    /// behaviour evidence behind every credit value is as durable as the
    /// transactions themselves.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. Rejected on a legacy v1 WAL, whose
    /// untagged record format cannot carry credit events — checkpoint
    /// first to upgrade.
    pub fn append_credit_events(&mut self, events: &[CreditEvent]) -> Result<(), StoreError> {
        if self.wal_version < 2 {
            return Err(StoreError::CorruptSnapshot(
                "legacy v1 wal cannot hold credit events",
            ));
        }
        if events.is_empty() {
            return Ok(());
        }
        let mut record = Vec::new();
        for ev in events {
            let body = encode_event(ev);
            record.push(WAL_TAG_CREDIT);
            write_varint(&mut record, body.len() as u64);
            record.extend_from_slice(&body);
        }
        let wal = self.wal.as_mut().ok_or(StoreError::ReadOnly)?;
        wal.write_all(&record)?;
        wal.sync_data()?;
        self.roll_if_full()
    }

    /// Writes a full checkpoint of `tangle` and truncates the WAL.
    ///
    /// When a snapshot already exists and the WAL holds no records, this
    /// is a no-op: nothing was appended since the last checkpoint, so
    /// rewriting the snapshot would be pure i/o churn. (Status-only
    /// changes — confirmations on a quiet ledger — are re-derived by the
    /// gateway's refresh after recovery, so skipping them loses nothing
    /// durable.)
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. The snapshot is written to a
    /// temporary file and renamed, so a crash mid-checkpoint leaves the
    /// previous checkpoint intact.
    pub fn checkpoint(&mut self, tangle: &Tangle) -> Result<(), StoreError> {
        if self.wal.is_none() {
            return Err(StoreError::ReadOnly);
        }
        if self.dir.join("snapshot.biot").exists() && !self.has_wal_records()? {
            return Ok(());
        }
        self.write_snapshot_file(Some(tangle), &[], 0)?;
        // Drop every WAL segment and start a fresh segment 0 (always
        // current-format, upgrading v1 stores). A crash before the
        // deletions finish merely leaves segments whose records replay as
        // duplicates, which recovery tolerates.
        for (_, path) in list_segments(&self.dir)? {
            fs::remove_file(&path)?;
        }
        let wal_path = segment_path(&self.dir, 0);
        let mut wal = File::create(&wal_path)?;
        wal.write_all(WAL_MAGIC)?;
        wal.sync_data()?;
        self.wal = Some(OpenOptions::new().append(true).read(true).open(&wal_path)?);
        self.wal_version = 2;
        self.active = 0;
        Ok(())
    }

    /// Whether any WAL segment holds at least one record (i.e. is more
    /// than a bare magic header).
    fn has_wal_records(&self) -> Result<bool, StoreError> {
        for (_, path) in list_segments(&self.dir)? {
            if fs::metadata(&path)?.len() > WAL_MAGIC.len() as u64 {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Serializes `tangle` (plus carried credit events and the fold
    /// watermark) and atomically replaces `snapshot.biot`.
    fn write_snapshot_file(
        &self,
        tangle: Option<&Tangle>,
        carried: &[CreditEvent],
        next_segment: u64,
    ) -> Result<(), StoreError> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        write_varint(&mut out, next_segment);
        match tangle {
            Some(tangle) => {
                let snap = TangleSnapshot::capture(tangle);
                write_varint(&mut out, snap.rows().len() as u64);
                for (tx, attach_ms, confirmed) in snap.rows() {
                    write_varint(&mut out, *attach_ms);
                    out.push(u8::from(*confirmed));
                    let body = encode_tx(tx);
                    write_varint(&mut out, body.len() as u64);
                    out.extend_from_slice(&body);
                }
                write_varint(&mut out, snap.pruned().len() as u64);
                for id in snap.pruned() {
                    out.extend_from_slice(&id.0);
                }
            }
            None => {
                // No ledger state yet (a fold of a credit-only segment):
                // zero rows, zero pruned ids.
                write_varint(&mut out, 0);
                write_varint(&mut out, 0);
            }
        }
        write_varint(&mut out, carried.len() as u64);
        for ev in carried {
            let body = encode_event(ev);
            write_varint(&mut out, body.len() as u64);
            out.extend_from_slice(&body);
        }
        let tmp = self.dir.join("snapshot.tmp");
        let final_path = self.dir.join("snapshot.biot");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        Ok(())
    }

    /// Runs [`checkpoint`](Self::checkpoint) when `policy` says the WAL
    /// has grown past its thresholds; returns whether it did. Call this
    /// on a timer or after batches instead of hand-rolling
    /// [`wal_size`](Self::wal_size) comparisons.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn maybe_checkpoint(
        &mut self,
        tangle: &Tangle,
        policy: &CheckpointPolicy,
    ) -> Result<bool, StoreError> {
        if !self.checkpoint_due(policy)? {
            return Ok(false);
        }
        self.checkpoint(tangle)?;
        Ok(true)
    }

    /// [`maybe_checkpoint`](Self::maybe_checkpoint) that re-seeds credit
    /// events into the fresh WAL when it does checkpoint — the policy-
    /// driven analogue of
    /// [`checkpoint_with_credit`](Self::checkpoint_with_credit).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn maybe_checkpoint_with_credit(
        &mut self,
        tangle: &Tangle,
        credit_events: &[CreditEvent],
        policy: &CheckpointPolicy,
    ) -> Result<bool, StoreError> {
        if !self.checkpoint_due(policy)? {
            return Ok(false);
        }
        self.checkpoint_with_credit(tangle, credit_events)?;
        Ok(true)
    }

    fn checkpoint_due(&self, policy: &CheckpointPolicy) -> Result<bool, StoreError> {
        Ok(self.wal_size()? >= policy.max_wal_bytes
            || self.segment_count()? > policy.max_segments)
    }

    /// One bounded step of incremental compaction: folds the oldest
    /// *sealed* WAL segment into the snapshot and advances the fold
    /// watermark. Transactions join the snapshot rows; the segment's
    /// credit events are carried inside the snapshot so replay order is
    /// preserved. Returns `false` when only the active segment remains
    /// (nothing to fold).
    ///
    /// The atomic snapshot rename is the commit point: a crash before the
    /// folded segment is unlinked leaves a stale file that recovery — and
    /// the next `compact_step` — skips by watermark.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; corruption inside the folded
    /// segment surfaces as the corresponding [`StoreError`].
    pub fn compact_step(&mut self) -> Result<bool, StoreError> {
        if self.wal.is_none() {
            return Err(StoreError::ReadOnly);
        }
        let snap_path = self.dir.join("snapshot.biot");
        let (mut tangle, mut carried, watermark) = if snap_path.exists() {
            let snap = self.read_snapshot_file(&snap_path)?;
            (Some(snap.tangle), snap.carried, snap.next_segment)
        } else {
            (None, Vec::new(), 0)
        };
        let mut live = Vec::new();
        for (n, path) in list_segments(&self.dir)? {
            if n < watermark {
                // Leftover of an interrupted compaction — already folded.
                fs::remove_file(&path)?;
            } else {
                live.push((n, path));
            }
        }
        // Never fold the newest segment: it is still being appended to.
        if live.len() < 2 {
            return Ok(false);
        }
        let (n, path) = &live[0];
        let data = fs::read(path)?;
        replay_segment(&data, false, &mut tangle, &mut carried)?;
        self.write_snapshot_file(tangle.as_ref(), &carried, n + 1)?;
        fs::remove_file(path)?;
        Ok(true)
    }

    /// [`checkpoint`](Self::checkpoint), then re-seeds the fresh WAL with
    /// `credit_events` — pass `CreditLedger::snapshot_events()` so the
    /// truncation never forgets misbehaviour (§IV-B). The carried set is
    /// bounded: one ΔT window of validations plus the misbehaviour list.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn checkpoint_with_credit(
        &mut self,
        tangle: &Tangle,
        credit_events: &[CreditEvent],
    ) -> Result<(), StoreError> {
        self.checkpoint(tangle)?;
        self.append_credit_events(credit_events)
    }

    /// Recovers the ledger from disk: snapshot (if any) plus WAL replay.
    ///
    /// Returns `Ok(None)` when the directory holds no state yet. A torn
    /// final WAL record is silently dropped; corruption anywhere else is
    /// an error.
    ///
    /// # Errors
    ///
    /// See [`StoreError`].
    pub fn recover(&self) -> Result<Option<Tangle>, StoreError> {
        Ok(self.recover_full()?.tangle)
    }

    /// Recovers everything on disk: the tangle (snapshot + WAL replay)
    /// *and* the credit events appended since the last checkpoint, in
    /// order — replay them (`CreditLedger::from_events` /
    /// `Gateway::restore`) so credit survives the restart. Torn-tail
    /// semantics are identical to [`recover`](Self::recover).
    ///
    /// # Errors
    ///
    /// See [`StoreError`].
    pub fn recover_full(&self) -> Result<RecoveredState, StoreError> {
        // A concurrent writer's compact_step may commit a snapshot rename
        // (and unlink the folded segment) between our snapshot read and
        // our segment reads. The attempt detects both shapes of that torn
        // read — a listed file vanishing (NotFound) or the snapshot
        // watermark advancing mid-read (Interrupted) — and restarting it
        // re-reads the fresh snapshot, whose advanced watermark skips the
        // folded segment. Bounded: each retry needs another compaction to
        // land inside the window, so a genuinely missing file still fails.
        let mut last = None;
        for _ in 0..32 {
            match self.recover_attempt() {
                Err(StoreError::Io(e))
                    if matches!(
                        e.kind(),
                        io::ErrorKind::NotFound | io::ErrorKind::Interrupted
                    ) =>
                {
                    last = Some(StoreError::Io(e));
                }
                other => return other,
            }
        }
        Err(last.expect("loop ran at least once"))
    }

    fn recover_attempt(&self) -> Result<RecoveredState, StoreError> {
        // Torn-read sandwich: if the snapshot watermark moved while we
        // were reading, a compaction committed mid-read and whatever we
        // assembled (or whatever error we hit) reflects a mix of old
        // snapshot and new segment list. Discard and retry. Replay errors
        // with a *stable* watermark are genuine corruption and surface.
        let observed = self.snapshot_watermark()?;
        let result = self.recover_body();
        if self.snapshot_watermark()? != observed {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                "snapshot advanced during recovery",
            )));
        }
        result
    }

    /// Reads only the snapshot header's segment watermark — `None` when
    /// no snapshot exists. Cheap enough to run twice per recovery as the
    /// concurrent-compaction torn-read detector.
    fn snapshot_watermark(&self) -> Result<Option<u64>, StoreError> {
        let path = self.dir.join("snapshot.biot");
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        // Magic plus a maximal varint; the snapshot is always longer.
        let mut head = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 10);
        file.take(head.capacity() as u64).read_to_end(&mut head)?;
        if head.len() < SNAPSHOT_MAGIC.len() {
            return Err(StoreError::CorruptSnapshot("magic"));
        }
        match &head[..SNAPSHOT_MAGIC.len()] {
            m if m == SNAPSHOT_MAGIC => {
                let mut pos = SNAPSHOT_MAGIC.len();
                read_varint(&head, &mut pos)
                    .map(Some)
                    .ok_or(StoreError::CorruptSnapshot("watermark"))
            }
            m if m == SNAPSHOT_MAGIC_V1 => Ok(Some(0)),
            _ => Err(StoreError::CorruptSnapshot("magic")),
        }
    }

    fn recover_body(&self) -> Result<RecoveredState, StoreError> {
        let snap_path = self.dir.join("snapshot.biot");
        let (mut tangle, mut credit_events, watermark) = if snap_path.exists() {
            let snap = self.read_snapshot_file(&snap_path)?;
            (Some(snap.tangle), snap.carried, snap.next_segment)
        } else {
            (None, Vec::new(), 0)
        };
        let segments: Vec<(u64, PathBuf)> = list_segments(&self.dir)?
            .into_iter()
            .filter(|(n, _)| *n >= watermark)
            .collect();
        for (i, (_, path)) in segments.iter().enumerate() {
            let mut data = Vec::new();
            File::open(path)?.read_to_end(&mut data)?;
            // Torn records are tolerated only in the newest segment — the
            // only one a crash mid-append can tear. Sealed segments must
            // replay completely.
            let newest = i + 1 == segments.len();
            if data.len() < WAL_MAGIC.len() {
                if newest {
                    continue; // crash before the magic finished
                }
                return Err(StoreError::CorruptSnapshot("sealed wal segment magic"));
            }
            replay_segment(&data, newest, &mut tangle, &mut credit_events)?;
        }
        Ok(RecoveredState {
            tangle,
            credit_events,
        })
    }

    fn read_snapshot_file(&self, path: &Path) -> Result<SnapshotFile, StoreError> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        if data.len() < SNAPSHOT_MAGIC.len() {
            return Err(StoreError::CorruptSnapshot("magic"));
        }
        let v2 = match &data[..SNAPSHOT_MAGIC.len()] {
            m if m == SNAPSHOT_MAGIC => true,
            m if m == SNAPSHOT_MAGIC_V1 => false,
            _ => return Err(StoreError::CorruptSnapshot("magic")),
        };
        let mut pos = SNAPSHOT_MAGIC.len();
        let next_segment = if v2 {
            read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("watermark"))?
        } else {
            0
        };
        let n = read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("row count"))?;
        let mut rows = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let attach_ms =
                read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("attach time"))?;
            let confirmed = *data.get(pos).ok_or(StoreError::CorruptSnapshot("flag"))? != 0;
            pos += 1;
            let len =
                read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("tx length"))?;
            let end = pos
                .checked_add(len as usize)
                .ok_or(StoreError::CorruptSnapshot("tx length"))?;
            if end > data.len() {
                return Err(StoreError::CorruptSnapshot("tx body"));
            }
            let tx = decode_tx(&data[pos..end])?;
            pos = end;
            rows.push((tx, attach_ms, confirmed));
        }
        let n_pruned =
            read_varint(&data, &mut pos).ok_or(StoreError::CorruptSnapshot("pruned count"))?;
        let mut pruned = Vec::with_capacity(n_pruned as usize);
        for _ in 0..n_pruned {
            let end = pos + 32;
            let slice = data
                .get(pos..end)
                .ok_or(StoreError::CorruptSnapshot("pruned id"))?;
            let mut id = [0u8; 32];
            id.copy_from_slice(slice);
            pruned.push(TxId(id));
            pos = end;
        }
        let mut carried = Vec::new();
        if v2 {
            let n_carried = read_varint(&data, &mut pos)
                .ok_or(StoreError::CorruptSnapshot("carried count"))?;
            for _ in 0..n_carried {
                let len = read_varint(&data, &mut pos)
                    .ok_or(StoreError::CorruptSnapshot("carried length"))?;
                let end = pos
                    .checked_add(len as usize)
                    .ok_or(StoreError::CorruptSnapshot("carried length"))?;
                if end > data.len() {
                    return Err(StoreError::CorruptSnapshot("carried body"));
                }
                carried.push(decode_event(&data[pos..end])?);
                pos = end;
            }
        }
        let snap = TangleSnapshot::from_rows(rows, pruned);
        Ok(SnapshotFile {
            tangle: snap.restore()?,
            carried,
            next_segment,
        })
    }

    /// Total size of the WAL in bytes, summed over every segment (for
    /// checkpoint policies).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn wal_size(&self) -> Result<u64, StoreError> {
        let mut total = 0;
        for (_, path) in list_segments(&self.dir)? {
            total += fs::metadata(&path)?.len();
        }
        Ok(total)
    }

    /// How many WAL segments are on disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn segment_count(&self) -> Result<usize, StoreError> {
        Ok(list_segments(&self.dir)?.len())
    }

    /// The on-disk WAL segment paths, oldest first (the last one is
    /// active). For introspection and tests.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn segment_paths(&self) -> Result<Vec<PathBuf>, StoreError> {
        Ok(list_segments(&self.dir)?
            .into_iter()
            .map(|(_, p)| p)
            .collect())
    }
}

/// Replays one WAL segment's records into `tangle` / `credit_events`.
///
/// `tolerate_torn_tail` is true only for the newest segment: there an
/// incomplete or undecodable *final* record is silently dropped (crash
/// mid-append). In sealed segments every record must parse — anything
/// torn or corrupt is an error, matching the single-file WAL's treatment
/// of mid-log corruption.
///
/// Re-attaching a transaction the tangle already holds is a no-op rather
/// than an error: a crash between a compaction's (or checkpoint's) atomic
/// snapshot commit and its segment cleanup legitimately leaves the same
/// transaction both in the snapshot and in a segment.
fn replay_segment(
    data: &[u8],
    tolerate_torn_tail: bool,
    tangle: &mut Option<Tangle>,
    credit_events: &mut Vec<CreditEvent>,
) -> Result<(), StoreError> {
    let tagged = match &data[..WAL_MAGIC.len()] {
        m if m == WAL_MAGIC => true,
        m if m == WAL_MAGIC_V1 => false,
        _ => return Err(StoreError::CorruptSnapshot("wal magic")),
    };
    let mut pos = WAL_MAGIC.len();
    macro_rules! torn {
        () => {{
            if tolerate_torn_tail {
                return Ok(());
            }
            return Err(StoreError::CorruptSnapshot("torn record in sealed wal segment"));
        }};
    }
    while pos < data.len() {
        let tag = if tagged {
            let t = data[pos];
            pos += 1;
            t
        } else {
            WAL_TAG_TX
        };
        match tag {
            WAL_TAG_TX => {
                let Some(attach_ms) = read_varint(data, &mut pos) else {
                    torn!();
                };
                let Some(len) = read_varint(data, &mut pos) else {
                    torn!();
                };
                // Checked arithmetic: a torn or corrupt length varint can
                // decode to any u64; it must never overflow into a bogus
                // in-bounds `end`.
                let Some(end) = pos.checked_add(len as usize) else {
                    torn!();
                };
                if end > data.len() {
                    torn!();
                }
                match decode_tx(&data[pos..end]) {
                    Ok(tx) => {
                        let t = tangle.get_or_insert_with(Tangle::new);
                        if tx.is_genesis() {
                            if t.genesis().is_none() {
                                t.attach_genesis(tx.issuer, attach_ms);
                            }
                        } else {
                            match t.attach(tx, attach_ms) {
                                Ok(_) | Err(TangleError::Duplicate(_)) => {}
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                    Err(e) => {
                        // Only the final record may be torn/corrupt.
                        if end == data.len() && tolerate_torn_tail {
                            return Ok(());
                        }
                        return Err(e.into());
                    }
                }
                pos = end;
            }
            WAL_TAG_CREDIT => {
                let Some(len) = read_varint(data, &mut pos) else {
                    torn!();
                };
                let Some(end) = pos.checked_add(len as usize) else {
                    torn!();
                };
                if end > data.len() {
                    torn!();
                }
                match decode_event(&data[pos..end]) {
                    Ok(ev) => credit_events.push(ev),
                    Err(e) => {
                        // Only the final record may be torn/corrupt.
                        if end == data.len() && tolerate_torn_tail {
                            return Ok(());
                        }
                        return Err(e.into());
                    }
                }
                pos = end;
            }
            _ => return Err(StoreError::CorruptSnapshot("wal record tag")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_NO: AtomicU64 = AtomicU64::new(0);

    /// A unique temp directory per test, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            let n = DIR_NO.fetch_add(1, Ordering::SeqCst);
            let path = std::env::temp_dir()
                .join(format!("biot-store-test-{}-{n}", std::process::id()));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn grow(tangle: &mut Tangle, store: &mut LedgerStore, n: usize, base_ms: u64) {
        for i in 0..n {
            let tips = tangle.tips();
            let tx = TransactionBuilder::new(NodeId([(i + 1) as u8; 32]))
                .parents(tips[0], *tips.last().unwrap())
                .payload(Payload::Data(vec![i as u8, base_ms as u8]))
                .timestamp_ms(base_ms + i as u64)
                .build();
            let at = base_ms + i as u64;
            tangle.attach(tx.clone(), at).unwrap();
            store.append(&tx, at).unwrap();
        }
    }

    #[test]
    fn fresh_store_recovers_nothing() {
        let dir = TempDir::new();
        let store = LedgerStore::open(&dir.0).unwrap();
        assert!(store.recover().unwrap().is_none());
    }

    #[test]
    fn wal_only_recovery() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 5, 10);

        let recovered = store.recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
    }

    #[test]
    fn checkpoint_plus_wal_recovery() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 5, 10);
        tangle.confirm_with_threshold(2);
        store.checkpoint(&tangle).unwrap();
        // WAL restarts empty after a checkpoint.
        assert_eq!(store.wal_size().unwrap(), WAL_MAGIC.len() as u64);
        grow(&mut tangle, &mut store, 4, 100);

        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
        // Confirmation flags survive the checkpoint.
        for tx in tangle.iter() {
            let id = tx.id();
            if tangle.attach_time_ms(&id).unwrap() < 100 {
                assert_eq!(recovered.status(&id), tangle.status(&id), "{id:?}");
            }
        }
    }

    #[test]
    fn torn_wal_tail_is_dropped() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        // Simulate a crash mid-append: truncate the last 5 bytes.
        let wal_path = dir.0.join("wal.biot");
        let data = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &data[..data.len() - 5]).unwrap();

        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        // One transaction lost (the torn one), everything earlier intact.
        assert_eq!(recovered.len(), tangle.len() - 1);
    }

    #[test]
    fn torn_tail_recovers_valid_prefix_at_every_byte_offset() {
        // Crash-consistency sweep: whatever byte the power died on while
        // the *last* record was being appended, recovery must keep every
        // complete earlier record and silently drop the torn tail.
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        let wal_path = dir.0.join("wal.biot");
        let before_last = fs::metadata(&wal_path).unwrap().len() as usize;
        grow(&mut tangle, &mut store, 1, 50);
        let full = fs::read(&wal_path).unwrap();
        assert!(full.len() > before_last, "last record must add bytes");

        for cut in before_last..full.len() {
            fs::write(&wal_path, &full[..cut]).unwrap();
            let recovered = LedgerStore::open(&dir.0)
                .unwrap()
                .recover()
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"))
                .expect("prefix state survives");
            // Everything before the last record is intact; the torn
            // record itself is gone.
            assert_eq!(recovered.len(), tangle.len() - 1, "cut at byte {cut}");
        }
        // And the untruncated log still recovers everything.
        fs::write(&wal_path, &full).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
    }

    #[test]
    fn corrupt_middle_record_is_an_error() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = TransactionBuilder::new(NodeId([0; 32]))
            .payload(Payload::Data(b"genesis".to_vec()))
            .build();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        let wal_path = dir.0.join("wal.biot");
        let mut data = fs::read(&wal_path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&wal_path, &data).unwrap();

        let result = LedgerStore::open(&dir.0).unwrap().recover();
        assert!(result.is_err(), "corruption in the middle must not pass silently");
    }

    #[test]
    fn checkpoint_is_atomic_under_reopen() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 3, 10);
        store.checkpoint(&tangle).unwrap();
        drop(store);
        // Reopen twice; state identical both times.
        let a = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        let b = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.tips(), b.tips());
    }

    fn event(n: u8, secs: u64, weight: f64) -> CreditEvent {
        CreditEvent::validated(NodeId([n; 32]), weight, SimTime::from_secs(secs))
    }

    fn mis(n: u8, secs: u64) -> CreditEvent {
        CreditEvent::misbehaved(
            NodeId([n; 32]),
            biot_credit::Misbehavior::DoubleSpend,
            SimTime::from_secs(secs),
        )
    }

    use biot_net::time::SimTime;

    #[test]
    fn credit_events_roundtrip_interleaved_with_txs() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        store.append_credit_events(&[event(1, 1, 1.0)]).unwrap();
        grow(&mut tangle, &mut store, 3, 10);
        store
            .append_credit_events(&[mis(2, 12), event(1, 13, 4.0)])
            .unwrap();
        grow(&mut tangle, &mut store, 2, 40);

        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        assert_eq!(
            recovered.credit_events,
            vec![event(1, 1, 1.0), mis(2, 12), event(1, 13, 4.0)],
            "events replay losslessly, in append order"
        );
    }

    #[test]
    fn torn_credit_tail_recovers_valid_prefix_at_every_byte_offset() {
        // The credit analogue of the tx torn-tail sweep: power dies at any
        // byte while the last record (a credit event) is appended.
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        grow(&mut tangle, &mut store, 2, 10);
        store.append_credit_events(&[mis(3, 11)]).unwrap();

        let wal_path = dir.0.join("wal.biot");
        let before_last = fs::metadata(&wal_path).unwrap().len() as usize;
        store.append_credit_events(&[event(4, 12, 2.0)]).unwrap();
        let full = fs::read(&wal_path).unwrap();
        assert!(full.len() > before_last);

        for cut in before_last..full.len() {
            fs::write(&wal_path, &full[..cut]).unwrap();
            let recovered = LedgerStore::open(&dir.0)
                .unwrap()
                .recover_full()
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            assert_eq!(
                recovered.credit_events,
                vec![mis(3, 11)],
                "cut at byte {cut}: earlier event intact, torn one dropped"
            );
            assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        }
        fs::write(&wal_path, &full).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        assert_eq!(recovered.credit_events, vec![mis(3, 11), event(4, 12, 2.0)]);
    }

    #[test]
    fn corrupt_middle_credit_record_is_an_error() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        let wal_clean = fs::metadata(dir.0.join("wal.biot")).unwrap().len() as usize;
        store.append_credit_events(&[mis(1, 5)]).unwrap();
        grow(&mut tangle, &mut store, 2, 10);

        // Flip a bit inside the credit event's body (not the last record,
        // so torn-tail tolerance does not apply).
        let wal_path = dir.0.join("wal.biot");
        let mut data = fs::read(&wal_path).unwrap();
        data[wal_clean + 10] ^= 0x01;
        fs::write(&wal_path, &data).unwrap();
        let result = LedgerStore::open(&dir.0).unwrap().recover_full();
        assert!(result.is_err(), "mid-log credit corruption must not pass");
    }

    #[test]
    fn legacy_v1_wal_still_recovers() {
        // Hand-write a v1 (untagged) WAL and check both that it recovers
        // and that post-open appends keep the legacy framing.
        let dir = TempDir::new();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        let mut data = WAL_MAGIC_V1.to_vec();
        let body = encode_tx(&genesis_tx);
        write_varint(&mut data, 0);
        write_varint(&mut data, body.len() as u64);
        data.extend_from_slice(&body);
        fs::write(dir.0.join("wal.biot"), &data).unwrap();

        let mut store = LedgerStore::open(&dir.0).unwrap();
        grow(&mut tangle, &mut store, 3, 10);
        let recovered = store.recover_full().unwrap();
        assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        assert!(recovered.credit_events.is_empty());
        // Credit events need the tagged format; a checkpoint upgrades.
        assert!(store.append_credit_events(&[mis(1, 5)]).is_err());
        store.checkpoint(&tangle).unwrap();
        store.append_credit_events(&[mis(1, 5)]).unwrap();
        let recovered = store.recover_full().unwrap();
        assert_eq!(recovered.credit_events, vec![mis(1, 5)]);
    }

    #[test]
    fn checkpoint_with_credit_carries_events_across_truncation() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        store
            .append_credit_events(&[event(1, 1, 1.0), mis(2, 2)])
            .unwrap();
        grow(&mut tangle, &mut store, 3, 10);

        // A plain checkpoint would drop the events with the WAL; the
        // credit-aware one re-seeds them.
        store
            .checkpoint_with_credit(&tangle, &[event(1, 1, 1.0), mis(2, 2)])
            .unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        assert_eq!(recovered.credit_events, vec![event(1, 1, 1.0), mis(2, 2)]);
    }

    // WAL round-trip fuzz: any event stream appended in any batching must
    // recover bit-for-bat identical and in order.
    use proptest::prelude::*;
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_event_streams_roundtrip_through_the_wal(
            stream in proptest::collection::vec(
                (any::<bool>(), 0u8..5, 0u64..100_000, 1u32..1000),
                0..40,
            ),
            batch in 1usize..7,
        ) {
            let dir = TempDir::new();
            let mut store = LedgerStore::open(&dir.0).unwrap();
            let events: Vec<CreditEvent> = stream
                .iter()
                .map(|&(is_tx, n, at_ms, w)| {
                    if is_tx {
                        CreditEvent::validated(
                            NodeId([n; 32]),
                            w as f64,
                            SimTime::from_millis(at_ms),
                        )
                    } else {
                        CreditEvent::misbehaved(
                            NodeId([n; 32]),
                            biot_credit::Misbehavior::LazyTips,
                            SimTime::from_millis(at_ms),
                        )
                    }
                })
                .collect();
            for chunk in events.chunks(batch) {
                store.append_credit_events(chunk).unwrap();
            }
            let recovered = store.recover_full().unwrap();
            prop_assert_eq!(recovered.credit_events, events);
        }
    }

    /// A config with tiny segments so a handful of appends spans several.
    fn tiny_segments(bytes: u64) -> StoreConfig {
        StoreConfig {
            segment_bytes: bytes,
        }
    }

    /// Builds a store whose WAL spans several segments: genesis + `n` txs
    /// with a couple of credit events mixed in. Returns the live state.
    fn segmented_world(
        dir: &TempDir,
        segment_bytes: u64,
        n: usize,
    ) -> (LedgerStore, Tangle, Vec<CreditEvent>) {
        let mut store =
            LedgerStore::open_with_config(&dir.0, tiny_segments(segment_bytes)).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        let mut events = Vec::new();
        for i in 0..n {
            grow(&mut tangle, &mut store, 1, 10 + 10 * i as u64);
            if i % 3 == 0 {
                let ev = event((i % 7) as u8 + 1, i as u64 + 1, (i + 1) as f64);
                store.append_credit_events(std::slice::from_ref(&ev)).unwrap();
                events.push(ev);
            }
        }
        (store, tangle, events)
    }

    #[test]
    fn segments_roll_and_recovery_spans_them() {
        let dir = TempDir::new();
        let (store, tangle, events) = segmented_world(&dir, 256, 12);
        assert!(
            store.segment_count().unwrap() > 2,
            "appends must have rolled: {} segments",
            store.segment_count().unwrap()
        );
        // wal_size sums every segment, so it keeps growing across rolls.
        assert!(store.wal_size().unwrap() > 256);

        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        let rt = recovered.tangle.unwrap();
        assert_eq!(rt.len(), tangle.len());
        assert_eq!(rt.tips(), tangle.tips());
        for tx in tangle.iter() {
            let id = tx.id();
            assert_eq!(rt.cumulative_weight(&id), tangle.cumulative_weight(&id));
        }
        assert_eq!(recovered.credit_events, events, "order preserved across segments");
    }

    #[test]
    fn reopen_resumes_on_newest_segment() {
        let dir = TempDir::new();
        let (store, mut tangle, _) = segmented_world(&dir, 256, 8);
        let count = store.segment_count().unwrap();
        drop(store);
        // Reopening must append to the newest segment, never recreate an
        // earlier one (that would reorder the log).
        let mut store =
            LedgerStore::open_with_config(&dir.0, tiny_segments(u64::MAX)).unwrap();
        assert_eq!(store.segment_count().unwrap(), count);
        grow(&mut tangle, &mut store, 2, 900);
        let recovered = store.recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
    }

    #[test]
    fn checkpoint_on_empty_wal_is_a_noop() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 4, 10);
        store.checkpoint(&tangle).unwrap();
        let snap_after_first = fs::read(dir.0.join("snapshot.biot")).unwrap();

        // Mutate only in-memory status — nothing appended to the WAL.
        tangle.confirm_with_threshold(2);
        store.checkpoint(&tangle).unwrap();
        let snap_after_second = fs::read(dir.0.join("snapshot.biot")).unwrap();
        assert_eq!(
            snap_after_first, snap_after_second,
            "empty-WAL checkpoint must not rewrite the snapshot"
        );
        assert_eq!(store.wal_size().unwrap(), WAL_MAGIC.len() as u64);

        // Once a record lands, checkpointing writes for real again.
        grow(&mut tangle, &mut store, 1, 100);
        store.checkpoint(&tangle).unwrap();
        assert_ne!(fs::read(dir.0.join("snapshot.biot")).unwrap(), snap_after_first);
    }

    #[test]
    fn maybe_checkpoint_fires_on_policy_thresholds() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        let policy = CheckpointPolicy {
            max_wal_bytes: 200,
            max_segments: 4,
        };
        assert!(
            !store.maybe_checkpoint(&tangle, &policy).unwrap(),
            "magic-only WAL is under every threshold"
        );
        grow(&mut tangle, &mut store, 4, 10);
        assert!(store.wal_size().unwrap() >= 200);
        assert!(store.maybe_checkpoint(&tangle, &policy).unwrap());
        assert_eq!(store.wal_size().unwrap(), WAL_MAGIC.len() as u64);
        assert!(
            !store.maybe_checkpoint(&tangle, &policy).unwrap(),
            "fresh WAL is under the thresholds again"
        );
        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());

        // The segment-count arm, independent of byte volume.
        let dir2 = TempDir::new();
        let (mut store, tangle2, _) = segmented_world(&dir2, 128, 10);
        let lax = CheckpointPolicy {
            max_wal_bytes: u64::MAX,
            max_segments: 2,
        };
        assert!(store.segment_count().unwrap() > 2);
        assert!(store.maybe_checkpoint(&tangle2, &lax).unwrap());
        assert_eq!(store.segment_count().unwrap(), 1);
    }

    #[test]
    fn compact_step_folds_oldest_segment_into_snapshot() {
        let dir = TempDir::new();
        let (mut store, tangle, events) = segmented_world(&dir, 256, 12);
        let before = store.segment_count().unwrap();
        assert!(before > 2);

        let mut steps = 0;
        while store.compact_step().unwrap() {
            steps += 1;
            // Every step must shrink the live log by one segment.
            assert_eq!(store.segment_count().unwrap(), before - steps);
            // Recovery stays exact mid-compaction.
            let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
            assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
            assert_eq!(recovered.credit_events, events, "order preserved after {steps} steps");
        }
        assert_eq!(steps, before - 1, "everything but the active segment folds");
        assert_eq!(store.segment_count().unwrap(), 1);

        // The store keeps working after compaction.
        let mut tangle = tangle;
        let mut store = store;
        grow(&mut tangle, &mut store, 2, 500);
        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        let rt = recovered.tangle.unwrap();
        assert_eq!(rt.len(), tangle.len());
        assert_eq!(rt.tips(), tangle.tips());
        assert_eq!(recovered.credit_events, events);
    }

    #[test]
    fn interrupted_compaction_leaves_no_duplicates() {
        // Crash simulation: the snapshot rename committed but the folded
        // segment was never unlinked. Recovery must skip it by watermark —
        // same ledger, credit events exactly once.
        let dir = TempDir::new();
        let (mut store, tangle, events) = segmented_world(&dir, 256, 12);
        let oldest = store.segment_paths().unwrap()[0].clone();
        let folded_bytes = fs::read(&oldest).unwrap();
        assert!(store.compact_step().unwrap());
        assert!(!oldest.exists());
        fs::write(&oldest, &folded_bytes).unwrap(); // resurrect: crash before unlink

        let recovered = LedgerStore::open(&dir.0).unwrap().recover_full().unwrap();
        assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        assert_eq!(recovered.credit_events, events, "no duplicated credit events");

        // The next step clears the stale file and keeps folding.
        assert!(store.compact_step().unwrap());
        assert!(!oldest.exists(), "stale folded segment cleaned up");
    }

    #[test]
    fn torn_tail_sweep_every_byte_of_newest_segment() {
        // Segmented analogue of the single-file sweep: whatever byte the
        // power died on, every record in sealed segments plus every
        // complete record of the newest segment survives.
        let dir = TempDir::new();
        let mut store =
            LedgerStore::open_with_config(&dir.0, tiny_segments(300)).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        let mut sealed_txs = 1; // txs fully contained in sealed segments
        let mut segments = store.segment_count().unwrap();
        for i in 0..10 {
            grow(&mut tangle, &mut store, 1, 10 + 10 * i as u64);
            let now = store.segment_count().unwrap();
            if now > segments {
                segments = now;
                sealed_txs = tangle.len();
            }
        }
        assert!(segments > 1, "need sealed segments for the sweep");
        let newest = store.segment_paths().unwrap().pop().unwrap();
        let full = fs::read(&newest).unwrap();
        drop(store);

        for cut in 0..=full.len() {
            fs::write(&newest, &full[..cut]).unwrap();
            let recovered = LedgerStore::open_with_config(&dir.0, tiny_segments(u64::MAX))
                .unwrap()
                .recover()
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"))
                .expect("sealed segments always recover");
            assert!(recovered.len() >= sealed_txs, "cut at byte {cut}");
            assert!(recovered.len() <= tangle.len(), "cut at byte {cut}");
            for tx in recovered.iter() {
                assert!(tangle.contains(&tx.id()), "cut at byte {cut}");
            }
        }
        fs::write(&newest, &full).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        assert_eq!(recovered.tips(), tangle.tips());
    }

    #[test]
    fn sealed_segment_corruption_is_an_error() {
        // Sealed segments get the *strict* treatment: the torn-tail
        // leniency of the single-file WAL applies only to the newest
        // segment. Bit flips inside any sealed record body — and
        // truncation of a sealed segment — must fail recovery loudly.
        let dir = TempDir::new();
        let (store, _tangle, _) = segmented_world(&dir, 256, 10);
        assert!(store.segment_count().unwrap() > 2);
        let sealed = store.segment_paths().unwrap()[0].clone();
        drop(store);
        let pristine = fs::read(&sealed).unwrap();

        // Walk the segment's framing to find every record-body byte (tag
        // and length bytes can alias other valid framings; bodies are
        // checksummed, so corruption there must always be caught).
        let mut body_ranges = Vec::new();
        let mut pos = WAL_MAGIC.len();
        while pos < pristine.len() {
            let tag = pristine[pos];
            pos += 1;
            if tag == WAL_TAG_TX {
                read_varint(&pristine, &mut pos).unwrap();
            }
            let len = read_varint(&pristine, &mut pos).unwrap() as usize;
            body_ranges.push(pos..pos + len);
            pos += len;
        }
        assert!(!body_ranges.is_empty());

        for range in body_ranges {
            for at in range {
                let mut data = pristine.clone();
                data[at] ^= 0x01;
                fs::write(&sealed, &data).unwrap();
                let result = LedgerStore::open(&dir.0).unwrap().recover_full();
                assert!(result.is_err(), "flip at byte {at} must not pass silently");
            }
        }

        // Corrupt magic.
        let mut data = pristine.clone();
        data[0] ^= 0x01;
        fs::write(&sealed, &data).unwrap();
        assert!(LedgerStore::open(&dir.0).unwrap().recover_full().is_err());

        // Truncation anywhere in a sealed segment is torn-middle, not
        // torn-tail: an error.
        for cut in [0, WAL_MAGIC.len(), pristine.len() - 1] {
            fs::write(&sealed, &pristine[..cut]).unwrap();
            assert!(
                LedgerStore::open(&dir.0).unwrap().recover_full().is_err(),
                "sealed segment truncated at {cut} must not pass"
            );
        }

        // Restored, everything recovers again.
        fs::write(&sealed, &pristine).unwrap();
        assert!(LedgerStore::open(&dir.0).unwrap().recover_full().is_ok());
    }

    #[test]
    fn legacy_v1_segment_seals_and_rolls_to_v2() {
        // A legacy untagged wal.biot keeps accepting untagged appends
        // until it fills; the next segment is current-format, so credit
        // events become appendable without a checkpoint.
        let dir = TempDir::new();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        let mut data = WAL_MAGIC_V1.to_vec();
        let body = encode_tx(&genesis_tx);
        write_varint(&mut data, 0);
        write_varint(&mut data, body.len() as u64);
        data.extend_from_slice(&body);
        fs::write(dir.0.join("wal.biot"), &data).unwrap();

        let mut store = LedgerStore::open_with_config(&dir.0, tiny_segments(1)).unwrap();
        assert!(store.append_credit_events(&[mis(1, 5)]).is_err(), "still v1");
        grow(&mut tangle, &mut store, 3, 10); // every append rolls
        assert!(store.segment_count().unwrap() > 1);
        store.append_credit_events(&[mis(1, 5)]).unwrap();

        let recovered = store.recover_full().unwrap();
        assert_eq!(recovered.tangle.unwrap().len(), tangle.len());
        assert_eq!(recovered.credit_events, vec![mis(1, 5)]);
    }

    #[test]
    fn pruned_ids_survive_checkpoint() {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        tangle.attach_genesis(NodeId([0; 32]), 0);
        grow(&mut tangle, &mut store, 6, 10);
        tangle.confirm_with_threshold(2);
        let pruned_count = tangle.snapshot(14);
        assert!(pruned_count > 0);
        store.checkpoint(&tangle).unwrap();
        let recovered = LedgerStore::open(&dir.0).unwrap().recover().unwrap().unwrap();
        assert_eq!(recovered.len(), tangle.len());
        for tx in tangle.iter() {
            for p in tx.parents() {
                if tangle.is_pruned(&p) {
                    assert!(recovered.is_pruned(&p));
                }
            }
        }
    }

    #[test]
    fn read_only_recovers_but_refuses_every_write() {
        let dir = TempDir::new();
        let (_writer, tangle, events) = segmented_world(&dir, 256, 8);

        let mut ro = LedgerStore::open_read_only(&dir.0).unwrap();
        assert!(ro.is_read_only());

        // Same bytes, same state as a writable open.
        let recovered = ro.recover_full().unwrap();
        let rt = recovered.tangle.unwrap();
        assert_eq!(rt.len(), tangle.len());
        assert_eq!(rt.tips(), tangle.tips());
        assert_eq!(recovered.credit_events, events);

        // Every mutating entry point is refused, and refusal leaves the
        // on-disk log untouched.
        let before = ro.segment_paths().unwrap();
        let tx = TransactionBuilder::new(NodeId([9; 32]))
            .parents(tangle.tips()[0], tangle.tips()[0])
            .payload(Payload::Data(vec![9]))
            .timestamp_ms(999)
            .build();
        assert!(matches!(ro.append(&tx, 999), Err(StoreError::ReadOnly)));
        assert!(matches!(
            ro.append_credit_events(&[mis(9, 9)]),
            Err(StoreError::ReadOnly)
        ));
        assert!(matches!(ro.checkpoint(&tangle), Err(StoreError::ReadOnly)));
        assert!(matches!(ro.compact_step(), Err(StoreError::ReadOnly)));
        assert_eq!(ro.segment_paths().unwrap(), before);

        // A read-only open never creates files either: opening a missing
        // directory is an error instead of a silent mkdir.
        assert!(LedgerStore::open_read_only(dir.0.join("nope")).is_err());
    }

    #[test]
    fn read_only_recover_tolerates_concurrent_compaction() {
        // A writable owner folds segments (rename + unlink) while a
        // read-only handle recovers in a loop. The reader may list a
        // segment the writer unlinks before it is read; `recover_full`
        // retries from the freshly committed snapshot, so every recovery
        // observes the complete state.
        let dir = TempDir::new();
        let (mut store, tangle, events) = segmented_world(&dir, 256, 12);
        assert!(store.segment_count().unwrap() > 2);
        let expect_len = tangle.len();

        std::thread::scope(|s| {
            let reader_dir = dir.0.clone();
            let reader = s.spawn(move || {
                let ro = LedgerStore::open_read_only(&reader_dir).unwrap();
                let mut recoveries = 0usize;
                for _ in 0..200 {
                    let recovered = ro.recover_full().unwrap();
                    assert_eq!(recovered.tangle.unwrap().len(), expect_len);
                    assert_eq!(recovered.credit_events, events);
                    recoveries += 1;
                }
                recoveries
            });
            while store.compact_step().unwrap() {
                std::thread::yield_now();
            }
            assert!(reader.join().unwrap() > 0);
        });
        assert_eq!(store.segment_count().unwrap(), 1);
    }
}
