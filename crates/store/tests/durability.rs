//! Property-based durability tests: any interleaving of appends and
//! checkpoints must recover to exactly the live ledger.

use biot_store::{CheckpointPolicy, LedgerStore, StoreConfig};
use biot_tangle::graph::Tangle;
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_NO: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let n = DIR_NO.fetch_add(1, Ordering::SeqCst);
        let path = std::env::temp_dir().join(format!(
            "biot-durability-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// An operation in the interleaving: attach a tx (parents are indices into
/// the attached list), or checkpoint.
#[derive(Clone, Debug)]
enum Op {
    Attach(usize, usize, u8),
    Checkpoint,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (0usize..100, 0usize..100, any::<u8>())
                .prop_map(|(a, b, p)| Op::Attach(a, b, p)),
            1 => Just(Op::Checkpoint),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovery_equals_live_state(ops in ops_strategy()) {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        let mut attached = vec![genesis];

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Attach(a, b, payload) => {
                    let trunk = attached[a % attached.len()];
                    let branch = attached[b % attached.len()];
                    let tx = TransactionBuilder::new(NodeId([(i % 11) as u8 + 1; 32]))
                        .parents(trunk, branch)
                        .payload(Payload::Data(vec![*payload, i as u8]))
                        .timestamp_ms(i as u64 + 1)
                        .build();
                    let at = i as u64 + 1;
                    if let Ok(id) = tangle.attach(tx.clone(), at) {
                        store.append(&tx, at).unwrap();
                        attached.push(id);
                    }
                }
                Op::Checkpoint => {
                    tangle.confirm_with_threshold(2);
                    store.checkpoint(&tangle).unwrap();
                }
            }
        }

        let recovered = LedgerStore::open(&dir.0)
            .unwrap()
            .recover()
            .unwrap()
            .expect("state exists");
        prop_assert_eq!(recovered.len(), tangle.len());
        prop_assert_eq!(recovered.tips(), tangle.tips());
        for tx in tangle.iter() {
            let id = tx.id();
            prop_assert_eq!(recovered.get(&id), Some(tx));
            prop_assert_eq!(
                recovered.cumulative_weight(&id),
                tangle.cumulative_weight(&id)
            );
        }
    }

    #[test]
    fn segmented_recovery_equals_live_state(
        ops in ops_strategy(),
        segment_bytes in 64u64..512,
        compact_every in 1usize..6,
    ) {
        // Same interleaving property as above, but with tiny segments so
        // the log rolls constantly, plus incremental compaction and
        // policy-driven checkpoints sprinkled through the run.
        let dir = TempDir::new();
        let mut store =
            LedgerStore::open_with_config(&dir.0, StoreConfig { segment_bytes }).unwrap();
        let policy = CheckpointPolicy {
            max_wal_bytes: 4 * segment_bytes,
            max_segments: 6,
        };
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        let mut attached = vec![genesis];

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Attach(a, b, payload) => {
                    let trunk = attached[a % attached.len()];
                    let branch = attached[b % attached.len()];
                    let tx = TransactionBuilder::new(NodeId([(i % 11) as u8 + 1; 32]))
                        .parents(trunk, branch)
                        .payload(Payload::Data(vec![*payload, i as u8]))
                        .timestamp_ms(i as u64 + 1)
                        .build();
                    let at = i as u64 + 1;
                    if let Ok(id) = tangle.attach(tx.clone(), at) {
                        store.append(&tx, at).unwrap();
                        attached.push(id);
                    }
                    if i % compact_every == 0 {
                        store.compact_step().unwrap();
                    }
                }
                Op::Checkpoint => {
                    tangle.confirm_with_threshold(2);
                    store.maybe_checkpoint(&tangle, &policy).unwrap();
                }
            }
        }

        let recovered = LedgerStore::open(&dir.0)
            .unwrap()
            .recover()
            .unwrap()
            .expect("state exists");
        prop_assert_eq!(recovered.len(), tangle.len());
        prop_assert_eq!(recovered.tips(), tangle.tips());
        for tx in tangle.iter() {
            let id = tx.id();
            prop_assert_eq!(recovered.get(&id), Some(tx));
            prop_assert_eq!(
                recovered.cumulative_weight(&id),
                tangle.cumulative_weight(&id)
            );
        }
    }

    #[test]
    fn truncated_wal_never_panics_and_keeps_prefix(
        n_txs in 1usize..15,
        cut in 1usize..200,
    ) {
        let dir = TempDir::new();
        let mut store = LedgerStore::open(&dir.0).unwrap();
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let genesis_tx = tangle.get(&genesis).unwrap().clone();
        store.append(&genesis_tx, 0).unwrap();
        let mut attached = vec![genesis];
        for i in 0..n_txs {
            let tx = TransactionBuilder::new(NodeId([1; 32]))
                .parents(*attached.last().unwrap(), attached[0])
                .payload(Payload::Data(vec![i as u8]))
                .timestamp_ms(i as u64 + 1)
                .build();
            let at = i as u64 + 1;
            tangle.attach(tx.clone(), at).unwrap();
            store.append(&tx, at).unwrap();
            attached.push(tangle.tips()[0]);
        }
        drop(store);
        // Truncate the WAL at an arbitrary point ≥ the magic header.
        let wal = dir.0.join("wal.biot");
        let data = std::fs::read(&wal).unwrap();
        let keep = (8 + cut).min(data.len());
        std::fs::write(&wal, &data[..keep]).unwrap();

        // Recovery must not panic; whatever it returns is a prefix of the
        // original ledger.
        if let Ok(Some(recovered)) = LedgerStore::open(&dir.0).unwrap().recover() {
            prop_assert!(recovered.len() <= tangle.len());
            for tx in recovered.iter() {
                prop_assert!(tangle.contains(&tx.id()));
            }
        }
    }
}
