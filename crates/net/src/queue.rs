//! The discrete-event queue: a priority queue over virtual time.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time.
///
/// Events with equal times fire in schedule order (FIFO), which keeps runs
/// deterministic.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// The driver loop pops events in time order; popping advances the virtual
/// clock. Scheduling in the past is clamped to *now* (an event can never
/// rewind time).
///
/// # Examples
///
/// ```
/// use biot_net::queue::EventQueue;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(20, "second");
/// q.schedule_in(10, "first");
/// assert_eq!(q.pop().map(|(t, e)| (t.as_millis(), e)), Some((10, "first")));
/// assert_eq!(q.pop().map(|(t, e)| (t.as_millis(), e)), Some((20, "second")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// The current virtual time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after `delay_ms` milliseconds of virtual time.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule_at(self.now + delay_ms, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_in(30, 3);
        q.schedule_in(10, 1);
        q.schedule_in(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_in(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(100, ());
        assert_eq!(q.now().as_millis(), 0);
        q.pop();
        assert_eq!(q.now().as_millis(), 100);
    }

    #[test]
    fn past_scheduling_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(100, "a");
        q.pop();
        q.schedule_at(SimTime::from_millis(50), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "late");
        assert_eq!(t.as_millis(), 100, "clamped to now");
    }

    #[test]
    fn relative_scheduling_is_from_now() {
        let mut q = EventQueue::new();
        q.schedule_in(100, "a");
        q.pop();
        q.schedule_in(10, "b");
        assert_eq!(q.pop().unwrap().0.as_millis(), 110);
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.schedule_in(5, ());
        q.schedule_in(3, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time().unwrap().as_millis(), 3);
    }

    proptest! {
        #[test]
        fn prop_monotone_pop_order(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
            let mut q = EventQueue::new();
            for (i, d) in delays.iter().enumerate() {
                q.schedule_in(*d, i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}
