//! The simulated network: addressed nodes, lossy links, partitions, and
//! gossip-style broadcast on top of the event queue.

use crate::latency::{FixedLatency, LatencyModel};
use crate::queue::EventQueue;
use crate::time::SimTime;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A node address in the simulated network.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize,
)]
pub struct NodeAddr(pub u32);

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A message in flight, delivered through the event queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeAddr,
    /// Recipient.
    pub to: NodeAddr,
    /// Application message.
    pub msg: M,
}

/// Counters for network behaviour, used by throughput experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages handed to the queue for delivery.
    pub sent: u64,
    /// Messages dropped by loss.
    pub lost: u64,
    /// Messages blocked by a partition or a down node.
    pub blocked: u64,
}

/// A simulated fully-connected network with loss, partitions, and node
/// failures.
///
/// The network does not own the event queue — callers pass it in so one
/// queue can carry network deliveries alongside other simulation events.
///
/// # Examples
///
/// ```
/// use biot_net::network::{Network, NodeAddr};
/// use biot_net::queue::EventQueue;
///
/// let mut rng = rand::thread_rng();
/// let mut net: Network<&str> = Network::new();
/// let mut queue = EventQueue::new();
/// net.send(&mut queue, NodeAddr(0), NodeAddr(1), "ping", &mut rng);
/// let (_, env) = queue.pop().expect("delivered");
/// assert_eq!(env.msg, "ping");
/// ```
pub struct Network<M> {
    latency: Box<dyn LatencyModel + Send + Sync>,
    /// Probability in `[0, 1]` that any message is silently lost.
    loss: f64,
    /// Unordered pairs that cannot communicate.
    partitions: HashSet<(NodeAddr, NodeAddr)>,
    /// Nodes that are down (cannot send or receive).
    down: HashSet<NodeAddr>,
    stats: NetStats,
    _marker: std::marker::PhantomData<M>,
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("loss", &self.loss)
            .field("partitions", &self.partitions.len())
            .field("down", &self.down.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<M> Default for Network<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Network<M> {
    /// Creates a lossless network with a fixed 5 ms latency (a LAN-ish
    /// default for gateway meshes).
    pub fn new() -> Self {
        Self {
            latency: Box::new(FixedLatency(5)),
            loss: 0.0,
            partitions: HashSet::new(),
            down: HashSet::new(),
            stats: NetStats::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Replaces the latency model.
    pub fn set_latency(&mut self, model: Box<dyn LatencyModel + Send + Sync>) -> &mut Self {
        self.latency = model;
        self
    }

    /// Sets the message loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_loss(&mut self, p: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss = p;
        self
    }

    /// Severs the link between `a` and `b` in both directions.
    pub fn partition(&mut self, a: NodeAddr, b: NodeAddr) -> &mut Self {
        self.partitions.insert(Self::pair(a, b));
        self
    }

    /// Restores the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeAddr, b: NodeAddr) -> &mut Self {
        self.partitions.remove(&Self::pair(a, b));
        self
    }

    /// Takes a node down (single point of failure injection).
    pub fn fail_node(&mut self, n: NodeAddr) -> &mut Self {
        self.down.insert(n);
        self
    }

    /// Brings a node back up.
    pub fn recover_node(&mut self, n: NodeAddr) -> &mut Self {
        self.down.remove(&n);
        self
    }

    /// Returns true if `n` is currently down.
    pub fn is_down(&self, n: NodeAddr) -> bool {
        self.down.contains(&n)
    }

    /// Returns true if `a` and `b` can currently communicate.
    pub fn connected(&self, a: NodeAddr, b: NodeAddr) -> bool {
        !self.down.contains(&a)
            && !self.down.contains(&b)
            && !self.partitions.contains(&Self::pair(a, b))
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends `msg` from `from` to `to`, scheduling an [`Envelope`] delivery
    /// on `queue`. Returns `true` if the message was scheduled (it may still
    /// be received later than others — latency is per-message).
    pub fn send(
        &mut self,
        queue: &mut EventQueue<Envelope<M>>,
        from: NodeAddr,
        to: NodeAddr,
        msg: M,
        rng: &mut dyn RngCore,
    ) -> bool {
        if !self.connected(from, to) {
            self.stats.blocked += 1;
            return false;
        }
        if self.loss > 0.0 {
            let draw = rng.next_u64() as f64 / u64::MAX as f64;
            if draw < self.loss {
                self.stats.lost += 1;
                return false;
            }
        }
        let delay = self.latency.sample_ms(rng);
        queue.schedule_in(delay, Envelope { from, to, msg });
        self.stats.sent += 1;
        true
    }

    /// Broadcasts `msg` from `from` to every address in `peers` (excluding
    /// `from` itself). Returns how many copies were scheduled.
    pub fn broadcast(
        &mut self,
        queue: &mut EventQueue<Envelope<M>>,
        from: NodeAddr,
        peers: &[NodeAddr],
        msg: M,
        rng: &mut dyn RngCore,
    ) -> usize
    where
        M: Clone,
    {
        let mut delivered = 0;
        for &p in peers {
            if p == from {
                continue;
            }
            if self.send(queue, from, p, msg.clone(), rng) {
                delivered += 1;
            }
        }
        delivered
    }

    /// Current virtual time helper (mirrors `queue.now()` for call sites
    /// that only hold the network).
    pub fn now(queue: &EventQueue<Envelope<M>>) -> SimTime {
        queue.now()
    }

    fn pair(a: NodeAddr, b: NodeAddr) -> (NodeAddr, NodeAddr) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::UniformLatency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Network<u32>, EventQueue<Envelope<u32>>, StdRng) {
        (Network::new(), EventQueue::new(), StdRng::seed_from_u64(7))
    }

    #[test]
    fn send_delivers_with_latency() {
        let (mut net, mut q, mut rng) = setup();
        assert!(net.send(&mut q, NodeAddr(0), NodeAddr(1), 42, &mut rng));
        let (t, env) = q.pop().unwrap();
        assert_eq!(t.as_millis(), 5);
        assert_eq!(env, Envelope { from: NodeAddr(0), to: NodeAddr(1), msg: 42 });
        assert_eq!(net.stats().sent, 1);
    }

    #[test]
    fn loss_drops_messages() {
        let (mut net, mut q, mut rng) = setup();
        net.set_loss(1.0);
        assert!(!net.send(&mut q, NodeAddr(0), NodeAddr(1), 1, &mut rng));
        assert!(q.is_empty());
        assert_eq!(net.stats().lost, 1);
    }

    #[test]
    fn partial_loss_is_probabilistic() {
        let (mut net, mut q, mut rng) = setup();
        net.set_loss(0.5);
        let mut ok = 0;
        for i in 0..1000 {
            if net.send(&mut q, NodeAddr(0), NodeAddr(1), i, &mut rng) {
                ok += 1;
            }
        }
        assert!((400..600).contains(&ok), "delivered {ok}/1000 at p=0.5");
    }

    #[test]
    #[should_panic]
    fn invalid_loss_panics() {
        let (mut net, ..) = setup();
        net.set_loss(1.5);
    }

    #[test]
    fn partition_blocks_both_directions() {
        let (mut net, mut q, mut rng) = setup();
        net.partition(NodeAddr(0), NodeAddr(1));
        assert!(!net.send(&mut q, NodeAddr(0), NodeAddr(1), 1, &mut rng));
        assert!(!net.send(&mut q, NodeAddr(1), NodeAddr(0), 1, &mut rng));
        assert!(net.send(&mut q, NodeAddr(0), NodeAddr(2), 1, &mut rng));
        assert_eq!(net.stats().blocked, 2);
        net.heal(NodeAddr(0), NodeAddr(1));
        assert!(net.send(&mut q, NodeAddr(0), NodeAddr(1), 1, &mut rng));
    }

    #[test]
    fn down_node_cannot_send_or_receive() {
        let (mut net, mut q, mut rng) = setup();
        net.fail_node(NodeAddr(1));
        assert!(net.is_down(NodeAddr(1)));
        assert!(!net.send(&mut q, NodeAddr(1), NodeAddr(0), 1, &mut rng));
        assert!(!net.send(&mut q, NodeAddr(0), NodeAddr(1), 1, &mut rng));
        net.recover_node(NodeAddr(1));
        assert!(net.send(&mut q, NodeAddr(0), NodeAddr(1), 1, &mut rng));
    }

    #[test]
    fn broadcast_skips_self_and_counts() {
        let (mut net, mut q, mut rng) = setup();
        let peers = [NodeAddr(0), NodeAddr(1), NodeAddr(2), NodeAddr(3)];
        let n = net.broadcast(&mut q, NodeAddr(0), &peers, 9, &mut rng);
        assert_eq!(n, 3);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn latency_model_is_configurable() {
        let (mut net, mut q, mut rng) = setup();
        net.set_latency(Box::new(UniformLatency::new(100, 200)));
        net.send(&mut q, NodeAddr(0), NodeAddr(1), 1, &mut rng);
        let (t, _) = q.pop().unwrap();
        assert!((100..=200).contains(&t.as_millis()));
    }

    #[test]
    fn connected_reflects_state() {
        let (mut net, ..) = setup();
        assert!(net.connected(NodeAddr(0), NodeAddr(1)));
        net.partition(NodeAddr(0), NodeAddr(1));
        assert!(!net.connected(NodeAddr(0), NodeAddr(1)));
        net.heal(NodeAddr(0), NodeAddr(1));
        net.fail_node(NodeAddr(0));
        assert!(!net.connected(NodeAddr(0), NodeAddr(1)));
    }
}
