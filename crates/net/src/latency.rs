//! Link latency models.

use rand::RngCore;
use std::fmt;

/// Samples a one-way message latency in milliseconds.
///
/// Models are objects so a [`crate::network::Network`] can be configured at
/// runtime.
pub trait LatencyModel: fmt::Debug {
    /// Draws a latency for one message.
    fn sample_ms(&self, rng: &mut dyn RngCore) -> u64;
}

/// Constant latency.
#[derive(Debug, Clone, Copy)]
pub struct FixedLatency(
    /// Latency in milliseconds.
    pub u64,
);

impl LatencyModel for FixedLatency {
    fn sample_ms(&self, _rng: &mut dyn RngCore) -> u64 {
        self.0
    }
}

/// Uniform latency in `[min_ms, max_ms]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformLatency {
    /// Inclusive lower bound.
    pub min_ms: u64,
    /// Inclusive upper bound.
    pub max_ms: u64,
}

impl UniformLatency {
    /// Creates a uniform model.
    ///
    /// # Panics
    ///
    /// Panics if `min_ms > max_ms`.
    pub fn new(min_ms: u64, max_ms: u64) -> Self {
        assert!(min_ms <= max_ms, "min must not exceed max");
        Self { min_ms, max_ms }
    }
}

impl LatencyModel for UniformLatency {
    fn sample_ms(&self, rng: &mut dyn RngCore) -> u64 {
        let span = self.max_ms - self.min_ms + 1;
        self.min_ms + rng.next_u64() % span
    }
}

/// A heavy-tailed model approximating wireless-sensor links: a base
/// latency plus an exponential tail (occasional retransmission delays).
#[derive(Debug, Clone, Copy)]
pub struct WirelessLatency {
    /// Typical one-hop latency.
    pub base_ms: u64,
    /// Mean of the exponential extra delay.
    pub tail_mean_ms: f64,
}

impl LatencyModel for WirelessLatency {
    fn sample_ms(&self, rng: &mut dyn RngCore) -> u64 {
        // Inverse-CDF sampling of Exp(1/mean).
        let u = (rng.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 2.0);
        let tail = -self.tail_mean_ms * u.ln();
        self.base_ms + tail.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = FixedLatency(25);
        for _ in 0..10 {
            assert_eq!(m.sample_ms(&mut rng), 25);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = UniformLatency::new(10, 20);
        for _ in 0..1000 {
            let v = m.sample_ms(&mut rng);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(UniformLatency::new(5, 5).sample_ms(&mut rng), 5);
    }

    #[test]
    #[should_panic]
    fn uniform_inverted_range_panics() {
        UniformLatency::new(20, 10);
    }

    #[test]
    fn wireless_at_least_base_with_tail_mean_near_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = WirelessLatency {
            base_ms: 5,
            tail_mean_ms: 20.0,
        };
        let samples: Vec<u64> = (0..5000).map(|_| m.sample_ms(&mut rng)).collect();
        assert!(samples.iter().all(|&v| v >= 5));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 25.0).abs() < 2.0, "mean {mean} far from 25");
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn LatencyModel>> = vec![
            Box::new(FixedLatency(1)),
            Box::new(UniformLatency::new(1, 2)),
            Box::new(WirelessLatency { base_ms: 1, tail_mean_ms: 1.0 }),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        for m in &models {
            let _ = m.sample_ms(&mut rng);
        }
    }
}
