//! # biot-net
//!
//! A deterministic discrete-event network simulator: the substrate on
//! which B-IoT's end-to-end scenarios and throughput experiments run.
//! The paper evaluated on a live IOTA network plus a Raspberry Pi; we
//! replace the live network with a virtual-time simulation so experiments
//! are reproducible and independent of host speed.
//!
//! ## Modules
//!
//! * [`time`] — [`time::SimTime`], virtual milliseconds.
//! * [`queue`] — [`queue::EventQueue`], the deterministic event heap.
//! * [`latency`] — pluggable link latency models.
//! * [`network`] — lossy, partitionable message passing and broadcast.
//! * [`topology`] — explicit link graphs with multi-hop Dijkstra routing.
//!
//! ## Example: a two-node ping over a lossy link
//!
//! ```
//! use biot_net::network::{Network, NodeAddr};
//! use biot_net::queue::EventQueue;
//!
//! let mut rng = rand::thread_rng();
//! let mut net: Network<&str> = Network::new();
//! let mut queue = EventQueue::new();
//! net.set_loss(0.0);
//! net.send(&mut queue, NodeAddr(0), NodeAddr(1), "hello", &mut rng);
//! while let Some((time, envelope)) = queue.pop() {
//!     println!("{time}: {} -> {}: {}", envelope.from, envelope.to, envelope.msg);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod network;
pub mod queue;
pub mod topology;
pub mod time;

pub use network::{Envelope, NetStats, Network, NodeAddr};
pub use queue::EventQueue;
pub use topology::{Route, RoutedNetwork, Topology};
pub use time::SimTime;
