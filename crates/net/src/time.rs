//! Virtual time for the discrete-event simulation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in milliseconds since simulation start.
///
/// All B-IoT experiments run on virtual time so that PoW durations,
/// network latencies, and the paper's 30-second ΔT windows are exact and
/// reproducible regardless of host speed.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Milliseconds since simulation start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference in milliseconds.
    pub fn millis_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    /// Adds milliseconds.
    fn add(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ms: u64) {
        self.0 += ms;
    }
}

impl Sub for SimTime {
    type Output = u64;

    /// Difference in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ms)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::ZERO.as_millis(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100);
        assert_eq!((t + 50).as_millis(), 150);
        let mut m = t;
        m += 25;
        assert_eq!(m.as_millis(), 125);
        assert_eq!(m - t, 25);
        assert_eq!(t.millis_since(m), 0); // saturating
        assert_eq!(m.millis_since(t), 25);
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_millis(1234)), "1.234s");
    }
}
