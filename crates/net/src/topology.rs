//! Network topology: explicit link graphs with multi-hop routing.
//!
//! The flat [`crate::network::Network`] treats every pair as directly
//! connected — fine for a gateway mesh on a factory LAN. Wireless sensors,
//! though, often reach their gateway over relay hops. [`Topology`] models
//! an explicit link graph with per-link latency and computes shortest
//! (lowest-latency) routes with Dijkstra's algorithm; partitions fall out
//! naturally when no path exists.

use crate::network::NodeAddr;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// An explicit link graph with per-link one-way latency in milliseconds.
///
/// # Examples
///
/// ```
/// use biot_net::network::NodeAddr;
/// use biot_net::topology::Topology;
///
/// let mut topo = Topology::new();
/// topo.add_link(NodeAddr(0), NodeAddr(1), 5);
/// topo.add_link(NodeAddr(1), NodeAddr(2), 7);
/// let route = topo.route(NodeAddr(0), NodeAddr(2)).expect("connected");
/// assert_eq!(route.total_latency_ms, 12);
/// assert_eq!(route.hops, vec![NodeAddr(1), NodeAddr(2)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// Adjacency: node → (neighbor → latency).
    links: HashMap<NodeAddr, HashMap<NodeAddr, u64>>,
    /// Nodes currently down (excluded from routing).
    down: HashSet<NodeAddr>,
}

/// A computed route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Intermediate and final nodes, in order (excludes the source).
    pub hops: Vec<NodeAddr>,
    /// Sum of link latencies along the route.
    pub total_latency_ms: u64,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or updates) a bidirectional link with the given latency.
    pub fn add_link(&mut self, a: NodeAddr, b: NodeAddr, latency_ms: u64) -> &mut Self {
        self.links.entry(a).or_default().insert(b, latency_ms);
        self.links.entry(b).or_default().insert(a, latency_ms);
        self
    }

    /// Removes the link between `a` and `b` (both directions).
    pub fn remove_link(&mut self, a: NodeAddr, b: NodeAddr) -> &mut Self {
        if let Some(n) = self.links.get_mut(&a) {
            n.remove(&b);
        }
        if let Some(n) = self.links.get_mut(&b) {
            n.remove(&a);
        }
        self
    }

    /// Marks a node down: no routes may pass through or terminate at it.
    pub fn fail_node(&mut self, n: NodeAddr) -> &mut Self {
        self.down.insert(n);
        self
    }

    /// Brings a node back.
    pub fn recover_node(&mut self, n: NodeAddr) -> &mut Self {
        self.down.remove(&n);
        self
    }

    /// Known nodes (anything that ever appeared in a link).
    pub fn nodes(&self) -> Vec<NodeAddr> {
        let mut v: Vec<NodeAddr> = self.links.keys().copied().collect();
        v.sort();
        v
    }

    /// Direct neighbors of `n` (ignores down state).
    pub fn neighbors(&self, n: NodeAddr) -> Vec<NodeAddr> {
        let mut v: Vec<NodeAddr> = self
            .links
            .get(&n)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Computes the lowest-latency route from `from` to `to` (Dijkstra).
    ///
    /// Returns `None` when no path exists (partition, down nodes, or
    /// unknown endpoints). A route to oneself is empty with zero latency.
    pub fn route(&self, from: NodeAddr, to: NodeAddr) -> Option<Route> {
        if self.down.contains(&from) || self.down.contains(&to) {
            return None;
        }
        if from == to {
            return Some(Route {
                hops: Vec::new(),
                total_latency_ms: 0,
            });
        }
        // Max-heap on Reverse(cost).
        use std::cmp::Reverse;
        let mut dist: HashMap<NodeAddr, u64> = HashMap::new();
        let mut prev: HashMap<NodeAddr, NodeAddr> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(Reverse((0u64, from)));
        while let Some(Reverse((cost, node))) = heap.pop() {
            if node == to {
                break;
            }
            if cost > *dist.get(&node).unwrap_or(&u64::MAX) {
                continue;
            }
            let Some(neighbors) = self.links.get(&node) else {
                continue;
            };
            for (&next, &latency) in neighbors {
                if self.down.contains(&next) {
                    continue;
                }
                let next_cost = cost + latency;
                if next_cost < *dist.get(&next).unwrap_or(&u64::MAX) {
                    dist.insert(next, next_cost);
                    prev.insert(next, node);
                    heap.push(Reverse((next_cost, next)));
                }
            }
        }
        let total = *dist.get(&to)?;
        // Reconstruct the hop list.
        let mut hops = vec![to];
        let mut cur = to;
        while let Some(&p) = prev.get(&cur) {
            if p == from {
                break;
            }
            hops.push(p);
            cur = p;
        }
        hops.reverse();
        Some(Route {
            hops,
            total_latency_ms: total,
        })
    }

    /// Returns true when a route exists.
    pub fn connected(&self, a: NodeAddr, b: NodeAddr) -> bool {
        self.route(a, b).is_some()
    }

    /// Builds a star topology: `center` linked to every node in `leaves`.
    pub fn star(center: NodeAddr, leaves: &[NodeAddr], latency_ms: u64) -> Self {
        let mut t = Self::new();
        for &l in leaves {
            t.add_link(center, l, latency_ms);
        }
        t
    }

    /// Builds a line topology over `nodes` in order.
    pub fn line(nodes: &[NodeAddr], latency_ms: u64) -> Self {
        let mut t = Self::new();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], latency_ms);
        }
        t
    }
}

/// A network whose delivery latency and reachability come from an
/// explicit [`Topology`] instead of a flat latency model: the one-way
/// delay of a message is the total latency of the lowest-latency route,
/// and unreachable destinations are blocked.
///
/// # Examples
///
/// ```
/// use biot_net::network::NodeAddr;
/// use biot_net::queue::EventQueue;
/// use biot_net::topology::{RoutedNetwork, Topology};
///
/// let topo = Topology::line(&[NodeAddr(0), NodeAddr(1), NodeAddr(2)], 10);
/// let mut net: RoutedNetwork<&str> = RoutedNetwork::new(topo);
/// let mut queue = EventQueue::new();
/// assert!(net.send(&mut queue, NodeAddr(0), NodeAddr(2), "hi"));
/// let (t, env) = queue.pop().unwrap();
/// assert_eq!(t.as_millis(), 20); // two 10 ms hops
/// assert_eq!(env.msg, "hi");
/// ```
#[derive(Debug)]
pub struct RoutedNetwork<M> {
    topology: Topology,
    sent: u64,
    blocked: u64,
    _marker: std::marker::PhantomData<M>,
}

impl<M> RoutedNetwork<M> {
    /// Creates a routed network over `topology`.
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            sent: 0,
            blocked: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Mutable access to the topology (fail links/nodes mid-run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Messages scheduled / blocked so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.sent, self.blocked)
    }

    /// Sends `msg` from `from` to `to` along the lowest-latency route,
    /// scheduling delivery after the route's total latency. Returns
    /// `false` (and blocks the message) when no route exists.
    pub fn send(
        &mut self,
        queue: &mut crate::queue::EventQueue<crate::network::Envelope<M>>,
        from: NodeAddr,
        to: NodeAddr,
        msg: M,
    ) -> bool {
        match self.topology.route(from, to) {
            Some(route) => {
                queue.schedule_in(
                    route.total_latency_ms,
                    crate::network::Envelope { from, to, msg },
                );
                self.sent += 1;
                true
            }
            None => {
                self.blocked += 1;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeAddr {
        NodeAddr(i)
    }

    #[test]
    fn direct_link_routes() {
        let mut t = Topology::new();
        t.add_link(n(0), n(1), 5);
        let r = t.route(n(0), n(1)).unwrap();
        assert_eq!(r.hops, vec![n(1)]);
        assert_eq!(r.total_latency_ms, 5);
        // Bidirectional.
        assert_eq!(t.route(n(1), n(0)).unwrap().total_latency_ms, 5);
    }

    #[test]
    fn picks_lowest_latency_path() {
        let mut t = Topology::new();
        // Direct but slow vs two fast hops.
        t.add_link(n(0), n(2), 100);
        t.add_link(n(0), n(1), 10);
        t.add_link(n(1), n(2), 10);
        let r = t.route(n(0), n(2)).unwrap();
        assert_eq!(r.total_latency_ms, 20);
        assert_eq!(r.hops, vec![n(1), n(2)]);
    }

    #[test]
    fn self_route_is_empty() {
        let t = Topology::line(&[n(0), n(1)], 5);
        let r = t.route(n(0), n(0)).unwrap();
        assert!(r.hops.is_empty());
        assert_eq!(r.total_latency_ms, 0);
    }

    #[test]
    fn partition_returns_none() {
        let mut t = Topology::new();
        t.add_link(n(0), n(1), 5);
        t.add_link(n(2), n(3), 5);
        assert!(t.route(n(0), n(3)).is_none());
        assert!(!t.connected(n(0), n(2)));
        assert!(t.connected(n(0), n(1)));
    }

    #[test]
    fn removed_link_breaks_route() {
        let mut t = Topology::line(&[n(0), n(1), n(2)], 5);
        assert!(t.connected(n(0), n(2)));
        t.remove_link(n(1), n(2));
        assert!(!t.connected(n(0), n(2)));
    }

    #[test]
    fn down_node_is_routed_around_or_blocks() {
        let mut t = Topology::new();
        // Two disjoint paths 0→3: via 1 (fast) and via 2 (slow).
        t.add_link(n(0), n(1), 5);
        t.add_link(n(1), n(3), 5);
        t.add_link(n(0), n(2), 20);
        t.add_link(n(2), n(3), 20);
        assert_eq!(t.route(n(0), n(3)).unwrap().total_latency_ms, 10);
        t.fail_node(n(1));
        // Routed around the failure through the slow path.
        let r = t.route(n(0), n(3)).unwrap();
        assert_eq!(r.total_latency_ms, 40);
        assert_eq!(r.hops, vec![n(2), n(3)]);
        t.fail_node(n(2));
        assert!(t.route(n(0), n(3)).is_none());
        t.recover_node(n(1));
        assert_eq!(t.route(n(0), n(3)).unwrap().total_latency_ms, 10);
    }

    #[test]
    fn down_endpoint_blocks() {
        let mut t = Topology::line(&[n(0), n(1)], 5);
        t.fail_node(n(1));
        assert!(t.route(n(0), n(1)).is_none());
        assert!(t.route(n(1), n(0)).is_none());
    }

    #[test]
    fn star_and_line_builders() {
        let star = Topology::star(n(0), &[n(1), n(2), n(3)], 7);
        assert_eq!(star.route(n(1), n(3)).unwrap().total_latency_ms, 14);
        assert_eq!(star.neighbors(n(0)), vec![n(1), n(2), n(3)]);
        let line = Topology::line(&[n(0), n(1), n(2), n(3)], 3);
        assert_eq!(line.route(n(0), n(3)).unwrap().total_latency_ms, 9);
        assert_eq!(line.nodes().len(), 4);
    }

    #[test]
    fn routed_network_delivers_with_route_latency() {
        use crate::queue::EventQueue;
        let topo = Topology::line(&[n(0), n(1), n(2), n(3)], 5);
        let mut net: RoutedNetwork<u32> = RoutedNetwork::new(topo);
        let mut q = EventQueue::new();
        assert!(net.send(&mut q, n(0), n(3), 42));
        let (t, env) = q.pop().unwrap();
        assert_eq!(t.as_millis(), 15);
        assert_eq!(env.msg, 42);
        assert_eq!(net.counters(), (1, 0));
    }

    #[test]
    fn routed_network_blocks_unreachable() {
        use crate::queue::EventQueue;
        let mut topo = Topology::line(&[n(0), n(1), n(2)], 5);
        topo.fail_node(n(1));
        let mut net: RoutedNetwork<u32> = RoutedNetwork::new(topo);
        let mut q = EventQueue::new();
        assert!(!net.send(&mut q, n(0), n(2), 1));
        assert!(q.is_empty());
        assert_eq!(net.counters(), (0, 1));
        // Heal through the topology handle mid-run.
        net.topology_mut().recover_node(n(1));
        assert!(net.send(&mut q, n(0), n(2), 2));
    }

    #[test]
    fn hop_list_reconstruction_long_path() {
        let nodes: Vec<NodeAddr> = (0..6).map(n).collect();
        let t = Topology::line(&nodes, 2);
        let r = t.route(n(0), n(5)).unwrap();
        assert_eq!(r.hops, vec![n(1), n(2), n(3), n(4), n(5)]);
        assert_eq!(r.total_latency_ms, 10);
    }
}
