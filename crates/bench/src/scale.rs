//! Million-transaction ingest harness for the sealed-cone weight index.
//!
//! Drives a single tangle through a long attach run with periodic
//! confirmation and sealing — the gateway's steady-state loop with the
//! mining and networking stripped away, so what is measured is exactly
//! the ledger's per-attach cost. Sampled recount-oracle checks run inside
//! the loop, so the numbers are only reported if the index stayed exact.
//!
//! The baseline comparison deliberately does **not** re-run the full
//! ingest with sealing off: an unsealed 1M-tx run walks ever-deeper
//! cones on every attach and is quadratic — hours, not minutes. Instead
//! the finished sealed tangle is cloned, unsealed in place (folding every
//! sealed weight back into a plain entry), and both clones take the same
//! probe batch of fresh attaches *at full ledger depth*. That measures
//! precisely the quantity the index changes — per-attach cost at depth —
//! on identical graphs.

use biot_tangle::graph::Tangle;
use biot_tangle::tips::{TipSelector, UniformRandomSelector};
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Knobs for a sealed ingest run.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Transactions to attach.
    pub txs: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Run `confirm_with_threshold` every this many attaches.
    pub confirm_every: usize,
    /// Weight at which a transaction counts as confirmed.
    pub confirm_threshold: u64,
    /// Seal the confirmed cone every this many attaches.
    pub seal_every: usize,
    /// Recency lag handed to `seal_frontier`: how many recent
    /// transactions stay outside the seal.
    pub seal_lag: usize,
    /// Verify `cumulative_weight == cumulative_weight_recount` on a
    /// recently attached transaction every this many attaches (0 = off).
    pub oracle_every: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            txs: 1_000_000,
            seed: 42,
            confirm_every: 256,
            confirm_threshold: 2,
            seal_every: 512,
            seal_lag: 128,
            oracle_every: 10_000,
        }
    }
}

/// Everything a sealed ingest run measured.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// Transactions attached.
    pub txs: usize,
    /// Wall-clock for the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// Sustained attach throughput over the run.
    pub tx_per_sec: f64,
    /// Median per-attach time, nanoseconds.
    pub attach_ns_p50: u64,
    /// 99th-percentile per-attach time, nanoseconds.
    pub attach_ns_p99: u64,
    /// Worst single attach pause, nanoseconds.
    pub attach_ns_max: u64,
    /// Log2 pause histogram: `(bucket_floor_ns, count)` with
    /// `bucket_floor_ns = 2^k`, covering every attach of the run.
    pub histogram: Vec<(u64, u64)>,
    /// Attach throughput per tenth-of-run window — flat windows mean
    /// per-attach cost did not grow with ledger depth.
    pub window_tx_per_sec: Vec<f64>,
    /// p99 per-attach nanoseconds per tenth-of-run window.
    pub window_p99_ns: Vec<u64>,
    /// Mutable frontier entries at the end of the run.
    pub frontier_len: usize,
    /// Immutable sealed-epoch entries at the end of the run.
    pub sealed_len: usize,
    /// Seals performed / boundary passes / stray walks (see `SealStats`).
    pub seals: u64,
    /// Attaches whose whole sealed increment was one pass-counter bump.
    pub passes: u64,
    /// Attaches that needed an exact walk inside the sealed region.
    pub strays: u64,
    /// Recount-oracle comparisons performed during the run.
    pub oracle_checks: u64,
    /// Oracle comparisons that disagreed (must be 0).
    pub oracle_failures: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn log2_histogram(samples: &[u64]) -> Vec<(u64, u64)> {
    let mut buckets = [0u64; 64];
    for &s in samples {
        buckets[64 - (s.max(1)).leading_zeros() as usize - 1] += 1;
    }
    buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| (1u64 << k, c))
        .collect()
}

/// Builds one transaction on the given parents; payload/nonce vary with
/// `i` so ids never collide.
fn make_tx(i: usize, a: TxId, b: TxId, ts: u64) -> biot_tangle::tx::Transaction {
    TransactionBuilder::new(NodeId([(i % 251) as u8; 32]))
        .parents(a, b)
        .payload(Payload::Data((i as u64).to_be_bytes().to_vec()))
        .timestamp_ms(ts)
        .nonce(i as u64)
        .build()
}

/// Runs the sealed ingest loop and returns the grown tangle plus its
/// measurements. Panics if any recount-oracle check fails — a report must
/// never be produced from a drifted index.
pub fn run_sealed_ingest(cfg: &ScaleConfig) -> (Tangle, ScaleReport) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tangle = Tangle::new();
    tangle.attach_genesis(NodeId([0; 32]), 0);

    let mut attach_ns: Vec<u64> = Vec::with_capacity(cfg.txs);
    let mut oracle_checks = 0u64;
    let mut oracle_failures = 0u64;
    let mut recent: Vec<TxId> = Vec::with_capacity(64);
    let started = Instant::now();

    for i in 0..cfg.txs {
        let (a, b) = UniformRandomSelector
            .select_tips(&tangle, &mut rng)
            .expect("tangle never empties");
        let ts = i as u64 + 1;
        let tx = make_tx(i, a, b, ts);
        let t0 = Instant::now();
        let id = tangle.attach(tx, ts).expect("parents are tips");
        attach_ns.push(t0.elapsed().as_nanos() as u64);

        recent.push(id);
        if recent.len() > 64 {
            recent.remove(0);
        }
        if cfg.confirm_every > 0 && i % cfg.confirm_every == cfg.confirm_every - 1 {
            tangle.confirm_with_threshold(cfg.confirm_threshold);
        }
        if cfg.seal_every > 0 && i % cfg.seal_every == cfg.seal_every - 1 {
            tangle.seal_frontier(cfg.seal_lag);
        }
        if cfg.oracle_every > 0 && i % cfg.oracle_every == cfg.oracle_every - 1 {
            // A recent transaction: its cone is small, so the recount
            // walk stays cheap even at depth.
            let probe = recent[rng.gen_range(0..recent.len())];
            oracle_checks += 1;
            if tangle.cumulative_weight(&probe) != tangle.cumulative_weight_recount(&probe) {
                oracle_failures += 1;
            }
        }
    }
    let elapsed = started.elapsed();

    // Final full-depth oracle audit: the genesis cone is the whole
    // ledger, so one recount here exercises every sealed entry.
    let genesis = tangle.genesis().expect("genesis attached");
    oracle_checks += 1;
    if tangle.cumulative_weight(&genesis) != tangle.cumulative_weight_recount(&genesis) {
        oracle_failures += 1;
    }
    assert_eq!(oracle_failures, 0, "sealed index drifted from recount oracle");

    let window = (cfg.txs / 10).max(1);
    let window_tx_per_sec: Vec<f64> = attach_ns
        .chunks(window)
        .map(|w| {
            let total_ns: u64 = w.iter().sum();
            w.len() as f64 / (total_ns.max(1) as f64 / 1e9)
        })
        .collect();
    let window_p99_ns: Vec<u64> = attach_ns
        .chunks(window)
        .map(|w| {
            let mut s = w.to_vec();
            s.sort_unstable();
            percentile(&s, 0.99)
        })
        .collect();
    let histogram = log2_histogram(&attach_ns);
    let mut sorted = attach_ns;
    sorted.sort_unstable();

    let stats = tangle.seal_stats();
    let report = ScaleReport {
        txs: cfg.txs,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        tx_per_sec: cfg.txs as f64 / elapsed.as_secs_f64(),
        attach_ns_p50: percentile(&sorted, 0.5),
        attach_ns_p99: percentile(&sorted, 0.99),
        attach_ns_max: sorted.last().copied().unwrap_or(0),
        histogram,
        window_tx_per_sec,
        window_p99_ns,
        frontier_len: tangle.frontier_len(),
        sealed_len: tangle.sealed_len(),
        seals: stats.seals,
        passes: stats.passes,
        strays: stats.strays,
        oracle_checks,
        oracle_failures,
    };
    (tangle, report)
}

/// Per-attach cost of a probe batch at full ledger depth.
#[derive(Clone, Copy, Debug)]
pub struct ProbeStats {
    /// Probes attached.
    pub probes: usize,
    /// Mean per-attach time, nanoseconds.
    pub mean_ns: f64,
    /// 99th-percentile per-attach time, nanoseconds.
    pub p99_ns: u64,
    /// Worst probe attach, nanoseconds.
    pub max_ns: u64,
    /// Probe attach throughput.
    pub tx_per_sec: f64,
}

/// Attaches `probes` fresh transactions to a clone of `base`, timing each
/// attach. `base` itself is untouched, so the same depth-1M graph can be
/// probed sealed and unsealed.
pub fn probe_attach(base: &Tangle, probes: usize, seed: u64) -> ProbeStats {
    let mut tangle = base.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let base_ts = tangle.total_attached() + 1_000_000;
    let mut ns: Vec<u64> = Vec::with_capacity(probes);
    for i in 0..probes {
        let (a, b) = UniformRandomSelector
            .select_tips(&tangle, &mut rng)
            .expect("tangle never empties");
        let ts = base_ts + i as u64;
        let tx = make_tx(usize::MAX - i, a, b, ts);
        let t0 = Instant::now();
        tangle.attach(tx, ts).expect("parents are tips");
        ns.push(t0.elapsed().as_nanos() as u64);
    }
    let total: u64 = ns.iter().sum();
    ns.sort_unstable();
    ProbeStats {
        probes,
        mean_ns: total as f64 / probes.max(1) as f64,
        p99_ns: percentile(&ns, 0.99),
        max_ns: ns.last().copied().unwrap_or(0),
        tx_per_sec: probes as f64 / (total.max(1) as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sealed_run_is_exact_and_bounded() {
        let cfg = ScaleConfig {
            txs: 4_000,
            confirm_every: 64,
            seal_every: 128,
            seal_lag: 32,
            oracle_every: 500,
            ..ScaleConfig::default()
        };
        let (tangle, report) = run_sealed_ingest(&cfg);
        assert_eq!(report.txs, 4_000);
        assert_eq!(report.oracle_failures, 0);
        assert!(report.oracle_checks > 5);
        assert!(report.seals > 0, "sealing must have engaged");
        assert!(
            report.sealed_len > report.frontier_len,
            "most of the ledger should be sealed: {} sealed vs {} frontier",
            report.sealed_len,
            report.frontier_len
        );
        let total: u64 = report.histogram.iter().map(|(_, c)| c).sum();
        assert_eq!(total as usize, cfg.txs, "histogram covers every attach");

        // Probing the same graph sealed vs unsealed must agree on the
        // resulting ledger shape (the index is invisible), while the
        // sealed probe does strictly bounded work.
        let sealed_probe = probe_attach(&tangle, 200, 7);
        let mut unsealed = tangle.clone();
        unsealed.unseal_all();
        let unsealed_probe = probe_attach(&unsealed, 200, 7);
        assert_eq!(sealed_probe.probes, unsealed_probe.probes);
        assert!(sealed_probe.mean_ns < unsealed_probe.mean_ns * 2.0 + 1e9);
    }
}
