//! Emits `results/BENCH_credit.json`: credit-query throughput
//! (queries per second) over 10k- and 100k-event histories, the
//! event-sourced [`CreditLedger`]'s incremental path vs a faithful copy
//! of the pre-refactor full-scan registry.
//!
//! Run with: `cargo run -p biot-bench --release --bin credit_report`
//!
//! Histories are generated batch-style — several validations per node
//! share one virtual instant, like a gateway `submit_batch` — so the
//! report also shows the same-instant dedup: `records` (what the ledger
//! stores) vs `events` (what it was fed).

use biot_credit::{CreditEvent, CreditLedger, CreditParams, Misbehavior};
use biot_net::time::SimTime;
use biot_tangle::tx::NodeId;
use std::fs;
use std::io::Write;
use std::time::Instant;

const NODES: usize = 8;
/// Events sharing one virtual instant (a gateway batch): ten
/// validations per node per instant across the eight nodes.
const BATCH: u64 = 80;
/// One misbehaviour every this many events, so CrN stays exercised but
/// cheap (as in a real run, where misbehaviour is rare).
const MIS_EVERY: u64 = 1_000;

fn node(i: usize) -> NodeId {
    NodeId([(i % NODES) as u8; 32])
}

/// A batchy event history: `n` events across [`NODES`] nodes, timestamps
/// advancing 100 ms per batch.
fn history(n: u64) -> Vec<CreditEvent> {
    (0..n)
        .map(|i| {
            let at = SimTime::from_millis((i / BATCH) * 100);
            let who = node(i as usize);
            if i % MIS_EVERY == MIS_EVERY - 1 {
                CreditEvent::misbehaved(who, Misbehavior::LazyTips, at)
            } else {
                CreditEvent::validated(who, 1.0, at)
            }
        })
        .collect()
}

/// The pre-refactor credit registry, kept verbatim as the baseline: one
/// flat record list per node, every query a full history scan.
struct ScanRegistry {
    params: CreditParams,
    tx: Vec<Vec<(SimTime, f64)>>,
    mis: Vec<Vec<(SimTime, Misbehavior)>>,
}

impl ScanRegistry {
    fn from_events(params: CreditParams, events: &[CreditEvent]) -> Self {
        let mut reg = Self {
            params,
            tx: vec![Vec::new(); NODES],
            mis: vec![Vec::new(); NODES],
        };
        for ev in events {
            let slot = ev.node().0[0] as usize;
            match *ev {
                CreditEvent::Validated { weight, at, .. } => reg.tx[slot].push((at, weight)),
                CreditEvent::Misbehaved { kind, at, .. } => reg.mis[slot].push((at, kind)),
            }
        }
        reg
    }

    fn credit_of(&self, slot: usize, now: SimTime) -> f64 {
        let p = &self.params;
        let delta_t_secs = p.delta_t_ms as f64 / 1000.0;
        let cutoff = now.as_millis().saturating_sub(p.delta_t_ms);
        let crp = self.tx[slot]
            .iter()
            .filter(|(at, _)| at.as_millis() >= cutoff && *at <= now)
            .map(|(_, w)| w)
            .sum::<f64>()
            / delta_t_secs;
        let crn = -self.mis[slot]
            .iter()
            .filter(|(at, _)| *at <= now)
            .map(|(at, kind)| {
                let elapsed_ms = now.millis_since(*at).max(p.min_elapsed_ms);
                let elapsed_secs = elapsed_ms as f64 / 1000.0;
                p.alpha(*kind) * delta_t_secs / elapsed_secs
            })
            .sum::<f64>();
        p.lambda1 * crp + p.lambda2 * crn
    }
}

/// Queries per second: runs `query` repeatedly for ~`budget_s` of wall
/// clock (at least 3 reps) and divides.
fn queries_per_sec(mut query: impl FnMut(u64), budget_s: f64) -> f64 {
    let start = Instant::now();
    let mut reps = 0u64;
    while reps < 3 || start.elapsed().as_secs_f64() < budget_s {
        query(reps);
        reps += 1;
    }
    reps as f64 / start.elapsed().as_secs_f64()
}

struct Row {
    events: u64,
    records: usize,
    scan_per_sec: f64,
    incr_per_sec: f64,
}

fn main() -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host cores: {cores}");

    let params = CreditParams::default();
    let mut rows = Vec::new();
    for n in [10_000u64, 100_000] {
        let events = history(n);
        let ledger = CreditLedger::from_events(params, &events);
        let scan = ScanRegistry::from_events(params, &events);
        let records: usize = (0..NODES)
            .map(|i| ledger.tx_record_count(node(i)) + ledger.misbehavior_count(node(i)))
            .sum();
        let t_end = (n / BATCH) * 100;

        // Sweep the probe time across the run (and past it) so windowing,
        // not caching, is what's measured; consistency is asserted on the
        // way (same Eqns, so identical answers).
        let probe = |j: u64| {
            let slot = (j % NODES as u64) as usize;
            let now = SimTime::from_millis((j * 7_919) % (t_end + p_window(params)));
            (slot, now)
        };
        let incr_per_sec = queries_per_sec(
            |j| {
                let (slot, now) = probe(j);
                std::hint::black_box(ledger.credit_of(node(slot), now));
            },
            0.4,
        );
        let scan_per_sec = queries_per_sec(
            |j| {
                let (slot, now) = probe(j);
                std::hint::black_box(scan.credit_of(slot, now));
            },
            0.4,
        );
        for j in 0..64 {
            let (slot, now) = probe(j);
            let a = ledger.credit_of(node(slot), now).combined;
            let b = scan.credit_of(slot, now);
            assert_eq!(a, b, "ledger and scan baseline disagree at j={j}");
        }

        println!(
            "events={n:>7} records={records:>6} ({:>4.1}x dedup)  scan {scan_per_sec:>10.0}/s -> \
             incremental {incr_per_sec:>12.0}/s ({:>7.1}x)",
            n as f64 / records as f64,
            incr_per_sec / scan_per_sec.max(1e-9),
        );
        rows.push(Row { events: n, records, scan_per_sec, incr_per_sec });
    }

    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_credit.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"host_cores\": {cores},")?;
    writeln!(f, "  \"nodes\": {NODES},")?;
    writeln!(f, "  \"batch\": {BATCH},")?;
    writeln!(f, "  \"histories\": [")?;
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"events\": {}, \"records_after_dedup\": {}, \"dedup_ratio\": {:.1}, \
                 \"scan_per_sec\": {:.1}, \"incremental_per_sec\": {:.1}, \"speedup\": {:.1}}}",
                r.events,
                r.records,
                r.events as f64 / r.records as f64,
                r.scan_per_sec,
                r.incr_per_sec,
                r.incr_per_sec / r.scan_per_sec.max(1e-9),
            )
        })
        .collect();
    writeln!(f, "{}", body.join(",\n"))?;
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_credit.json");
    Ok(())
}

/// Probe times extend one window past the end of the history.
fn p_window(p: CreditParams) -> u64 {
    p.delta_t_ms
}
