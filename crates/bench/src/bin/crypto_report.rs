//! Emits `results/BENCH_rsa.json`: measured naive vs Montgomery modular
//! exponentiation on 512-bit RSA private-key operations, in a
//! machine-readable form for tracking across commits.
//!
//! Run with: `cargo run -p biot-bench --release --bin crypto_report`

use biot_crypto::bignum::{BigUint, MontgomeryCtx};
use biot_crypto::rsa::RsaPrivateKey;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// Mean seconds per call over `reps` invocations of `f`.
fn time_it<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// The CRT pieces `RsaPrivateKey` precomputes, rebuilt here from the
/// public accessors so both solvers below exponentiate the same problem.
struct CrtParts {
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

impl CrtParts {
    fn of(sk: &RsaPrivateKey) -> Self {
        let (p, q) = sk.factors();
        let d = sk.private_exponent();
        let one = BigUint::one();
        Self {
            p: p.clone(),
            q: q.clone(),
            dp: d.rem(&(p - &one)),
            dq: d.rem(&(q - &one)),
            qinv: q.modinv(p).expect("p, q are distinct primes"),
        }
    }

    /// Garner recombination of half-width residues `m1 = m^dp mod p`,
    /// `m2 = m^dq mod q`.
    fn recombine(&self, m1: &BigUint, m2: &BigUint) -> BigUint {
        // h = qinv * (m1 - m2) mod p, with m2 reduced into [0, p).
        let diff = (&(m1 + &self.p) - &m2.rem(&self.p)).rem(&self.p);
        let h = (&diff * &self.qinv).rem(&self.p);
        m2 + &(&self.q * &h)
    }

    fn private_op_naive(&self, m: &BigUint) -> BigUint {
        let m1 = m.modpow_naive(&self.dp, &self.p);
        let m2 = m.modpow_naive(&self.dq, &self.q);
        self.recombine(&m1, &m2)
    }

    fn private_op_mont(&self, ctx_p: &MontgomeryCtx, ctx_q: &MontgomeryCtx, m: &BigUint) -> BigUint {
        let m1 = ctx_p.modpow(m, &self.dp);
        let m2 = ctx_q.modpow(m, &self.dq);
        self.recombine(&m1, &m2)
    }
}

fn main() -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host cores: {cores}");

    let mut rng = StdRng::seed_from_u64(21);
    let sk = RsaPrivateKey::generate(512, &mut rng);
    let n = sk.public().modulus().clone();
    let d = sk.private_exponent().clone();
    let m = BigUint::from_bytes_be(&[0xA5u8; 64]).rem(&n);

    // Full-width private exponentiation m^d mod n: the naive oracle vs the
    // Montgomery context every dispatched modpow now uses.
    let ctx = MontgomeryCtx::new(n.clone()).expect("RSA modulus is odd");
    assert_eq!(ctx.modpow(&m, &d), m.modpow_naive(&d, &n));
    let full_naive = time_it(20, || {
        black_box(m.modpow_naive(&d, &n));
    });
    let full_mont = time_it(200, || {
        black_box(ctx.modpow(&m, &d));
    });
    let full_speedup = full_naive / full_mont.max(1e-12);
    println!(
        "full modpow 512  naive={:.3}ms  montgomery={:.3}ms  speedup={full_speedup:.1}x",
        full_naive * 1e3,
        full_mont * 1e3
    );

    // The CRT private op `sign`/`decrypt` actually perform, with both
    // half-width exponentiations swapped between solvers.
    let parts = CrtParts::of(&sk);
    let (p, q) = sk.factors();
    let ctx_p = MontgomeryCtx::new(p.clone()).expect("p is odd");
    let ctx_q = MontgomeryCtx::new(q.clone()).expect("q is odd");
    assert_eq!(
        parts.private_op_mont(&ctx_p, &ctx_q, &m),
        parts.private_op_naive(&m)
    );
    let crt_naive = time_it(40, || {
        black_box(parts.private_op_naive(&m));
    });
    let crt_mont = time_it(400, || {
        black_box(parts.private_op_mont(&ctx_p, &ctx_q, &m));
    });
    let crt_speedup = crt_naive / crt_mont.max(1e-12);
    println!(
        "CRT private op   naive={:.3}ms  montgomery={:.3}ms  speedup={crt_speedup:.1}x",
        crt_naive * 1e3,
        crt_mont * 1e3
    );

    // End-to-end library calls (cached contexts, CRT, padding, hashing).
    let sig = sk.sign(b"reading");
    let sign_secs = time_it(400, || {
        black_box(sk.sign(b"reading"));
    });
    let verify_secs = time_it(2000, || {
        black_box(sk.public().verify(b"reading", &sig));
    });
    println!(
        "library          sign={:.3}ms  verify={:.4}ms",
        sign_secs * 1e3,
        verify_secs * 1e3
    );

    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_rsa.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"host_cores\": {cores},")?;
    writeln!(f, "  \"rsa_bits\": 512,")?;
    writeln!(f, "  \"full_modpow\": {{")?;
    writeln!(f, "    \"naive_secs\": {full_naive:.9},")?;
    writeln!(f, "    \"montgomery_secs\": {full_mont:.9},")?;
    writeln!(f, "    \"speedup\": {full_speedup:.1}")?;
    writeln!(f, "  }},")?;
    writeln!(f, "  \"crt_private_op\": {{")?;
    writeln!(f, "    \"naive_secs\": {crt_naive:.9},")?;
    writeln!(f, "    \"montgomery_secs\": {crt_mont:.9},")?;
    writeln!(f, "    \"speedup\": {crt_speedup:.1}")?;
    writeln!(f, "  }},")?;
    writeln!(f, "  \"library_ops\": {{")?;
    writeln!(f, "    \"sign_secs\": {sign_secs:.9},")?;
    writeln!(f, "    \"verify_secs\": {verify_secs:.9}")?;
    writeln!(f, "  }}")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_rsa.json");
    Ok(())
}
