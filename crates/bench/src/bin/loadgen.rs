//! Drives an ingest reactor with concurrent light-node connections over
//! real sockets and prints a throughput/latency summary.
//!
//! Run with: `cargo run -p biot-bench --release --bin loadgen`
//!
//! Knobs (environment variables, all optional):
//!
//! | variable                 | default | meaning                                  |
//! |--------------------------|---------|------------------------------------------|
//! | `BIOT_INGEST_CONNS`      | 256     | concurrent sending connections           |
//! | `BIOT_INGEST_IDLE`       | 0       | additional never-sending connections     |
//! | `BIOT_INGEST_FRAMES`     | 4       | frames each connection sends             |
//! | `BIOT_INGEST_BATCH`      | 8       | transactions per frame                   |
//! | `BIOT_INGEST_INTERVAL_MS`| 5       | per-connection gap between frames        |
//! | `BIOT_INGEST_POLLER`     | epoll   | `epoll` or `scan` (the naive baseline)   |
//! | `BIOT_INGEST_DEADLINE_S` | 120     | abort threshold                          |
//!
//! Exits nonzero if any transaction went unacked — the loadgen doubles
//! as a smoke test of the full socket → reactor → gateway → ack path.

use biot_ingest::reactor::PollerKind;
use biot_ingest::server::IngestConfig;
use biot_sim::loadgen::{run_loadgen, LoadgenConfig};
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let poller = match std::env::var("BIOT_INGEST_POLLER").as_deref() {
        Ok("scan") => PollerKind::Scan,
        _ => PollerKind::Epoll,
    };
    let config = LoadgenConfig {
        connections: env_usize("BIOT_INGEST_CONNS", 256),
        idle_connections: env_usize("BIOT_INGEST_IDLE", 0),
        frames_per_conn: env_usize("BIOT_INGEST_FRAMES", 4),
        batch_size: env_usize("BIOT_INGEST_BATCH", 8),
        arrival_interval: Duration::from_millis(env_u64("BIOT_INGEST_INTERVAL_MS", 5)),
        deadline: Duration::from_secs(env_u64("BIOT_INGEST_DEADLINE_S", 120)),
        ingest: IngestConfig {
            poller,
            ..IngestConfig::default()
        },
        ..LoadgenConfig::default()
    };

    println!(
        "loadgen: {} conns (+{} idle) x {} frames x {} txs, {:?} interval, {:?} poller",
        config.connections,
        config.idle_connections,
        config.frames_per_conn,
        config.batch_size,
        config.arrival_interval,
        poller,
    );
    let report = run_loadgen(&config);
    println!(
        "  completed conns : {}/{}",
        report.connections, config.connections
    );
    println!("  sent txs        : {}", report.sent_txs);
    println!(
        "  acked           : {} (accepted {}, rate-limited {}, busy {}, rejected {})",
        report.acked.total(),
        report.acked.accepted,
        report.acked.rate_limited,
        report.acked.busy,
        report.acked.rejected,
    );
    println!("  elapsed         : {} ms", report.elapsed_ms);
    println!("  admitted/s      : {:.0}", report.admitted_per_sec);
    println!(
        "  ack RTT         : p50 {:.2} ms, p99 {:.2} ms",
        report.p50_ms, report.p99_ms
    );
    println!(
        "  server          : {:?} poller, {:?}",
        report.poller,
        report.server
    );

    if report.acked.total() != report.sent_txs {
        eprintln!(
            "FAIL: {} of {} txs unacked",
            report.sent_txs - report.acked.total(),
            report.sent_txs
        );
        std::process::exit(1);
    }
}
