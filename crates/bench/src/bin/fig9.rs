//! Fig 9 — Performance of the credit-based PoW mechanism: four control
//! experiments over a 90-second (3·ΔT) window.
//!
//! Paper values (average PoW time per transaction, initial difficulty 11):
//!
//! | control | paper |
//! |---|---|
//! | original PoW                        | 0.700 s |
//! | credit-based, normal behaviour      | 0.118 s |
//! | credit-based, one malicious attack  | 1.667 s |
//! | credit-based, two malicious attacks | 3.750 s |

use biot_bench::{header, row, secs};
use biot_net::time::SimTime;
use biot_sim::runner::{run_single_node, NodeRunConfig, PolicyChoice};

struct Control {
    name: &'static str,
    paper_secs: f64,
    policy: PolicyChoice,
    attacks: Vec<u64>,
}

fn main() {
    header(
        "Fig 9: credit-based PoW — four control experiments",
        "Huang et al., ICDCS'19, Fig. 9",
    );
    let controls = [
        Control {
            name: "1 original PoW",
            paper_secs: 0.700,
            policy: PolicyChoice::original_pow(),
            attacks: vec![],
        },
        Control {
            name: "2 credit-based, normal",
            paper_secs: 0.118,
            policy: PolicyChoice::credit_based(),
            attacks: vec![],
        },
        Control {
            name: "3 credit-based, 1 attack",
            paper_secs: 1.667,
            policy: PolicyChoice::credit_based(),
            attacks: vec![30],
        },
        Control {
            name: "4 credit-based, 2 attacks",
            paper_secs: 3.750,
            policy: PolicyChoice::credit_based(),
            attacks: vec![20, 40],
        },
    ];

    println!();
    let mut measured = Vec::new();
    // Average each control over several seeds to stabilize the estimate.
    const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];
    for c in &controls {
        let mut total = 0.0;
        let mut txs = 0usize;
        for &seed in &SEEDS {
            let cfg = NodeRunConfig {
                duration: SimTime::from_secs(90),
                policy: c.policy,
                attack_times: c.attacks.iter().map(|&s| SimTime::from_secs(s)).collect(),
                seed,
                ..NodeRunConfig::default()
            };
            let r = run_single_node(&cfg);
            total += r.avg_pow_secs();
            txs += r.outcomes.len();
        }
        let avg = total / SEEDS.len() as f64;
        measured.push(avg);
        row(&[
            ("control", format!("{:<28}", c.name)),
            ("paper", secs(c.paper_secs)),
            ("measured", secs(avg)),
            ("ratio_vs_paper", format!("{:.2}", avg / c.paper_secs)),
            ("txs/run", format!("{:.0}", txs as f64 / SEEDS.len() as f64)),
        ]);
    }

    println!("\n  ordering check (who wins):");
    println!(
        "    normal < original:        {} (paper: yes)",
        measured[1] < measured[0]
    );
    println!(
        "    1 attack > original:      {} (paper: yes)",
        measured[2] > measured[0]
    );
    println!(
        "    2 attacks > 1 attack:     {} (paper: yes)",
        measured[3] > measured[2]
    );
    println!(
        "    speedup normal vs orig:   {:.1}x (paper: {:.1}x)",
        measured[0] / measured[1],
        0.700 / 0.118
    );
}
