//! Fig 10 — Impact of the symmetric encryption algorithm on transaction
//! efficiency: AES encryption time vs message length (64 B → 1 MiB,
//! log₂ scale).
//!
//! Paper anchors (Raspberry Pi 3B, AES in C): 64 B → 0.205 ms,
//! 64 KiB → 93.22 ms, 256 KiB → 0.373 s, 1 MiB → 1.491 s.
//!
//! Reported series:
//! 1. **Pi model** — the calibrated linear model used in virtual time
//!    (hits the paper's anchors).
//! 2. **Host CPU** — our from-scratch AES-CBC measured on this machine;
//!    shape (linear in message size) is the comparable quantity.

use biot_bench::{header, row, secs, sparkline};
use biot_crypto::aes::{Aes, AesKey};
use biot_sim::AesTiming;
use std::time::Instant;

fn main() {
    header(
        "Fig 10: AES encryption time vs message length",
        "Huang et al., ICDCS'19, Fig. 10",
    );
    let timing = AesTiming::default();
    let aes = Aes::new(&AesKey::Aes256([0x42; 32]));
    let iv = [7u8; 16];

    println!("\n  paper anchors: 2^6B=0.205ms  2^16B=93.22ms  2^18B=0.373s  2^20B=1.491s\n");
    let mut model_series = Vec::new();
    let mut host_series = Vec::new();
    for log2 in (6..=20usize).step_by(2) {
        let n = 1usize << log2;
        let model_s = timing.expected_secs(n);
        model_series.push(model_s);

        let data = vec![0xABu8; n];
        let reps = if n <= 1 << 12 { 20 } else { 3 };
        let start = Instant::now();
        for _ in 0..reps {
            let ct = aes.encrypt_cbc(&data, &iv);
            std::hint::black_box(ct);
        }
        let host_s = start.elapsed().as_secs_f64() / reps as f64;
        host_series.push(host_s);

        row(&[
            ("len", format!("2^{log2:<2} ({n:>8} B)")),
            ("pi_model", secs(model_s)),
            ("host_measured", secs(host_s)),
        ]);
    }

    println!("\n  shape (pi model):   {}", sparkline(&model_series));
    println!("  shape (host):       {}", sparkline(&host_series));

    // Linearity check: time per byte should be roughly constant at scale.
    let per_byte_small = host_series[3] / (1 << 12) as f64;
    let per_byte_large = host_series.last().unwrap() / (1 << 20) as f64;
    println!(
        "\n  host linearity: {:.2} ns/B @4KiB vs {:.2} ns/B @1MiB (ratio {:.2}, ~1.0 = linear)",
        per_byte_small * 1e9,
        per_byte_large * 1e9,
        per_byte_small / per_byte_large
    );
    println!(
        "  paper's takeaway: a 256 KiB packet costs {} on the Pi — \"tiny impact\"",
        secs(timing.expected_secs(256 * 1024))
    );
}
