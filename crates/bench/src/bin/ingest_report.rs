//! Emits `results/BENCH_ingest.json`: sustained admission throughput and
//! ack round-trip latency for the event-loop ingest front end serving
//! concurrent light-node connections over real sockets — the epoll
//! reactor against the naive per-connection-poll baseline (the same
//! server code under the `scan` poller, which "readies" every
//! registered socket each tick and pays a syscall per connection to
//! discover most have nothing).
//!
//! Two scenarios at the same total connection count:
//!
//! * **saturated** — every connection sends as fast as its schedule
//!   allows. Nearly all sockets are ready every tick, so readiness
//!   notification buys little; this records the regime where the two
//!   pollers should roughly tie.
//! * **sparse** — the realistic IoT fleet: a few percent of the
//!   connections are active, the rest sit connected and silent. The scan
//!   baseline still pays one syscall per idle socket per tick; the
//!   reactor pays only for the active ones. This is where the event
//!   loop earns its keep.
//!
//! Run with: `cargo run -p biot-bench --release --bin ingest_report`
//!
//! The default scale is 1000 concurrent connections; CI shrinks it via
//! the same environment knobs the `loadgen` bin reads
//! (`BIOT_INGEST_CONNS`, `BIOT_INGEST_FRAMES`, `BIOT_INGEST_BATCH`,
//! `BIOT_INGEST_INTERVAL_MS`, `BIOT_INGEST_DEADLINE_S`).

use biot_ingest::reactor::PollerKind;
use biot_ingest::server::IngestConfig;
use biot_sim::loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
use std::fs;
use std::io::Write;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn poller_name(kind: PollerKind) -> &'static str {
    match kind {
        PollerKind::Epoll => "epoll",
        PollerKind::Scan => "scan",
    }
}

struct Scenario {
    name: &'static str,
    config: LoadgenConfig,
}

fn row(requested: PollerKind, r: &LoadgenReport) -> String {
    format!(
        "      {{\"requested\": \"{}\", \"ran\": \"{}\", \"completed_conns\": {}, \
         \"sent_txs\": {}, \"admitted\": {}, \"busy\": {}, \"rate_limited\": {}, \
         \"rejected\": {}, \"elapsed_ms\": {}, \"admitted_per_sec\": {:.1}, \
         \"ack_rtt_p50_ms\": {:.3}, \"ack_rtt_p99_ms\": {:.3}}}",
        poller_name(requested),
        poller_name(r.poller),
        r.connections,
        r.sent_txs,
        r.acked.accepted,
        r.acked.busy,
        r.acked.rate_limited,
        r.acked.rejected,
        r.elapsed_ms,
        r.admitted_per_sec,
        r.p50_ms,
        r.p99_ms,
    )
}

fn main() -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let total_conns = env_usize("BIOT_INGEST_CONNS", 1000);
    let frames = env_usize("BIOT_INGEST_FRAMES", 4);
    let batch = env_usize("BIOT_INGEST_BATCH", 8);
    let interval_ms = env_u64("BIOT_INGEST_INTERVAL_MS", 5);
    let deadline = Duration::from_secs(env_u64("BIOT_INGEST_DEADLINE_S", 120));
    println!("host cores: {cores}; {total_conns} total connections");

    // Sparse: ~1/16th of the fleet active (at least 8), the rest idle.
    let sparse_active = (total_conns / 16).max(8).min(total_conns);
    let scenarios = [
        Scenario {
            name: "saturated",
            config: LoadgenConfig {
                connections: total_conns,
                idle_connections: 0,
                frames_per_conn: frames,
                batch_size: batch,
                arrival_interval: Duration::from_millis(interval_ms),
                deadline,
                ..LoadgenConfig::default()
            },
        },
        Scenario {
            name: "sparse",
            config: LoadgenConfig {
                connections: sparse_active,
                idle_connections: total_conns - sparse_active,
                frames_per_conn: frames * 8,
                batch_size: batch,
                arrival_interval: Duration::from_millis(interval_ms),
                deadline,
                ..LoadgenConfig::default()
            },
        },
    ];

    let mut blocks = Vec::new();
    for scenario in &scenarios {
        let mut rows = Vec::new();
        let mut throughput = Vec::new();
        let mut p99 = Vec::new();
        for requested in [PollerKind::Epoll, PollerKind::Scan] {
            let config = LoadgenConfig {
                ingest: IngestConfig {
                    poller: requested,
                    ..IngestConfig::default()
                },
                ..scenario.config.clone()
            };
            let report = run_loadgen(&config);
            println!(
                "{:>9}/{:>5}: {} active (+{} idle), {} admitted in {} ms -> {:>8.0} tx/s, \
                 ack RTT p50 {:.2} ms p99 {:.2} ms",
                scenario.name,
                poller_name(report.poller),
                report.connections,
                config.idle_connections,
                report.acked.accepted,
                report.elapsed_ms,
                report.admitted_per_sec,
                report.p50_ms,
                report.p99_ms,
            );
            assert_eq!(
                report.acked.total(),
                report.sent_txs,
                "every transaction must be acked ({requested:?})"
            );
            throughput.push(report.admitted_per_sec);
            p99.push(report.p99_ms);
            rows.push(row(requested, &report));
        }
        let speedup = throughput[0] / throughput[1].max(1e-9);
        let p99_ratio = p99[1] / p99[0].max(1e-9);
        println!(
            "{:>9}: reactor vs scan {speedup:.2}x throughput, {p99_ratio:.2}x p99 latency",
            scenario.name
        );
        blocks.push(format!(
            "    {{\"name\": \"{}\", \"connections\": {}, \"idle_connections\": {}, \
             \"frames_per_conn\": {}, \"batch_size\": {}, \"arrival_interval_ms\": {},\n\
             \"pollers\": [\n{}\n    ],\n\
             \"reactor_vs_scan_throughput\": {:.3}, \"scan_vs_reactor_p99\": {:.3}}}",
            scenario.name,
            scenario.config.connections,
            scenario.config.idle_connections,
            scenario.config.frames_per_conn,
            scenario.config.batch_size,
            scenario.config.arrival_interval.as_millis(),
            rows.join(",\n"),
            speedup,
            p99_ratio,
        ));
    }

    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_ingest.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"host_cores\": {cores},")?;
    writeln!(f, "  \"total_connections\": {total_conns},")?;
    writeln!(f, "  \"scenarios\": [")?;
    writeln!(f, "{}", blocks.join(",\n"))?;
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_ingest.json");
    Ok(())
}
