//! Emits `results/BENCH_pow.json`: measured serial vs parallel PoW timings
//! and the weight-index speedup, in a machine-readable form for tracking
//! across commits.
//!
//! Run with: `cargo run -p biot-bench --release --bin pow_report`

use biot_core::pow::{solve, solve_parallel, Difficulty};
use biot_tangle::graph::Tangle;
use biot_tangle::tips::{TipSelector, UniformRandomSelector};
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::Write;
use std::time::Instant;

/// Mean seconds per solve over `reps` distinct preimages. The preimage set
/// depends only on `(difficulty, i)` so serial and parallel runs search the
/// same problems — trial counts are geometric, so an unshared set would
/// drown the comparison in variance.
fn time_solver(difficulty: Difficulty, threads: usize, reps: u32) -> f64 {
    let start = Instant::now();
    for i in 0..reps {
        let preimage = [difficulty.bits() as u8, i as u8, 0xB1];
        if threads <= 1 {
            solve(&preimage, difficulty, 0);
        } else {
            solve_parallel(&preimage, difficulty, threads);
        }
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn build_tangle(n: usize) -> Tangle {
    let mut rng = StdRng::seed_from_u64(9);
    let mut tangle = Tangle::new();
    tangle.attach_genesis(NodeId([0; 32]), 0);
    for i in 0..n {
        let (a, b) = UniformRandomSelector
            .select_tips(&tangle, &mut rng)
            .unwrap();
        let tx = TransactionBuilder::new(NodeId([(i % 250) as u8; 32]))
            .parents(a, b)
            .payload(Payload::Data((i as u64).to_be_bytes().to_vec()))
            .timestamp_ms(i as u64)
            .build();
        tangle.attach(tx, i as u64).unwrap();
    }
    tangle
}

fn main() -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host cores: {cores} (parallel speedup needs > 1)");
    let mut rows = Vec::new();
    for bits in [10u32, 12, 14] {
        let difficulty = Difficulty::new(bits);
        let reps = if bits >= 14 { 8 } else { 32 };
        let serial = time_solver(difficulty, 1, reps);
        let t4 = time_solver(difficulty, 4, reps);
        let speedup = serial / t4.max(1e-12);
        println!("D={bits:>2}  serial={serial:.4}s  4-thread={t4:.4}s  speedup={speedup:.2}x");
        rows.push(format!(
            "    {{\"difficulty\": {bits}, \"serial_secs\": {serial:.6}, \
             \"parallel4_secs\": {t4:.6}, \"speedup\": {speedup:.3}}}"
        ));
    }

    // Weight index vs BFS recount at the genesis (the deepest query).
    let tangle = build_tangle(2000);
    let genesis = tangle.genesis().unwrap();
    let reps = 200u32;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(tangle.cumulative_weight_recount(&genesis));
    }
    let bfs = start.elapsed().as_secs_f64() / reps as f64;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(tangle.cumulative_weight(&genesis));
    }
    let indexed = start.elapsed().as_secs_f64() / reps as f64;
    println!(
        "weight(genesis, 2k txs)  bfs={:.2}us  indexed={:.3}us  speedup={:.0}x",
        bfs * 1e6,
        indexed * 1e6,
        bfs / indexed.max(1e-12)
    );

    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_pow.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"host_cores\": {cores},")?;
    writeln!(f, "  \"pow\": [")?;
    writeln!(f, "{}", rows.join(",\n"))?;
    writeln!(f, "  ],")?;
    writeln!(f, "  \"weight_index\": {{")?;
    writeln!(f, "    \"tangle_size\": 2000,")?;
    writeln!(f, "    \"bfs_recount_secs\": {bfs:.9},")?;
    writeln!(f, "    \"indexed_secs\": {indexed:.9},")?;
    writeln!(
        f,
        "    \"speedup\": {:.1}",
        bfs / indexed.max(1e-12)
    )?;
    writeln!(f, "  }}")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_pow.json");
    Ok(())
}
