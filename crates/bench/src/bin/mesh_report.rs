//! Emits `results/BENCH_mesh.json`: gossip mesh convergence and wire
//! cost at fleet scale (ISSUE 8).
//!
//! For each fleet size (default 16 / 50 / 100) the same seeded oracle
//! workload — a 200-transaction DAG plus a credit-event schedule, items
//! surfacing at seeded origin nodes — is gossiped across a random
//! bounded-degree topology twice: once with digest-batched
//! duplicate-suppressed relay ([`RelayMode::Digest`]) and once with the
//! naive payload flood baseline ([`RelayMode::Flood`]). Convergence is
//! *bit-for-bit* against a single-node oracle: identical tips, identical
//! cumulative weight for every transaction, identical `(CrP, CrN, Cr)`
//! for every node the credit ledger knows.
//!
//! The embedded `acceptance` block asserts the issue's claims: every
//! fleet converges, digest relay moves ≥ 3× fewer bytes per node than
//! flood at the largest fleet, bytes-per-node-per-tx does not grow from
//! the smallest to the largest fleet, a partitioned fleet heals and
//! still converges, and two seeded runs produce identical reports.
//!
//! `bytes_per_node_per_tx` counts *wire-delivered* transactions in its
//! denominator (`txs × (N−1)/N`): a node's own submissions arrive
//! locally, and that free fraction shrinks as the fleet grows, so
//! dividing by raw `txs` would grow with N for every protocol — even
//! one delivering each payload exactly once. The raw figure is kept
//! alongside as `bytes_per_node_per_tx_raw`.
//!
//! Run with: `cargo run -p biot-bench --release --bin mesh_report`
//!
//! CI shrinks the scale via `BIOT_MESH_SIZES` (comma-separated fleet
//! sizes) and `BIOT_MESH_TXS`.

use biot_gossip::RelayMode;
use biot_sim::mesh::{run_mesh, MeshConfig, MeshOutcome, Partition};
use std::fs;
use std::io::Write;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_sizes(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn base_cfg(nodes: usize, txs: usize, relay_mode: RelayMode) -> MeshConfig {
    MeshConfig {
        nodes,
        txs,
        relay_mode,
        ..MeshConfig::default()
    }
}

fn fmt_outcome(o: &MeshOutcome) -> String {
    format!(
        "{{\"nodes\": {}, \"txs\": {}, \"converged\": {}, \"converged_ms\": {}, \
         \"rounds\": {}, \"total_bytes_sent\": {}, \"total_frames_sent\": {}, \
         \"bytes_per_node\": {}, \"bytes_per_node_per_tx\": {:.1}, \
         \"bytes_per_node_per_tx_raw\": {:.1}, \
         \"redundant_deliveries\": {}, \"redundancy_ratio\": {:.3}, \
         \"dup_suppressed\": {}, \"digests_sent\": {}, \"digest_ids_sent\": {}, \
         \"peer_exchanges_sent\": {}, \"credit_events_deduped\": {}, \"handshakes\": {}}}",
        o.nodes,
        o.txs,
        o.converged,
        o.converged_ms,
        o.rounds,
        o.total_bytes_sent,
        o.total_frames_sent,
        o.bytes_per_node,
        o.bytes_per_node_per_tx,
        o.bytes_per_node_per_tx_raw,
        o.redundant_deliveries,
        o.redundancy_ratio,
        o.dup_suppressed,
        o.digests_sent,
        o.digest_ids_sent,
        o.peer_exchanges_sent,
        o.credit_events_deduped,
        o.handshakes,
    )
}

fn main() -> std::io::Result<()> {
    let sizes = env_sizes("BIOT_MESH_SIZES", &[16, 50, 100]);
    let txs = env_usize("BIOT_MESH_TXS", 200);

    biot_bench::header(
        "mesh: N-node gossip convergence and bytes-on-wire",
        "ISSUE 8 — digest-batched dedup relay vs flood, bit-for-bit vs single-node oracle",
    );

    let mut digest_runs = Vec::new();
    let mut flood_runs = Vec::new();
    for &n in &sizes {
        println!("fleet of {n}: digest relay...");
        let d = run_mesh(&base_cfg(n, txs, RelayMode::Digest));
        println!(
            "  converged={} at {} ms virtual; {} B/node ({:.0} B/node/tx), redundancy {:.3}",
            d.converged, d.converged_ms, d.bytes_per_node, d.bytes_per_node_per_tx,
            d.redundancy_ratio,
        );
        println!("fleet of {n}: flood baseline...");
        let f = run_mesh(&base_cfg(n, txs, RelayMode::Flood));
        println!(
            "  converged={} at {} ms virtual; {} B/node ({:.0} B/node/tx), redundancy {:.3}",
            f.converged, f.converged_ms, f.bytes_per_node, f.bytes_per_node_per_tx,
            f.redundancy_ratio,
        );
        digest_runs.push(d);
        flood_runs.push(f);
    }

    // Partition/heal at the smallest fleet: the cut severs the halves
    // mid-injection; the heal must still reach bit-for-bit convergence.
    let part_nodes = *sizes.first().expect("at least one fleet size");
    println!("fleet of {part_nodes}: digest relay with partition 0.5s→3.0s...");
    let partitioned = run_mesh(&MeshConfig {
        partition: Some(Partition { start_ms: 500, heal_ms: 3_000 }),
        ..base_cfg(part_nodes, txs, RelayMode::Digest)
    });
    println!(
        "  converged={} at {} ms virtual; {} handshakes (redials included)",
        partitioned.converged, partitioned.converged_ms, partitioned.handshakes,
    );

    // Determinism: the largest digest fleet, re-run bit-identically.
    let max_n = *sizes.last().expect("at least one fleet size");
    println!("fleet of {max_n}: seeded re-run for determinism...");
    let rerun = run_mesh(&base_cfg(max_n, txs, RelayMode::Digest));
    let deterministic = rerun == digest_runs[sizes.len() - 1];
    println!("  identical outcome: {deterministic}");

    let all_converged = digest_runs.iter().chain(flood_runs.iter()).all(|o| o.converged)
        && partitioned.converged;
    let d_last = &digest_runs[sizes.len() - 1];
    let f_last = &flood_runs[sizes.len() - 1];
    let flood_ratio = f_last.bytes_per_node as f64 / d_last.bytes_per_node.max(1) as f64;
    let beats_3x = flood_ratio >= 3.0;
    let first_bpt = digest_runs[0].bytes_per_node_per_tx;
    let last_bpt = d_last.bytes_per_node_per_tx;
    let flat = last_bpt <= first_bpt;
    println!(
        "flood/digest bytes-per-node at N={max_n}: {flood_ratio:.2}x ({})",
        if beats_3x { ">=3x, pass" } else { "BELOW 3x" }
    );
    println!(
        "bytes/node/tx {}→{}: {first_bpt:.1} → {last_bpt:.1} ({})",
        sizes[0],
        max_n,
        if flat { "non-increasing" } else { "GROWING" }
    );

    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_mesh.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"sizes\": {sizes:?},")?;
    writeln!(f, "  \"txs\": {txs},")?;
    let knobs = MeshConfig::default();
    writeln!(f, "  \"payload_bytes\": {},", knobs.payload_bytes)?;
    writeln!(f, "  \"degree\": {},", knobs.degree)?;
    writeln!(f, "  \"fanout\": {},", knobs.fanout)?;
    writeln!(f, "  \"digest_ms\": {},", knobs.digest_ms)?;
    writeln!(f, "  \"anti_entropy_ms\": {},", knobs.anti_entropy_ms)?;
    writeln!(f, "  \"seed\": {},", knobs.seed)?;
    let cells: Vec<String> = digest_runs.iter().map(fmt_outcome).collect();
    writeln!(f, "  \"digest\": [\n    {}\n  ],", cells.join(",\n    "))?;
    let cells: Vec<String> = flood_runs.iter().map(fmt_outcome).collect();
    writeln!(f, "  \"flood\": [\n    {}\n  ],", cells.join(",\n    "))?;
    writeln!(f, "  \"partitioned\": {},", fmt_outcome(&partitioned))?;
    writeln!(f, "  \"acceptance\": {{")?;
    writeln!(f, "    \"all_converged_bit_for_bit\": {all_converged},")?;
    writeln!(f, "    \"flood_over_digest_bytes_per_node\": {flood_ratio:.2},")?;
    writeln!(f, "    \"digest_beats_flood_3x\": {beats_3x},")?;
    writeln!(f, "    \"bytes_per_node_per_tx_first\": {first_bpt:.1},")?;
    writeln!(f, "    \"bytes_per_node_per_tx_last\": {last_bpt:.1},")?;
    writeln!(f, "    \"bytes_per_node_per_tx_non_increasing\": {flat},")?;
    writeln!(f, "    \"partition_heals\": {},", partitioned.converged)?;
    writeln!(f, "    \"deterministic\": {deterministic}")?;
    writeln!(f, "  }}")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_mesh.json");
    Ok(())
}
