//! Fig 7 — Running time of the PoW algorithm with increasing difficulty.
//!
//! Paper anchors (Raspberry Pi 3B): D=1 → 0.162 s, D=12 → 10.98 s,
//! D=14 → 245.3 s, with exponential growth past D≈11.
//!
//! Two series are reported:
//! 1. **Pi-calibrated (virtual)** — the model used by all virtual-time
//!    experiments, which reproduces the paper's anchors exactly.
//! 2. **Host CPU (measured)** — a real nonce search on this machine,
//!    averaged over several preimages, demonstrating the exponential
//!    *shape* with real hashing. Absolute values differ (this is not a
//!    Pi); the per-bit growth factor is the comparable quantity.

use biot_bench::{header, row, secs, sparkline};
use biot_core::pow::{solve, Difficulty};
use biot_sim::PiCalibration;
use std::time::Instant;

fn main() {
    header(
        "Fig 7: PoW running time vs difficulty",
        "Huang et al., ICDCS'19, Fig. 7",
    );
    let cal = PiCalibration::fig7();

    println!("\n  paper anchors: D1=0.162s  D12=10.98s  D14=245.3s\n");
    let mut virtual_series = Vec::new();
    let mut measured_series = Vec::new();
    for d in 1..=14u32 {
        let difficulty = Difficulty::new(d);
        let virt = cal.expected_pow_secs(difficulty);
        virtual_series.push(virt);

        // Real nonce search, averaged over distinct preimages. Higher
        // difficulties get fewer repetitions to keep the run short.
        let reps = match d {
            1..=8 => 64,
            9..=11 => 16,
            12 => 8,
            _ => 4,
        };
        let start = Instant::now();
        let mut total_trials = 0u64;
        for i in 0..reps {
            let preimage = [d as u8, i as u8, 0xF7];
            total_trials += solve(&preimage, difficulty, 0).trials;
        }
        let elapsed = start.elapsed().as_secs_f64() / reps as f64;
        measured_series.push(elapsed);

        row(&[
            ("D", format!("{d:>2}")),
            ("pi_virtual", secs(virt)),
            ("host_measured", secs(elapsed)),
            (
                "host_avg_trials",
                format!("{:>8.0}", total_trials as f64 / reps as f64),
            ),
        ]);
    }

    println!("\n  shape (pi virtual):    {}", sparkline(&virtual_series));
    println!("  shape (host measured): {}", sparkline(&measured_series));

    // Growth factors over the exponential tail.
    let tail_growth = measured_series[13] / measured_series[9].max(1e-12);
    println!(
        "\n  host growth D10→D14: {tail_growth:.0}x (ideal 2^4 = 16x; \
         paper's tail grows even faster in its own difficulty unit)"
    );
    println!(
        "  paper-anchor check: D14/D12 = {:.1}x (paper: {:.1}x)",
        cal.expected_pow_secs(Difficulty::new(14)) / cal.expected_pow_secs(Difficulty::new(12)),
        245.3 / 10.98
    );
}
