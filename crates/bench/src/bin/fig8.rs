//! Fig 8 — Credit value changes based on node behaviour.
//!
//! Panel (a): one malicious attack at t = 24 s; the paper shows Cr
//! collapsing, a ~37 s transaction gap, and gradual recovery.
//! Panel (b): two attacks (≈24 s and ≈50 s) with a longer recovery.
//!
//! The run uses the Fig 8 Pi calibration (D14 ≈ 40 s per PoW) so the
//! recovery gap lands in the paper's range.

use biot_bench::{header, row, sparkline};
use biot_net::time::SimTime;
use biot_sim::runner::{run_single_node, NodeRunConfig};
use biot_sim::PiCalibration;

fn print_panel(label: &str, attacks: &[u64]) {
    let cfg = NodeRunConfig {
        duration: SimTime::from_secs(90),
        attack_times: attacks.iter().map(|&s| SimTime::from_secs(s)).collect(),
        calibration: PiCalibration::fig8(),
        seed: 24,
        ..NodeRunConfig::default()
    };
    let result = run_single_node(&cfg);

    println!("\n--- Fig 8({label}): attacks at {attacks:?} s ---");
    println!("  t(s)   Cr        CrP      CrN        D   txs");
    let mut cr_series = Vec::new();
    for s in result.samples.iter().step_by(3) {
        cr_series.push(s.cr);
        let bars: String = result
            .outcomes
            .iter()
            .filter(|o| o.submitted_at_secs >= s.t_secs && o.submitted_at_secs < s.t_secs + 3.0)
            .map(|o| if o.was_attack { '!' } else { '|' })
            .collect();
        println!(
            "  {:>4.0}  {:>8.2}  {:>7.3}  {:>8.2}  {:>3}  {}",
            s.t_secs, s.cr, s.crp, s.crn, s.difficulty, bars
        );
    }
    println!("  Cr shape: {}", sparkline(&cr_series));
    let gap = result.longest_gap_secs();
    row(&[
        ("longest_tx_gap", format!("{gap:.1}s")),
        (
            "paper_gap",
            if attacks.len() == 1 { "37s".into() } else { ">37s".into() },
        ),
        ("accepted_txs", result.accepted_count().to_string()),
        (
            "attacks_cancelled",
            result
                .outcomes
                .iter()
                .filter(|o| o.was_attack && !o.accepted)
                .count()
                .to_string(),
        ),
    ]);
}

fn main() {
    header(
        "Fig 8: credit value vs node behaviour",
        "Huang et al., ICDCS'19, Fig. 8(a)/(b)",
    );
    print_panel("a", &[24]);
    print_panel("b", &[24, 50]);
}
