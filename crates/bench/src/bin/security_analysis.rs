//! A3 — the paper's §VI-C security analysis, measured instead of argued:
//! single point of failure, Sybil/DDoS admission, lazy tips, and
//! double-spending.

use biot_bench::{header, row};
use biot_sim::attack::{
    double_spend_experiment, failover_experiment, lazy_tips_experiment,
    parasite_chain_experiment, sybil_admission_experiment,
};

fn main() {
    header(
        "A3: security analysis, measured",
        "Huang et al., ICDCS'19, §VI-C",
    );

    println!("\n[1] Single point of failure — two replicated gateways, primary killed mid-run");
    let f = failover_experiment(1);
    row(&[
        ("accepted_before_failure", f.before_failure.to_string()),
        ("accepted_after_failover", f.after_failure.to_string()),
        ("survivor_ledger_len", f.survivor_ledger_len.to_string()),
        (
            "service_available",
            (f.after_failure > 0).to_string(),
        ),
    ]);

    println!("\n[2] Sybil / DDoS — 50 fake identities flood a gateway with valid-PoW txs");
    let s = sybil_admission_experiment(50, 2);
    row(&[
        ("sybil_blocked", format!("{}/{}", s.sybil_blocked, 50)),
        ("sybil_accepted", s.sybil_accepted.to_string()),
        ("legit_accepted", s.legit_accepted.to_string()),
        (
            "block_rate",
            format!(
                "{:.0}%",
                100.0 * s.sybil_blocked as f64 / (s.sybil_blocked + s.sybil_accepted) as f64
            ),
        ),
    ]);

    println!("\n[3] Lazy tips — a node always approving the same stale pair, 12 rounds");
    let l = lazy_tips_experiment(12, 3);
    row(&[
        ("lazy_txs_accepted", l.lazy_accepted.to_string()),
        ("punishments_recorded", l.lazy_punished.to_string()),
        ("lazy_final_difficulty", format!("D{}", l.lazy_final_difficulty)),
        (
            "honest_final_difficulty",
            format!("D{}", l.honest_final_difficulty),
        ),
        ("lazy_final_credit", format!("{:.2}", l.lazy_final_credit)),
    ]);

    println!("\n[4] Double-spending — 5 tokens spent once, then re-spent");
    let d = double_spend_experiment(5, 4);
    row(&[
        ("first_spends_accepted", d.first_spends_accepted.to_string()),
        ("double_spends_cancelled", d.double_spends_cancelled.to_string()),
        ("double_spends_landed", d.double_spends_accepted.to_string()),
        ("punishments", d.punishments.to_string()),
    ]);

    println!("\n[5] Parasite chain — 12-tx private side-chain vs 60-tx honest tangle");
    let p = parasite_chain_experiment(60, 12, 400, 5);
    row(&[
        (
            "uniform_selection_endorses_parasite",
            format!("{}/{}", p.uniform_hits, p.samples),
        ),
        (
            "weighted_mcmc_endorses_parasite",
            format!("{}/{}", p.mcmc_hits, p.samples),
        ),
        (
            "mcmc_risk_reduction",
            format!(
                "{:.1}x",
                p.uniform_hits.max(1) as f64 / p.mcmc_hits.max(1) as f64
            ),
        ),
    ]);

    println!(
        "\n  all §VI-C properties hold: service availability under gateway\n  \
         failure, admission-control defeat of Sybil/DDoS, credit punishment of\n  \
         lazy tips, cancellation + punishment of double-spends, and weighted\n  \
         tip selection starving parasite chains."
    );
}
