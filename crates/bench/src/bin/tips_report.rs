//! Emits `results/BENCH_tips.json`: tip-selection throughput (selections
//! per second) on 1k / 10k / 50k-transaction tangles, indexed fast path
//! vs the legacy `select_tips_recount` rebuild, for the weighted and
//! depth-constrained selectors.
//!
//! Run with: `cargo run -p biot-bench --release --bin tips_report`
//!
//! The 50k tangle is grown with the realistic confirm + snapshot cadence
//! (the weight index's attach cost is O(stored ancestor cone), so an
//! unpruned 50k build would be quadratic in the full history); both
//! `total_attached` and the surviving `stored` count are recorded.

use biot_tangle::graph::Tangle;
use biot_tangle::tips::{
    DepthConstrainedSelector, TipSelector, UniformRandomSelector, WeightedMcmcSelector,
};
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::Write;
use std::time::Instant;

/// Grows an `n`-transaction tangle; when `prune_every > 0`, runs the
/// confirm + snapshot cycle on that cadence so the stored working set
/// (and thus attach cost) stays bounded, as a long-lived gateway would.
fn build_tangle(n: usize, prune_every: usize) -> Tangle {
    let mut rng = StdRng::seed_from_u64(11);
    let mut tangle = Tangle::new();
    tangle.attach_genesis(NodeId([0; 32]), 0);
    for i in 0..n {
        let (a, b) = UniformRandomSelector
            .select_tips(&tangle, &mut rng)
            .unwrap();
        let tx = TransactionBuilder::new(NodeId([(i % 250) as u8; 32]))
            .parents(a, b)
            .payload(Payload::Data((i as u64).to_be_bytes().to_vec()))
            .timestamp_ms(i as u64 + 1)
            .build();
        tangle.attach(tx, i as u64 + 1).unwrap();
        if prune_every > 0 && i > 0 && i % prune_every == 0 {
            tangle.confirm_with_threshold(2);
            // Keep roughly the last prune_every attaches stored.
            tangle.snapshot((i - prune_every / 2) as u64);
        }
    }
    tangle
}

/// Selections per second: runs `select` repeatedly for ~`budget_s` of
/// wall clock (at least 3 reps) and divides.
fn selections_per_sec(mut select: impl FnMut(), budget_s: f64) -> f64 {
    let start = Instant::now();
    let mut reps = 0u64;
    while reps < 3 || start.elapsed().as_secs_f64() < budget_s {
        select();
        reps += 1;
    }
    reps as f64 / start.elapsed().as_secs_f64()
}

struct Row {
    total_attached: usize,
    stored: usize,
    dc_new: f64,
    dc_old: f64,
    w_new: f64,
    w_old: f64,
}

fn main() -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host cores: {cores}");

    let mut rows = Vec::new();
    for (n, prune_every) in [(1_000usize, 0usize), (10_000, 0), (50_000, 10_000)] {
        let tangle = build_tangle(n, prune_every);
        let stored = tangle.len();
        let dc = DepthConstrainedSelector::new(0.3, 100);
        let weighted = WeightedMcmcSelector::new(0.3);

        let mut rng = StdRng::seed_from_u64(23);
        let dc_new = selections_per_sec(
            || std::hint::black_box(dc.select_tips(&tangle, &mut rng)).map(|_| ()).unwrap(),
            0.4,
        );
        let mut rng = StdRng::seed_from_u64(23);
        let dc_old = selections_per_sec(
            || {
                std::hint::black_box(dc.select_tips_recount(&tangle, &mut rng))
                    .map(|_| ())
                    .unwrap()
            },
            0.4,
        );
        let mut rng = StdRng::seed_from_u64(29);
        let w_new = selections_per_sec(
            || {
                std::hint::black_box(weighted.select_tips(&tangle, &mut rng))
                    .map(|_| ())
                    .unwrap()
            },
            0.4,
        );
        let mut rng = StdRng::seed_from_u64(29);
        let w_old = selections_per_sec(
            || {
                std::hint::black_box(weighted.select_tips_recount(&tangle, &mut rng))
                    .map(|_| ())
                    .unwrap()
            },
            0.4,
        );

        println!(
            "n={n:>6} stored={stored:>6}  depth-constrained {dc_old:>10.0}/s -> {dc_new:>10.0}/s \
             ({:>6.1}x)  weighted {w_old:>9.0}/s -> {w_new:>9.0}/s ({:>5.1}x)",
            dc_new / dc_old.max(1e-9),
            w_new / w_old.max(1e-9),
        );
        rows.push(Row {
            total_attached: n,
            stored,
            dc_new,
            dc_old,
            w_new,
            w_old,
        });
    }

    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_tips.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"host_cores\": {cores},")?;
    writeln!(f, "  \"selector\": {{\"alpha\": 0.3, \"window\": 100}},")?;
    writeln!(f, "  \"tangles\": [")?;
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"total_attached\": {}, \"stored\": {}, \
                 \"depth_constrained\": {{\"recount_per_sec\": {:.1}, \"indexed_per_sec\": {:.1}, \
                 \"speedup\": {:.1}}}, \
                 \"weighted\": {{\"recount_per_sec\": {:.1}, \"indexed_per_sec\": {:.1}, \
                 \"speedup\": {:.1}}}}}",
                r.total_attached,
                r.stored,
                r.dc_old,
                r.dc_new,
                r.dc_new / r.dc_old.max(1e-9),
                r.w_old,
                r.w_new,
                r.w_new / r.w_old.max(1e-9),
            )
        })
        .collect();
    writeln!(f, "{}", body.join(",\n"))?;
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_tips.json");
    Ok(())
}
