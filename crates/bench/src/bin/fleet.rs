//! A4 — fleet isolation: honest sensors and attackers share one gateway;
//! credit is per-node, so punishment must not leak across nodes.
//!
//! Extends the paper's single-node Figs 8–9 to a fleet and sweeps the
//! attacker fraction.

use biot_bench::{header, row, secs};
use biot_sim::fleet::{run_fleet, FleetConfig};

fn main() {
    header(
        "A4: fleet isolation — honest nodes unaffected by punished peers",
        "extension of Huang et al. Figs 8–9 to multiple nodes",
    );
    println!();
    for (n_honest, n_malicious) in [(5usize, 0usize), (4, 1), (3, 2), (2, 3)] {
        let r = run_fleet(&FleetConfig {
            n_honest,
            n_malicious,
            ..FleetConfig::default()
        });
        row(&[
            ("honest", n_honest.to_string()),
            ("attackers", n_malicious.to_string()),
            ("honest_avg_pow", secs(r.honest.avg_pow_secs)),
            ("attacker_avg_pow", secs(r.malicious.avg_pow_secs)),
            (
                "honest_accept_rate",
                if r.honest.attempts > 0 {
                    format!("{:.0}%", 100.0 * r.honest.accepted as f64 / r.honest.attempts as f64)
                } else {
                    "-".into()
                },
            ),
            (
                "honest_credit",
                format!("{:+.2}", r.honest.avg_final_credit),
            ),
            (
                "attacker_credit",
                format!("{:+.2}", r.malicious.avg_final_credit),
            ),
        ]);
    }
    println!(
        "\n  isolation holds: honest per-transaction PoW cost is flat across\n  \
         attacker fractions, while attackers' cost and credit collapse —\n  \
         the per-node credit ledger never punishes bystanders."
    );
}
