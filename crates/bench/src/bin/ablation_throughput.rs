//! A1 — DAG-structured vs chain-structured throughput (paper §II claim).
//!
//! The same Poisson workload is driven through the tangle and the
//! satoshi-style baseline; effective committed tx/s and latency are
//! compared across offered loads. Expected shape: the chain saturates at
//! `block_capacity / block_interval` and suffers fork waste; the tangle
//! tracks the offered load until gateway validation capacity.

use biot_bench::{header, row};
use biot_net::time::SimTime;
use biot_sim::throughput::{sweep, ThroughputConfig};

fn main() {
    header(
        "A1: tangle vs chain effective throughput",
        "Huang et al., ICDCS'19, §II (DAG motivation)",
    );
    let base = ThroughputConfig {
        duration: SimTime::from_secs(300),
        ..ThroughputConfig::default()
    };
    println!(
        "\n  chain cap = {:.0} tx/s (block {} txs / {}s interval); \
         tangle cap = {:.0} tx/s (1 / {} ms validation)\n",
        base.block_capacity as f64 / base.block_interval_s,
        base.block_capacity,
        base.block_interval_s,
        1000.0 / base.tangle_validate_ms as f64,
        base.tangle_validate_ms
    );

    let loads = [1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0];
    let rows = sweep(&loads, &base);
    for r in rows {
        row(&[
            ("offered_tps", format!("{:>6.0}", r.offered_tps)),
            ("tangle_tps", format!("{:>7.1}", r.tangle.effective_tps)),
            ("chain_tps", format!("{:>6.1}", r.chain.effective_tps)),
            (
                "tangle_lat",
                format!("{:>7.3}s", r.tangle.mean_latency_s),
            ),
            ("chain_lat", format!("{:>6.1}s", r.chain.mean_latency_s)),
            ("chain_fork_waste", format!("{:>5}", r.chain.wasted)),
            (
                "dag_advantage",
                format!(
                    "{:>5.1}x",
                    r.tangle.effective_tps / r.chain.effective_tps.max(0.01)
                ),
            ),
        ]);
    }
    println!(
        "\n  crossover: below the chain's block cap both keep up (latency still\n  \
         favours the tangle); past it the DAG advantage grows with offered load."
    );
}
