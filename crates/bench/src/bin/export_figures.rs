//! Exports every figure's data series as CSV for external plotting.
//!
//! Writes to `results/` in the working directory:
//!
//! * `fig7.csv`  — difficulty, pi_model_secs, host_secs, host_trials
//! * `fig8a.csv` / `fig8b.csv` — t_secs, cr, crp, crn, difficulty, tx_mark
//! * `fig9.csv`  — control, paper_secs, measured_secs
//! * `fig10.csv` — bytes, pi_model_secs, host_secs
//! * `throughput.csv` — offered_tps, tangle_tps, chain_tps, latencies
//!
//! Run with: `cargo run -p biot-bench --release --bin export_figures`

use biot_core::pow::{solve, Difficulty};
use biot_crypto::aes::{Aes, AesKey};
use biot_net::time::SimTime;
use biot_sim::runner::{run_single_node, NodeRunConfig, PolicyChoice};
use biot_sim::throughput::{sweep, ThroughputConfig};
use biot_sim::{AesTiming, PiCalibration};
use std::fs;
use std::io::Write;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    fs::create_dir_all("results")?;

    export_fig7()?;
    export_fig8("fig8a", &[24])?;
    export_fig8("fig8b", &[24, 50])?;
    export_fig9()?;
    export_fig10()?;
    export_throughput()?;
    println!("wrote results/*.csv");
    Ok(())
}

fn export_fig7() -> std::io::Result<()> {
    let cal = PiCalibration::fig7();
    let mut f = fs::File::create("results/fig7.csv")?;
    writeln!(f, "difficulty,pi_model_secs,host_secs,host_avg_trials")?;
    for d in 1..=14u32 {
        let difficulty = Difficulty::new(d);
        let reps = if d <= 10 { 16 } else { 4 };
        let start = Instant::now();
        let mut trials = 0u64;
        for i in 0..reps {
            trials += solve(&[d as u8, i as u8], difficulty, 0).trials;
        }
        let host = start.elapsed().as_secs_f64() / reps as f64;
        writeln!(
            f,
            "{d},{:.6},{host:.9},{:.1}",
            cal.expected_pow_secs(difficulty),
            trials as f64 / reps as f64
        )?;
    }
    Ok(())
}

fn export_fig8(name: &str, attacks: &[u64]) -> std::io::Result<()> {
    let cfg = NodeRunConfig {
        attack_times: attacks.iter().map(|&s| SimTime::from_secs(s)).collect(),
        calibration: PiCalibration::fig8(),
        seed: 24,
        ..NodeRunConfig::default()
    };
    let r = run_single_node(&cfg);
    let mut f = fs::File::create(format!("results/{name}.csv"))?;
    writeln!(f, "t_secs,cr,crp,crn,difficulty,tx_mark")?;
    for s in &r.samples {
        // tx_mark: +w for an accepted tx in this second, −1 for an attack.
        let mark = r
            .outcomes
            .iter()
            .find(|o| o.submitted_at_secs >= s.t_secs && o.submitted_at_secs < s.t_secs + 1.0)
            .map(|o| {
                if o.was_attack {
                    -1.0
                } else {
                    o.final_weight as f64
                }
            })
            .unwrap_or(0.0);
        writeln!(
            f,
            "{:.0},{:.4},{:.4},{:.4},{},{mark}",
            s.t_secs, s.cr, s.crp, s.crn, s.difficulty
        )?;
    }
    Ok(())
}

fn export_fig9() -> std::io::Result<()> {
    let controls: [(&str, f64, PolicyChoice, Vec<u64>); 4] = [
        ("original_pow", 0.700, PolicyChoice::original_pow(), vec![]),
        ("credit_normal", 0.118, PolicyChoice::credit_based(), vec![]),
        ("credit_1_attack", 1.667, PolicyChoice::credit_based(), vec![30]),
        ("credit_2_attacks", 3.750, PolicyChoice::credit_based(), vec![20, 40]),
    ];
    let mut f = fs::File::create("results/fig9.csv")?;
    writeln!(f, "control,paper_secs,measured_secs")?;
    for (name, paper, policy, attacks) in controls {
        let mut total = 0.0;
        const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];
        for seed in SEEDS {
            let cfg = NodeRunConfig {
                policy,
                attack_times: attacks.iter().map(|&s| SimTime::from_secs(s)).collect(),
                seed,
                ..NodeRunConfig::default()
            };
            total += run_single_node(&cfg).avg_pow_secs();
        }
        writeln!(f, "{name},{paper},{:.4}", total / SEEDS.len() as f64)?;
    }
    Ok(())
}

fn export_fig10() -> std::io::Result<()> {
    let timing = AesTiming::default();
    let aes = Aes::new(&AesKey::Aes256([0x42; 32]));
    let iv = [7u8; 16];
    let mut f = fs::File::create("results/fig10.csv")?;
    writeln!(f, "bytes,pi_model_secs,host_secs")?;
    for log2 in 6..=20usize {
        let n = 1usize << log2;
        let data = vec![0xABu8; n];
        let reps = if n <= 1 << 12 { 10 } else { 2 };
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(aes.encrypt_cbc(&data, &iv));
        }
        let host = start.elapsed().as_secs_f64() / reps as f64;
        writeln!(f, "{n},{:.6},{host:.9}", timing.expected_secs(n))?;
    }
    Ok(())
}

fn export_throughput() -> std::io::Result<()> {
    let base = ThroughputConfig {
        duration: SimTime::from_secs(180),
        ..ThroughputConfig::default()
    };
    let rows = sweep(&[1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0], &base);
    let mut f = fs::File::create("results/throughput.csv")?;
    writeln!(
        f,
        "offered_tps,tangle_tps,chain_tps,tangle_latency_s,chain_latency_s,chain_fork_waste"
    )?;
    for r in rows {
        writeln!(
            f,
            "{},{:.2},{:.2},{:.4},{:.2},{}",
            r.offered_tps,
            r.tangle.effective_tps,
            r.chain.effective_tps,
            r.tangle.mean_latency_s,
            r.chain.mean_latency_s,
            r.chain.wasted
        )?;
    }
    Ok(())
}
