//! A2 — difficulty-policy ablation: the paper's inverse-proportional
//! `Cr ∝ 1/D` mapping vs a linear mapping vs fixed difficulty, under the
//! Fig 9 workload (normal / one attack / two attacks).
//!
//! What to look for: the inverse policy punishes hard immediately after
//! an attack (clamps to D=14) yet recovers as CrN decays; the linear
//! policy's punishment scales differently with credit depth; fixed
//! difficulty neither rewards nor punishes.

use biot_bench::{header, row, secs};
use biot_core::difficulty::{InverseProportionalPolicy, LinearPolicy};
use biot_net::time::SimTime;
use biot_sim::runner::{run_single_node, NodeRunConfig, PolicyChoice};

fn main() {
    header(
        "A2: difficulty-policy ablation",
        "DESIGN.md §4.1 (the paper fixes Cr ∝ 1/D but not the exact map)",
    );
    let policies: [(&str, PolicyChoice); 3] = [
        (
            "inverse (paper)",
            PolicyChoice::Inverse(InverseProportionalPolicy::default()),
        ),
        ("linear", PolicyChoice::Linear(LinearPolicy::default())),
        ("fixed D11", PolicyChoice::original_pow()),
    ];
    let scenarios: [(&str, Vec<u64>); 3] = [
        ("normal", vec![]),
        ("1 attack", vec![30]),
        ("2 attacks", vec![30, 55]),
    ];

    println!();
    for (pname, policy) in &policies {
        for (sname, attacks) in &scenarios {
            let mut avg = 0.0;
            let mut accepted = 0usize;
            let mut gap: f64 = 0.0;
            const SEEDS: [u64; 3] = [5, 6, 7];
            for &seed in &SEEDS {
                let cfg = NodeRunConfig {
                    duration: SimTime::from_secs(90),
                    policy: *policy,
                    attack_times: attacks.iter().map(|&s| SimTime::from_secs(s)).collect(),
                    seed,
                    ..NodeRunConfig::default()
                };
                let r = run_single_node(&cfg);
                avg += r.avg_pow_secs();
                accepted += r.accepted_count();
                gap = gap.max(r.longest_gap_secs());
            }
            row(&[
                ("policy", format!("{pname:<16}")),
                ("scenario", format!("{sname:<10}")),
                ("avg_pow", secs(avg / SEEDS.len() as f64)),
                (
                    "txs/run",
                    format!("{:>5.1}", accepted as f64 / SEEDS.len() as f64),
                ),
                ("max_gap", format!("{gap:>6.1}s")),
            ]);
        }
        println!();
    }
    println!(
        "  takeaway: both adaptive policies reward honest activity and punish\n  \
         attacks; the inverse map (paper) reacts more sharply to deep negative\n  \
         credit because D multiplies with |Cr| instead of adding to it."
    );
}
