//! §VI-B — cost of the data authority management method's key
//! distribution (Fig 4 protocol).
//!
//! The paper argues distribution cost "can be ignored" because it happens
//! once per device. We measure the three-message handshake end to end on
//! the host CPU (RSA keygen excluded — accounts exist before the
//! handshake) and report per-message crypto cost.

use biot_bench::{header, row, secs};
use biot_core::identity::Account;
use biot_core::keydist::{DeviceSession, KeyDistConfig, ManagerSession};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    header(
        "Key distribution cost (Fig 4 protocol)",
        "Huang et al., ICDCS'19, §VI-B",
    );
    let mut rng = StdRng::seed_from_u64(99);
    let cfg = KeyDistConfig::default();

    for bits in [512usize, 1024] {
        let manager = Account::generate_with_bits(bits, &mut rng);
        let device = Account::generate_with_bits(bits, &mut rng);

        const REPS: usize = 20;
        let mut m1_t = 0.0;
        let mut m2_t = 0.0;
        let mut m3_t = 0.0;
        let mut m3v_t = 0.0;
        for i in 0..REPS {
            let now = (i as u64) * 10;
            let t = Instant::now();
            let (mut ms, m1) =
                ManagerSession::initiate(&manager, device.public_key(), now, &mut rng);
            m1_t += t.elapsed().as_secs_f64();

            let t = Instant::now();
            let (mut ds, m2) =
                DeviceSession::handle_m1(&device, manager.public_key(), &m1, now, &cfg, &mut rng)
                    .expect("m1 ok");
            m2_t += t.elapsed().as_secs_f64();

            let t = Instant::now();
            let m3 = ms
                .handle_m2(&manager, device.public_key(), &m2, now + 1, &cfg, &mut rng)
                .expect("m2 ok");
            m3_t += t.elapsed().as_secs_f64();

            let t = Instant::now();
            ds.handle_m3(manager.public_key(), &m3, now + 2, &cfg)
                .expect("m3 ok");
            m3v_t += t.elapsed().as_secs_f64();

            assert_eq!(
                ms.session_key().unwrap().as_bytes(),
                ds.session_key().unwrap().as_bytes()
            );
        }
        let n = REPS as f64;
        let total = (m1_t + m2_t + m3_t + m3v_t) / n;
        row(&[
            ("rsa_bits", bits.to_string()),
            ("m1_build", secs(m1_t / n)),
            ("m1->m2_device", secs(m2_t / n)),
            ("m2->m3_manager", secs(m3_t / n)),
            ("m3_verify", secs(m3v_t / n)),
            ("handshake_total", secs(total)),
        ]);
    }
    println!(
        "\n  conclusion: a one-time handshake costs milliseconds of crypto;\n  \
         amortized over a device's lifetime of transactions the impact is\n  \
         negligible — matching the paper's \"can be ignored\" claim."
    );
}
