//! Emits `results/BENCH_api.json`: the archival query endpoint under
//! load, measured while the node is *also* syncing fresh transactions
//! off the mesh — the serving-while-growing regime an archival node
//! actually lives in — plus the boot-time payoff of snapshot
//! checkpoints.
//!
//! Two measurements:
//!
//! * **query load under concurrent sync** — a validation node admits a
//!   steady trickle of signed light-node transactions while concurrent
//!   HTTP clients hammer the archival node's keep-alive API with a mix
//!   of every endpoint (health, stats, tips, tx, weight, credit). All
//!   responses must be `200 OK`; the report records sustained queries/s
//!   and p50/p99 request latency, and the archival node must still have
//!   fully synced the trickle by the end.
//! * **snapshot boot vs full replay** — the same store directory booted
//!   twice through `ArchivalNode::new`: once with only a WAL on disk
//!   (recovery replays every transaction through the tangle) and once
//!   after `checkpoint()` (recovery adopts the sealed snapshot cone).
//!   Snapshot boot must be faster.
//!
//! Run with: `cargo run -p biot-bench --release --bin api_report`
//!
//! CI shrinks the scale via `BIOT_API_CONNS`, `BIOT_API_SECS`,
//! `BIOT_API_LOAD`, `BIOT_API_BOOT_TXS`.

use biot_core::node::{Gateway, GatewayConfig, Manager};
use biot_core::{Account, Difficulty, FixedPolicy};
use biot_credit::CreditEvent;
use biot_gossip::node::{GossipConfig, RelayMode};
use biot_gossip::tcp::{TcpAcceptor, TcpConnector};
use biot_net::time::SimTime;
use biot_node::role::{ArchivalNode, BootSource, LightClient, Role, RoleConfig, ValidationNode};
use biot_tangle::conflict::LazyTipPolicy;
use biot_tangle::tips::{TipSelector, UniformRandomSelector};
use biot_tangle::tx::{NodeId, Payload, Transaction, TransactionBuilder};
use biot_tangle::Tangle;
use biot_crypto::sha256::to_hex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn gossip_cfg(node_id: u64) -> GossipConfig {
    GossipConfig {
        node_id,
        relay_mode: RelayMode::Digest,
        digest_ms: 5,
        anti_entropy_ms: 200,
        ..GossipConfig::default()
    }
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

/// One keep-alive HTTP exchange: write the request, read status line +
/// headers, then exactly `Content-Length` body bytes. Returns the
/// status code.
fn roundtrip(stream: &mut std::net::TcpStream, request: &[u8]) -> std::io::Result<u16> {
    stream.write_all(request)?;
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no content length")
        })?;
    let mut body_have = buf.len() - head_end;
    while body_have < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body_have += n;
    }
    Ok(status)
}

struct LoadReport {
    requests: usize,
    not_ok: usize,
    elapsed_ms: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    synced_under_load: bool,
    load_txs: usize,
}

/// Serves concurrent HTTP clients from an archival node that is
/// simultaneously syncing `load` fresh transactions off the mesh.
fn run_query_load(conns: usize, secs: u64, load: usize) -> LoadReport {
    const WARM: usize = 32;
    let mut rng = StdRng::seed_from_u64(11);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let lights: Vec<LightClient> =
        (0..2).map(|_| LightClient::new(Account::generate(&mut rng))).collect();

    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(FixedPolicy(Difficulty::MIN)),
        GatewayConfig {
            lazy_policy: LazyTipPolicy {
                max_parent_age_ms: u64::MAX,
                max_parent_approvers: usize::MAX,
            },
            record_broadcasts: true,
            record_credit_events: true,
            ..GatewayConfig::default()
        },
    );
    let genesis = gateway.init_genesis(SimTime::ZERO);
    for light in &lights {
        let device = manager.register_device(light.public_key().clone());
        manager.authorize(device);
        gateway.register_pubkey(light.public_key().clone());
    }
    let d0 = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let auth = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d0);
    gateway
        .apply_auth_list(auth.tx, SimTime::ZERO)
        .expect("auth list applies");

    let mut validation = ValidationNode::new(
        gateway,
        RoleConfig { role: Role::Validation, gossip: gossip_cfg(1), ..RoleConfig::default() },
    )
    .expect("validation boots");
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("gossip bind");
    let gossip_addr = acceptor.local_addr().expect("gossip addr");
    let mut archival = ArchivalNode::new(RoleConfig {
        role: Role::Archival,
        gossip: gossip_cfg(2),
        http_addr: Some("127.0.0.1:0".into()),
        ..RoleConfig::default()
    })
    .expect("archival boots");
    archival.gossip_mut().connect(Box::new(TcpConnector { addr: gossip_addr }));
    let http_addr = archival.http_addr().expect("http addr").expect("http on");

    // Pre-mine every transaction (signing cost must not pollute the
    // serving measurement). Unique millisecond timestamps keep every
    // emitted credit event bit-unique for the mesh.
    let total = WARM + load;
    let txs: Vec<(u64, Transaction)> = (0..total)
        .map(|i| {
            let at = 100 + i as u64;
            let tx = lights[i % 2]
                .prepare(
                    format!("reading {i}").into_bytes(),
                    (genesis, genesis),
                    SimTime::from_millis(at),
                    Difficulty::MIN,
                )
                .tx;
            (at, tx)
        })
        .collect();
    let mut txs = txs.into_iter();

    // Warmup: admit and fully sync WARM transactions so every queried
    // tx id is guaranteed present on the archival side.
    let mut warm_ids = Vec::new();
    for _ in 0..WARM {
        let (at, tx) = txs.next().expect("warmup tx");
        warm_ids.push(tx.id());
        validation
            .gateway_mut()
            .submit(tx, SimTime::from_millis(at))
            .expect("warmup admit");
    }
    let start = Instant::now();
    let warm_deadline = start + Duration::from_secs(30);
    loop {
        let now = start.elapsed().as_millis() as u64;
        for t in acceptor.try_accept_all(16).expect("accept") {
            validation.gossip_mut().add_transport(Box::new(t), now);
        }
        validation.poll(now).expect("validation poll");
        archival.poll(now).expect("archival poll");
        if archival.gossip().tangle().lock().unwrap().len() == 2 + WARM {
            break;
        }
        assert!(Instant::now() < warm_deadline, "warmup never synced");
        std::thread::sleep(Duration::from_millis(1));
    }

    // The query mix: every endpoint, all expected to answer 200.
    let mut paths: Vec<String> = vec![
        "/v1/health".into(),
        "/v1/stats".into(),
        "/v1/tips".into(),
        "/v1/credit".into(),
    ];
    for id in warm_ids.iter().take(6) {
        paths.push(format!("/v1/tx/{}", to_hex(id.as_bytes())));
        paths.push(format!("/v1/weight/{}", to_hex(id.as_bytes())));
    }
    for light in &lights {
        paths.push(format!("/v1/credit/{}?at_ms=2000", to_hex(light.id().as_bytes())));
    }

    let stop_at = Instant::now() + Duration::from_secs(secs);
    let clients: Vec<_> = (0..conns)
        .map(|c| {
            let paths = paths.clone();
            std::thread::spawn(move || -> Result<(Vec<u64>, usize), String> {
                let mut stream =
                    std::net::TcpStream::connect(http_addr).map_err(|e| e.to_string())?;
                stream.set_nodelay(true).ok();
                let mut latencies_ns = Vec::new();
                let mut not_ok = 0usize;
                let mut i = c; // offset so threads interleave the mix
                while Instant::now() < stop_at {
                    let path = &paths[i % paths.len()];
                    i += 1;
                    let req = format!("GET {path} HTTP/1.1\r\n\r\n");
                    let t0 = Instant::now();
                    let status =
                        roundtrip(&mut stream, req.as_bytes()).map_err(|e| e.to_string())?;
                    latencies_ns.push(t0.elapsed().as_nanos() as u64);
                    if status != 200 {
                        not_ok += 1;
                    }
                }
                Ok((latencies_ns, not_ok))
            })
        })
        .collect();

    // Trickle the remaining transactions in while the clients hammer:
    // the endpoint is measured mid-sync, not against a frozen tangle.
    let measure_start = Instant::now();
    let interval_ms = secs as f64 * 1e3 / (load as f64 + 1.0);
    let mut submitted = 0usize;
    while clients.iter().any(|c| !c.is_finished()) {
        let now = start.elapsed().as_millis() as u64;
        while submitted < load
            && measure_start.elapsed().as_millis() as f64 >= interval_ms * (submitted as f64 + 1.0)
        {
            let (at, tx) = txs.next().expect("load tx");
            validation
                .gateway_mut()
                .submit(tx, SimTime::from_millis(at))
                .expect("load admit");
            submitted += 1;
        }
        validation.poll(now).expect("validation poll");
        archival.poll(now).expect("archival poll");
    }
    let measured_ms = measure_start.elapsed().as_millis() as u64;

    let mut latencies_ns = Vec::new();
    let mut not_ok = 0usize;
    for c in clients {
        let (lat, bad) = c.join().expect("client thread").expect("client io");
        latencies_ns.extend(lat);
        not_ok += bad;
    }
    latencies_ns.sort_unstable();

    // Finish the trickle and require full convergence: serving load must
    // not have starved the sync path.
    let sync_deadline = Instant::now() + Duration::from_secs(30);
    let synced_under_load = loop {
        let now = start.elapsed().as_millis() as u64;
        while submitted < load {
            let (at, tx) = txs.next().expect("load tx");
            validation
                .gateway_mut()
                .submit(tx, SimTime::from_millis(at))
                .expect("load admit");
            submitted += 1;
        }
        validation.poll(now).expect("validation poll");
        archival.poll(now).expect("archival poll");
        if archival.gossip().tangle().lock().unwrap().len() == 2 + total {
            break true;
        }
        if Instant::now() >= sync_deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(1));
    };

    let requests = latencies_ns.len();
    LoadReport {
        requests,
        not_ok,
        elapsed_ms: measured_ms,
        qps: requests as f64 / (measured_ms.max(1) as f64 / 1e3),
        p50_ms: percentile_ms(&latencies_ns, 0.50),
        p99_ms: percentile_ms(&latencies_ns, 0.99),
        synced_under_load,
        load_txs: load,
    }
}

struct BootReport {
    txs: usize,
    replay_boot_ms: f64,
    snapshot_boot_ms: f64,
    speedup: f64,
}

/// Builds a WAL-only store of `n` transactions mirroring a live
/// archival node (periodic confirmation + cone sealing), then times
/// `ArchivalNode::new` twice: against the raw WAL — whose records carry
/// no confirmation state, so recovery re-attaches every transaction
/// through an unsealed index — and against a checkpoint of the live
/// tangle, whose snapshot rows let recovery seal as it restores.
fn run_boot_comparison(n: usize) -> BootReport {
    let dir = std::env::temp_dir()
        .join(format!("biot_api_report_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let mut events = Vec::new();
    let tangle = {
        let mut store = biot_store::LedgerStore::open(&dir).expect("store opens");
        let mut rng = StdRng::seed_from_u64(17);
        let mut tangle = Tangle::new();
        let genesis = tangle.attach_genesis(NodeId([0; 32]), 0);
        let gtx = tangle.get(&genesis).expect("genesis exists").clone();
        store.append(&gtx, 0).expect("append genesis");
        for i in 0..n {
            let (a, b) = UniformRandomSelector
                .select_tips(&tangle, &mut rng)
                .expect("tangle never empties");
            let ts = i as u64 + 1;
            let tx = TransactionBuilder::new(NodeId([(i % 251) as u8; 32]))
                .parents(a, b)
                .payload(Payload::Data((i as u64).to_be_bytes().to_vec()))
                .timestamp_ms(ts)
                .nonce(i as u64)
                .build();
            store.append(&tx, ts).expect("append");
            tangle.attach(tx, ts).expect("parents are tips");
            events.push(CreditEvent::validated(
                NodeId([(i % 251) as u8; 32]),
                1.0,
                SimTime::from_millis(ts),
            ));
            if events.len() % 64 == 0 {
                store
                    .append_credit_events(&events[events.len() - 64..])
                    .expect("append events");
            }
            if i % 256 == 255 {
                tangle.confirm_with_threshold(2);
            }
            if i % 512 == 511 {
                tangle.seal_frontier(128);
            }
        }
        store
            .append_credit_events(&events[events.len() - events.len() % 64..])
            .expect("append events");
        tangle
    };

    let boot_cfg = || RoleConfig {
        role: Role::Archival,
        gossip: GossipConfig { node_id: 9, ..GossipConfig::default() },
        store_dir: Some(dir.clone()),
        ..RoleConfig::default()
    };

    let t0 = Instant::now();
    let node = ArchivalNode::new(boot_cfg()).expect("replay boot");
    let replay_boot_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(node.boot_source(), BootSource::Snapshot, "state was on disk");
    assert_eq!(node.gossip().tangle().lock().unwrap().len(), n + 1);
    drop(node);

    // Checkpoint from the *live* tangle, the way `ArchivalNode::checkpoint`
    // does on a running node: its confirmation state reaches the snapshot.
    {
        let mut store = biot_store::LedgerStore::open(&dir).expect("store reopens");
        store
            .checkpoint_with_credit(&tangle, &events)
            .expect("checkpoint");
    }

    let t0 = Instant::now();
    let node = ArchivalNode::new(boot_cfg()).expect("snapshot boot");
    let snapshot_boot_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(node.gossip().tangle().lock().unwrap().len(), n + 1);
    drop(node);

    let _ = fs::remove_dir_all(&dir);
    BootReport {
        txs: n,
        replay_boot_ms,
        snapshot_boot_ms,
        speedup: replay_boot_ms / snapshot_boot_ms.max(1e-9),
    }
}

fn main() -> std::io::Result<()> {
    let conns = env_usize("BIOT_API_CONNS", 4);
    let secs = env_u64("BIOT_API_SECS", 3);
    let load = env_usize("BIOT_API_LOAD", 120);
    let boot_txs = env_usize("BIOT_API_BOOT_TXS", 10_000);

    println!("query load: {conns} connections for {secs}s over {load} trickled txs");
    let q = run_query_load(conns, secs, load);
    println!(
        "  {} requests in {} ms -> {:.0} queries/s, p50 {:.3} ms p99 {:.3} ms, \
         {} non-200, synced under load: {}",
        q.requests, q.elapsed_ms, q.qps, q.p50_ms, q.p99_ms, q.not_ok, q.synced_under_load
    );

    println!("boot comparison: {boot_txs} transactions");
    let b = run_boot_comparison(boot_txs);
    println!(
        "  full replay {:.1} ms vs snapshot {:.1} ms -> {:.1}x",
        b.replay_boot_ms, b.snapshot_boot_ms, b.speedup
    );

    let all_ok = q.not_ok == 0 && q.requests > 0;
    let snapshot_faster = b.snapshot_boot_ms < b.replay_boot_ms;
    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_api.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"connections\": {conns},")?;
    writeln!(f, "  \"duration_secs\": {secs},")?;
    writeln!(
        f,
        "  \"query_load\": {{\"requests\": {}, \"non_200\": {}, \"elapsed_ms\": {}, \
         \"queries_per_sec\": {:.1}, \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}, \
         \"trickled_txs\": {}, \"synced_under_load\": {}}},",
        q.requests, q.not_ok, q.elapsed_ms, q.qps, q.p50_ms, q.p99_ms, q.load_txs,
        q.synced_under_load
    )?;
    writeln!(
        f,
        "  \"boot\": {{\"txs\": {}, \"full_replay_ms\": {:.2}, \"snapshot_ms\": {:.2}, \
         \"speedup\": {:.2}}},",
        b.txs, b.replay_boot_ms, b.snapshot_boot_ms, b.speedup
    )?;
    writeln!(f, "  \"acceptance\": {{")?;
    writeln!(f, "    \"all_responses_ok\": {all_ok},")?;
    writeln!(f, "    \"queries_per_sec\": {:.1},", q.qps)?;
    writeln!(f, "    \"qps_floor_ok\": {},", q.qps >= 500.0)?;
    writeln!(f, "    \"latency_p99_ms\": {:.3},", q.p99_ms)?;
    writeln!(f, "    \"p99_under_50ms\": {},", q.p99_ms < 50.0)?;
    writeln!(f, "    \"synced_under_load\": {},", q.synced_under_load)?;
    writeln!(f, "    \"snapshot_boot_faster\": {snapshot_faster},")?;
    writeln!(f, "    \"snapshot_speedup\": {:.2}", b.speedup)?;
    writeln!(f, "  }}")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_api.json");
    Ok(())
}
