//! Emits `results/BENCH_runtime.json`: what the blocking event loop buys
//! over the legacy 1ms tick loop, measured on a real archival node with
//! its HTTP endpoint bound.
//!
//! Two measurements, each taken under both drivers:
//!
//! * **idle wakeups/s** — the node sits with no traffic. The tick loop
//!   wakes ~1000 times a second to discover nothing happened; the event
//!   loop blocks in `epoll_pwait` and wakes only for gossip timers
//!   (anti-entropy, heartbeat) and its 500ms responsiveness floor. The
//!   report asserts the event loop stays at or under
//!   `BIOT_RT_IDLE_MAX` (default 50) wakeups/s.
//! * **wakeup-to-first-byte latency** — one keep-alive client fires
//!   `GET /v1/health` requests back to back and times each write until
//!   the first response byte lands. For the tick loop that latency is
//!   dominated by the up-to-1ms sleep between polls; the event loop is
//!   woken by the socket itself. The report asserts the event loop's
//!   p99 stays under `BIOT_RT_P99_BOUND_MS` (default 2.0 ms, headroom
//!   over the 0.39 ms the tick-driven API measured on dev hardware).
//!
//! Run with: `cargo run -p biot-bench --release --bin runtime_report`
//!
//! CI shrinks the scale via `BIOT_RT_IDLE_SECS`, `BIOT_RT_REQS`.

use biot_node::role::{ArchivalNode, Role, RoleConfig};
use biot_node::EventLoop;
use biot_gossip::node::GossipConfig;
use std::fs;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

/// A fresh archival node with HTTP bound on an ephemeral port and the
/// stock Announce-mode gossip timers — the shape an idle fleet node has.
fn archival(node_id: u64) -> ArchivalNode {
    ArchivalNode::new(RoleConfig {
        role: Role::Archival,
        gossip: GossipConfig { node_id, ..GossipConfig::default() },
        http_addr: Some("127.0.0.1:0".into()),
        ..RoleConfig::default()
    })
    .expect("archival boots")
}

/// Keep-alive `GET /v1/health` hammer: returns per-request nanoseconds
/// from the request write to the FIRST response byte. The rest of each
/// response is drained by `Content-Length` so requests never pipeline.
fn first_byte_client(
    addr: std::net::SocketAddr,
    reqs: usize,
) -> Result<Vec<u64>, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream.set_nodelay(true).ok();
    let request = b"GET /v1/health HTTP/1.1\r\n\r\n";
    let mut latencies_ns = Vec::with_capacity(reqs);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    for _ in 0..reqs {
        buf.clear();
        let t0 = Instant::now();
        stream.write_all(request).map_err(|e| e.to_string())?;
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
        if n == 0 {
            return Err("connection closed mid-response".into());
        }
        buf.extend_from_slice(&chunk[..n]);
        // Drain the rest of the response before the next request.
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
            if n == 0 {
                return Err("connection closed mid-headers".into());
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        if head.split_whitespace().nth(1) != Some("200") {
            return Err(format!("non-200 response: {head}"));
        }
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.trim().parse().ok())
            .ok_or("no content length")?;
        while buf.len() - head_end < content_length {
            let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
            if n == 0 {
                return Err("connection closed mid-body".into());
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }
    Ok(latencies_ns)
}

/// Idle wakeups/s with the legacy driver: poll everything, sleep 1ms.
fn idle_tick(secs: u64) -> f64 {
    let mut node = archival(1);
    let start = Instant::now();
    let until = start + Duration::from_secs(secs);
    let mut iterations = 0u64;
    while Instant::now() < until {
        node.poll(start.elapsed().as_millis() as u64).expect("poll");
        iterations += 1;
        std::thread::sleep(Duration::from_millis(1));
    }
    iterations as f64 / start.elapsed().as_secs_f64()
}

/// Idle wakeups/s blocking in the event loop.
fn idle_event(secs: u64) -> f64 {
    let mut el = EventLoop::new().expect("event loop boots");
    el.add_archival(archival(2));
    let start = Instant::now();
    el.run_until(secs * 1_000, |_| false).expect("idle run");
    el.wakeups() as f64 / start.elapsed().as_secs_f64()
}

/// First-byte latencies (sorted ns) against a tick-driven archival node.
fn latency_tick(reqs: usize) -> Vec<u64> {
    let mut node = archival(3);
    let addr = node.http_addr().expect("http addr").expect("http on");
    let client = std::thread::spawn(move || first_byte_client(addr, reqs));
    let start = Instant::now();
    while !client.is_finished() {
        node.poll(start.elapsed().as_millis() as u64).expect("poll");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut lat = client.join().expect("client thread").expect("client io");
    lat.sort_unstable();
    lat
}

/// First-byte latencies (sorted ns) against an event-loop archival node.
fn latency_event(reqs: usize) -> Vec<u64> {
    let mut el = EventLoop::new().expect("event loop boots");
    let id = el.add_archival(archival(4));
    let addr =
        el.archival(id).expect("member").http_addr().expect("http addr").expect("http on");
    let client = std::thread::spawn(move || first_byte_client(addr, reqs));
    let done = el
        .run_until(120_000, |_| client.is_finished())
        .expect("latency run");
    assert!(done, "client never finished against the event loop");
    let mut lat = client.join().expect("client thread").expect("client io");
    lat.sort_unstable();
    lat
}

fn main() -> std::io::Result<()> {
    let idle_secs = env_u64("BIOT_RT_IDLE_SECS", 5);
    let reqs = env_u64("BIOT_RT_REQS", 2_000) as usize;
    let idle_max = env_f64("BIOT_RT_IDLE_MAX", 50.0);
    let p99_bound_ms = env_f64("BIOT_RT_P99_BOUND_MS", 2.0);

    println!("idle: {idle_secs}s per driver, archival node, no traffic");
    let tick_idle = idle_tick(idle_secs);
    let event_idle = idle_event(idle_secs);
    let reduction = tick_idle / event_idle.max(1e-9);
    println!(
        "  tick {tick_idle:.0} wakeups/s vs event loop {event_idle:.1} wakeups/s \
         -> {reduction:.0}x fewer"
    );

    println!("first byte: {reqs} keep-alive /v1/health requests per driver");
    let tick_lat = latency_tick(reqs);
    let event_lat = latency_event(reqs);
    let (tick_p50, tick_p99) =
        (percentile_ms(&tick_lat, 0.50), percentile_ms(&tick_lat, 0.99));
    let (event_p50, event_p99) =
        (percentile_ms(&event_lat, 0.50), percentile_ms(&event_lat, 0.99));
    println!(
        "  tick p50 {tick_p50:.3} ms p99 {tick_p99:.3} ms vs \
         event loop p50 {event_p50:.3} ms p99 {event_p99:.3} ms"
    );

    let idle_ok = event_idle <= idle_max;
    let latency_ok = event_p99 <= p99_bound_ms;
    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_runtime.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"idle_secs\": {idle_secs},")?;
    writeln!(f, "  \"first_byte_requests\": {reqs},")?;
    writeln!(
        f,
        "  \"idle\": {{\"tick_wakeups_per_sec\": {tick_idle:.1}, \
         \"event_wakeups_per_sec\": {event_idle:.2}, \"reduction\": {reduction:.1}}},"
    )?;
    writeln!(
        f,
        "  \"first_byte\": {{\"tick_p50_ms\": {tick_p50:.4}, \"tick_p99_ms\": {tick_p99:.4}, \
         \"event_p50_ms\": {event_p50:.4}, \"event_p99_ms\": {event_p99:.4}}},"
    )?;
    writeln!(f, "  \"acceptance\": {{")?;
    writeln!(f, "    \"idle_wakeups_max\": {idle_max:.1},")?;
    writeln!(f, "    \"idle_wakeups_ok\": {idle_ok},")?;
    writeln!(f, "    \"first_byte_p99_bound_ms\": {p99_bound_ms:.2},")?;
    writeln!(f, "    \"first_byte_ok\": {latency_ok}")?;
    writeln!(f, "  }}")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_runtime.json");
    assert!(
        idle_ok,
        "idle event loop burned {event_idle:.1} wakeups/s (budget {idle_max})"
    );
    assert!(
        latency_ok,
        "event-loop first-byte p99 {event_p99:.3} ms exceeds {p99_bound_ms} ms"
    );
    Ok(())
}
