//! Emits `results/BENCH_tangle_scale.json`: the million-transaction
//! ingest run for the sealed-cone weight index.
//!
//! Three measurements, all on the same seeded graph:
//!
//! * **sealed ingest** — attach 1M transactions with the gateway's
//!   steady-state confirm/seal cadence, recording per-attach pause
//!   percentiles, a log2 pause histogram, per-window throughput (flat
//!   windows = per-attach cost bounded by the frontier, not ledger
//!   depth), resident sealed-epoch vs mutable-frontier sizes, and
//!   sampled recount-oracle checks (the run aborts on any mismatch).
//! * **probe at depth** — a fresh attach batch against the finished
//!   1M-tx tangle, once with the seal in place and once on an unsealed
//!   clone whose every attach walks toward genesis. The unsealed *full*
//!   run is quadratic (hours), so this probes the exact per-attach cost
//!   the index changes, at identical depth, instead.
//! * **acceptance** — bounded-pause and ≥5× speedup checks, embedded in
//!   the JSON so CI can assert on them.
//!
//! Run with: `cargo run -p biot-bench --release --bin tangle_scale_report`
//!
//! CI shrinks the scale via `BIOT_SCALE_TXS` and `BIOT_SCALE_PROBES`.

use biot_bench::scale::{probe_attach, run_sealed_ingest, ProbeStats, ScaleConfig, ScaleReport};
use std::fs;
use std::io::Write;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fmt_probe(p: &ProbeStats) -> String {
    format!(
        "{{\"probes\": {}, \"mean_ns\": {:.1}, \"p99_ns\": {}, \"max_ns\": {}, \
         \"tx_per_sec\": {:.1}}}",
        p.probes, p.mean_ns, p.p99_ns, p.max_ns, p.tx_per_sec
    )
}

fn fmt_f64s(xs: &[f64]) -> String {
    let cells: Vec<String> = xs.iter().map(|x| format!("{x:.1}")).collect();
    format!("[{}]", cells.join(", "))
}

fn fmt_u64s(xs: &[u64]) -> String {
    let cells: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", cells.join(", "))
}

fn fmt_sealed(r: &ScaleReport) -> String {
    let hist: Vec<String> = r
        .histogram
        .iter()
        .map(|(lo, c)| format!("[{lo}, {c}]"))
        .collect();
    format!(
        "{{\n    \"txs\": {},\n    \"elapsed_ms\": {:.1},\n    \"tx_per_sec\": {:.1},\n    \
         \"attach_ns_p50\": {},\n    \"attach_ns_p99\": {},\n    \"attach_ns_max\": {},\n    \
         \"pause_histogram_ns\": [{}],\n    \"window_tx_per_sec\": {},\n    \
         \"window_p99_ns\": {},\n    \"frontier_len\": {},\n    \"sealed_len\": {},\n    \
         \"seals\": {},\n    \"boundary_passes\": {},\n    \"stray_walks\": {},\n    \
         \"oracle_checks\": {},\n    \"oracle_failures\": {}\n  }}",
        r.txs,
        r.elapsed_ms,
        r.tx_per_sec,
        r.attach_ns_p50,
        r.attach_ns_p99,
        r.attach_ns_max,
        hist.join(", "),
        fmt_f64s(&r.window_tx_per_sec),
        fmt_u64s(&r.window_p99_ns),
        r.frontier_len,
        r.sealed_len,
        r.seals,
        r.passes,
        r.strays,
        r.oracle_checks,
        r.oracle_failures,
    )
}

fn main() -> std::io::Result<()> {
    let txs = env_usize("BIOT_SCALE_TXS", 1_000_000);
    let probes = env_usize("BIOT_SCALE_PROBES", 500);
    let cfg = ScaleConfig {
        txs,
        ..ScaleConfig::default()
    };

    biot_bench::header(
        "tangle_scale: sealed-cone weight index at 1M transactions",
        "ROADMAP item 3 — storage/indexing proportional to the frontier (cf. DLedger)",
    );
    println!("sealed ingest of {txs} txs (confirm every {}, seal every {}, lag {})...",
        cfg.confirm_every, cfg.seal_every, cfg.seal_lag);
    let (tangle, sealed) = run_sealed_ingest(&cfg);
    println!(
        "  {:.0} tx/s, attach p50 {} ns, p99 {} ns, max {} ns; {} sealed / {} frontier",
        sealed.tx_per_sec,
        sealed.attach_ns_p50,
        sealed.attach_ns_p99,
        sealed.attach_ns_max,
        sealed.sealed_len,
        sealed.frontier_len,
    );
    println!(
        "  oracle: {} checks, {} failures; seals {}, passes {}, strays {}",
        sealed.oracle_checks, sealed.oracle_failures, sealed.seals, sealed.passes, sealed.strays,
    );

    println!("probing {probes} fresh attaches at depth {txs}, sealed index...");
    let probe_sealed = probe_attach(&tangle, probes, 0xCAFE);
    println!("  mean {:.0} ns, p99 {} ns", probe_sealed.mean_ns, probe_sealed.p99_ns);

    println!("unsealing the clone (weights folded back) and re-probing...");
    let mut unsealed = tangle.clone();
    unsealed.unseal_all();
    let probe_unsealed = probe_attach(&unsealed, probes, 0xCAFE);
    println!(
        "  mean {:.0} ns, p99 {} ns",
        probe_unsealed.mean_ns, probe_unsealed.p99_ns
    );
    let speedup = probe_unsealed.mean_ns / probe_sealed.mean_ns.max(1.0);
    println!("sealed vs unsealed per-attach speedup at depth: {speedup:.1}x");

    // Bounded-pause criterion: per-attach p99 in the deepest tenth of the
    // run must not have grown materially over the shallowest tenth.
    let first_p99 = *sealed.window_p99_ns.first().unwrap_or(&1) as f64;
    let last_p99 = *sealed.window_p99_ns.last().unwrap_or(&1) as f64;
    let growth = last_p99 / first_p99.max(1.0);
    let bounded = growth < 3.0;
    let fast_enough = speedup >= 5.0;
    println!(
        "window p99 growth first→last: {growth:.2}x ({})",
        if bounded { "bounded" } else { "GROWING" }
    );

    fs::create_dir_all("results")?;
    let mut f = fs::File::create("results/BENCH_tangle_scale.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"txs\": {txs},")?;
    writeln!(f, "  \"seed\": {},", cfg.seed)?;
    writeln!(f, "  \"confirm_every\": {},", cfg.confirm_every)?;
    writeln!(f, "  \"confirm_threshold\": {},", cfg.confirm_threshold)?;
    writeln!(f, "  \"seal_every\": {},", cfg.seal_every)?;
    writeln!(f, "  \"seal_lag\": {},", cfg.seal_lag)?;
    writeln!(f, "  \"sealed_ingest\": {},", fmt_sealed(&sealed))?;
    writeln!(f, "  \"probe_at_depth\": {{")?;
    writeln!(f, "    \"sealed\": {},", fmt_probe(&probe_sealed))?;
    writeln!(f, "    \"unsealed\": {},", fmt_probe(&probe_unsealed))?;
    writeln!(f, "    \"speedup\": {speedup:.2}")?;
    writeln!(f, "  }},")?;
    writeln!(f, "  \"acceptance\": {{")?;
    writeln!(f, "    \"window_p99_growth\": {growth:.3},")?;
    writeln!(f, "    \"per_attach_bounded\": {bounded},")?;
    writeln!(f, "    \"speedup_at_least_5x\": {fast_enough},")?;
    writeln!(
        f,
        "    \"oracle_exact\": {}",
        sealed.oracle_failures == 0
    )?;
    writeln!(f, "  }}")?;
    writeln!(f, "}}")?;
    println!("wrote results/BENCH_tangle_scale.json");
    Ok(())
}
