//! # biot-bench
//!
//! Benchmark harness for the B-IoT reproduction. Each paper figure has a
//! binary that regenerates it (`cargo run -p biot-bench --release --bin
//! fig7` etc.); criterion benches cover the wall-clock-sensitive pieces.
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig7` | Fig 7 — PoW running time vs difficulty |
//! | `fig8` | Fig 8 — credit traces under attacks |
//! | `fig9` | Fig 9 — four control experiments |
//! | `fig10` | Fig 10 — AES time vs message length |
//! | `keydist` | §VI-B key-distribution cost |
//! | `ablation_throughput` | A1 — tangle vs chain |
//! | `ablation_policy` | A2 — difficulty-policy choice |
//! | `security_analysis` | A3 — §VI-C measured |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scale;

/// Prints a report header with a title and paper reference.
pub fn header(title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("{}", "=".repeat(72));
}

/// Prints an aligned row of labelled values.
pub fn row(cells: &[(&str, String)]) {
    let line: Vec<String> = cells
        .iter()
        .map(|(label, value)| format!("{label}={value}"))
        .collect();
    println!("  {}", line.join("  "));
}

/// Formats seconds with adaptive precision.
pub fn secs(v: f64) -> String {
    if v < 0.01 {
        format!("{:.5}s", v)
    } else if v < 10.0 {
        format!("{:.3}s", v)
    } else {
        format!("{:.1}s", v)
    }
}

/// Renders a crude ASCII sparkline of a series (for terminal-readable
/// figure shapes).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(0.0001), "0.00010s");
        assert_eq!(secs(1.5), "1.500s");
        assert_eq!(secs(245.3), "245.3s");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
