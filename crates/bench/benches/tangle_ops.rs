//! Ledger-operation benchmarks: attach, tip selection, cumulative weight,
//! and the chain baseline's block insertion.

use biot_chain::{Block, BlockId, Blockchain};
use biot_tangle::graph::Tangle;
use biot_tangle::tips::{TipSelector, UniformRandomSelector, WeightedMcmcSelector};
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a tangle with `n` random-parent transactions.
fn build_tangle(n: usize, seed: u64) -> Tangle {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tangle = Tangle::new();
    tangle.attach_genesis(NodeId([0; 32]), 0);
    for i in 0..n {
        let (a, b) = UniformRandomSelector
            .select_tips(&tangle, &mut rng)
            .unwrap();
        let tx = TransactionBuilder::new(NodeId([(i % 250) as u8; 32]))
            .parents(a, b)
            .payload(Payload::Data((i as u64).to_be_bytes().to_vec()))
            .timestamp_ms(i as u64)
            .nonce(i as u64)
            .build();
        tangle.attach(tx, i as u64).unwrap();
    }
    tangle
}

fn bench_attach(c: &mut Criterion) {
    c.bench_function("tangle_attach_1000", |b| {
        b.iter(|| build_tangle(1000, 1));
    });
}

fn bench_tip_selection(c: &mut Criterion) {
    let tangle = build_tangle(2000, 2);
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("tips_uniform_2k", |b| {
        b.iter(|| UniformRandomSelector.select_tips(&tangle, &mut rng))
    });
    let small = build_tangle(200, 4);
    let mcmc = WeightedMcmcSelector::new(0.5);
    c.bench_function("tips_mcmc_200", |b| {
        b.iter(|| mcmc.select_tips(&small, &mut rng))
    });
}

fn bench_cumulative_weight(c: &mut Criterion) {
    let tangle = build_tangle(2000, 5);
    let genesis = tangle.genesis().unwrap();
    c.bench_function("cumulative_weight_genesis_2k", |b| {
        b.iter(|| tangle.cumulative_weight(&genesis))
    });
}

fn bench_chain_blocks(c: &mut Criterion) {
    c.bench_function("chain_add_100_blocks", |b| {
        b.iter(|| {
            let mut chain = Blockchain::new();
            let mut prev = chain
                .add_block(
                    Block {
                        prev: BlockId::GENESIS_PARENT,
                        miner: NodeId([0; 32]),
                        timestamp_ms: 0,
                        nonce: 0,
                        txs: vec![],
                    },
                    0,
                )
                .unwrap();
            for i in 1..100u64 {
                prev = chain
                    .add_block(
                        Block {
                            prev,
                            miner: NodeId([1; 32]),
                            timestamp_ms: i,
                            nonce: i,
                            txs: vec![],
                        },
                        i,
                    )
                    .unwrap();
            }
            chain
        })
    });
}

criterion_group!(
    benches,
    bench_attach,
    bench_tip_selection,
    bench_cumulative_weight,
    bench_chain_blocks
);
criterion_main!(benches);
