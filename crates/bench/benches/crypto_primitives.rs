//! Microbenchmarks of the from-scratch primitives: SHA-256, HMAC, RSA.

use biot_crypto::rsa::RsaPrivateKey;
use biot_crypto::sha256::{hmac_sha256, sha256};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for n in [64usize, 1024, 65536] {
        let data = vec![0x5Au8; n];
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| sha256(data))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x5Au8; 1024];
    c.bench_function("hmac_sha256_1k", |b| b.iter(|| hmac_sha256(b"key", &data)));
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let sk = RsaPrivateKey::generate(512, &mut rng);
    let sig = sk.sign(b"message");
    let ct = sk.public().encrypt(b"a 32-byte symmetric session key!", &mut rng).unwrap();

    c.bench_function("rsa512_sign", |b| b.iter(|| sk.sign(b"message")));
    c.bench_function("rsa512_verify", |b| {
        b.iter(|| sk.public().verify(b"message", &sig))
    });
    c.bench_function("rsa512_encrypt", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| sk.public().encrypt(b"a 32-byte symmetric session key!", &mut rng))
    });
    c.bench_function("rsa512_decrypt", |b| b.iter(|| sk.decrypt(&ct).unwrap()));

    let mut group = c.benchmark_group("rsa_keygen");
    group.sample_size(10);
    group.bench_function("512", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| RsaPrivateKey::generate(512, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_hmac, bench_rsa);
criterion_main!(benches);
