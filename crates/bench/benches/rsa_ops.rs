//! Microbenchmarks isolating the Montgomery exponentiation path behind
//! every RSA operation: the naive square-and-multiply oracle vs the
//! dispatched `BigUint::modpow` vs a pre-built `MontgomeryCtx` (context
//! reuse, as the cached-key path in `biot_crypto::rsa` does).

use biot_crypto::bignum::{BigUint, MontgomeryCtx};
use biot_crypto::rsa::RsaPrivateKey;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_modpow_512(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let sk = RsaPrivateKey::generate(512, &mut rng);
    let n = sk.public().modulus().clone();
    let d = sk.private_exponent().clone();
    let m = BigUint::from_bytes_be(&[0xA5u8; 64]).rem(&n);

    let mut group = c.benchmark_group("modpow512_private_exponent");
    group.sample_size(10);
    group.bench_function("naive", |b| b.iter(|| m.modpow_naive(&d, &n)));
    group.bench_function("montgomery_dispatch", |b| b.iter(|| m.modpow(&d, &n)));
    let ctx = MontgomeryCtx::new(n.clone()).expect("RSA modulus is odd");
    group.bench_function("montgomery_prebuilt_ctx", |b| {
        b.iter(|| ctx.modpow(&m, &d))
    });
    group.finish();
}

fn bench_private_ops(c: &mut Criterion) {
    // `sign` uses the cached per-factor Montgomery contexts plus CRT; the
    // first call pays the one-off context build, later calls reuse it.
    let mut rng = StdRng::seed_from_u64(12);
    let sk = RsaPrivateKey::generate(512, &mut rng);
    let sig = sk.sign(b"reading");
    c.bench_function("rsa512_sign_cached_ctx", |b| b.iter(|| sk.sign(b"reading")));
    c.bench_function("rsa512_verify_cached_ctx", |b| {
        b.iter(|| sk.public().verify(b"reading", &sig))
    });
}

criterion_group!(benches, bench_modpow_512, bench_private_ops);
criterion_main!(benches);
