//! Criterion bench backing Fig 10: AES-CBC encryption time vs message
//! length (expect linear scaling in bytes).

use biot_crypto::aes::{Aes, AesKey};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_encrypt(c: &mut Criterion) {
    let aes = Aes::new(&AesKey::Aes256([0x42; 32]));
    let iv = [7u8; 16];
    let mut group = c.benchmark_group("aes_cbc_encrypt");
    for log2 in [6usize, 10, 14, 18] {
        let n = 1usize << log2;
        let data = vec![0xABu8; n];
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| aes.encrypt_cbc(data, &iv))
        });
    }
    group.finish();
}

fn bench_decrypt(c: &mut Criterion) {
    let aes = Aes::new(&AesKey::Aes256([0x42; 32]));
    let iv = [7u8; 16];
    let ct = aes.encrypt_cbc(&vec![0xCDu8; 1 << 14], &iv);
    c.bench_function("aes_cbc_decrypt_16k", |b| {
        b.iter(|| aes.decrypt_cbc(&ct, &iv).unwrap())
    });
}

fn bench_key_schedule(c: &mut Criterion) {
    // Cipher construction is key expansion only: the S-box tables live in
    // a process-wide static, not rebuilt per key.
    c.bench_function("aes256_key_schedule", |b| {
        b.iter(|| Aes::new(&AesKey::Aes256([0x42; 32])))
    });
}

criterion_group!(benches, bench_encrypt, bench_decrypt, bench_key_schedule);
criterion_main!(benches);
