//! Protocol-level benchmarks: the Fig 4 handshake, gateway submission
//! pipeline, and credit computation.

use biot_core::credit::{CreditParams, CreditRegistry, Misbehavior};
use biot_core::difficulty::InverseProportionalPolicy;
use biot_core::identity::Account;
use biot_core::keydist::{DeviceSession, KeyDistConfig, ManagerSession};
use biot_core::node::{Gateway, GatewayConfig, LightNode, Manager};
use biot_net::time::SimTime;
use biot_tangle::tx::NodeId;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_keydist_handshake(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let manager = Account::generate(&mut rng);
    let device = Account::generate(&mut rng);
    let cfg = KeyDistConfig::default();
    let mut group = c.benchmark_group("keydist");
    group.sample_size(20);
    group.bench_function("full_handshake_rsa512", |b| {
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            let (mut ms, m1) =
                ManagerSession::initiate(&manager, device.public_key(), now, &mut rng);
            let (mut ds, m2) =
                DeviceSession::handle_m1(&device, manager.public_key(), &m1, now, &cfg, &mut rng)
                    .unwrap();
            let m3 = ms
                .handle_m2(&manager, device.public_key(), &m2, now + 1, &cfg, &mut rng)
                .unwrap();
            ds.handle_m3(manager.public_key(), &m3, now + 2, &cfg).unwrap();
            ds
        });
    });
    group.finish();
}

fn bench_gateway_submit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut manager = Manager::new(Account::generate(&mut rng));
    let mut gateway = Gateway::new(
        manager.public_key().clone(),
        Box::new(InverseProportionalPolicy::default()),
        GatewayConfig::default(),
    );
    let genesis = gateway.init_genesis(SimTime::ZERO);
    let device = LightNode::new(Account::generate(&mut rng));
    let id = manager.register_device(device.public_key().clone());
    manager.authorize(id);
    gateway.register_pubkey(device.public_key().clone());
    let d = gateway.difficulty_for(manager.id(), SimTime::ZERO);
    let list = manager.prepare_auth_list((genesis, genesis), SimTime::ZERO, d);
    gateway.apply_auth_list(list.tx, SimTime::ZERO).unwrap();

    let mut group = c.benchmark_group("gateway");
    group.sample_size(30);
    group.bench_function("prepare_and_submit_reading", |b| {
        let mut now = SimTime::from_secs(1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            now += 500;
            let tips = gateway.random_tips(&mut rng).unwrap();
            // Honest pipeline: query the credit-based difficulty, mine at
            // it, submit. The first iterations mine at D11; as activity
            // accumulates the difficulty (and cost) drops — exactly the
            // mechanism under benchmark.
            let d = gateway.difficulty_for(device.id(), now);
            let p = device.prepare_reading(format!("{i}").as_bytes(), tips, now, d, &mut rng);
            gateway.submit(p.tx, now).expect("honest reading accepted")
        });
    });
    group.finish();
}

fn bench_credit_computation(c: &mut Criterion) {
    let mut reg = CreditRegistry::new(CreditParams::default());
    let node = NodeId([1; 32]);
    for i in 0..1000u64 {
        reg.record_transaction(node, 1.0, SimTime::from_millis(i * 100));
        if i % 50 == 0 {
            reg.record_misbehavior(node, Misbehavior::LazyTips, SimTime::from_millis(i * 100));
        }
    }
    let now = SimTime::from_secs(120);
    c.bench_function("credit_of_1000_records", |b| {
        b.iter(|| reg.credit_of(node, now))
    });
    // The exact Eqn 2–5 rescan the incremental path is checked against.
    c.bench_function("credit_of_1000_records_recount", |b| {
        b.iter(|| reg.credit_of_recount(node, now))
    });
}

criterion_group!(
    benches,
    bench_keydist_handshake,
    bench_gateway_submit,
    bench_credit_computation
);
criterion_main!(benches);
