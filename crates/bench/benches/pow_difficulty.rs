//! Criterion bench backing Fig 7: real nonce searches per difficulty.
//!
//! Expect roughly 2× time per added bit — the exponential shape of the
//! paper's Fig 7 with our zero-bits difficulty unit.

use biot_core::pow::{solve, verify, Difficulty, MiningConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_solve(c: &mut Criterion) {
    // Single-threaded deterministic miner; pow_parallel.rs sweeps threads.
    let mining = MiningConfig::default();
    let mut group = c.benchmark_group("pow_solve");
    group.sample_size(10);
    for bits in [4u32, 6, 8, 10, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let mut i = 0u64;
            b.iter(|| {
                // Vary the preimage each iteration so criterion measures the
                // average-case search, not one lucky nonce.
                i += 1;
                let preimage = i.to_be_bytes();
                mining.solve(&preimage, Difficulty::new(bits))
            });
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let sol = solve(b"verify-target", Difficulty::new(12), 0);
    c.bench_function("pow_verify", |b| {
        b.iter(|| verify(b"verify-target", sol.nonce, Difficulty::new(12)))
    });
}

criterion_group!(benches, bench_solve, bench_verify);
criterion_main!(benches);
