//! Microbench: indexed O(walk)-cost tip selection vs the legacy
//! per-selection rebuild (`select_tips_recount`), plus the many-walker
//! selector at 1 and 4 threads.

use biot_tangle::graph::Tangle;
use biot_tangle::tips::{
    DepthConstrainedSelector, ParallelWalkSelector, TipSelector, UniformRandomSelector,
    WeightedMcmcSelector,
};
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn build_tangle(n: usize) -> Tangle {
    let mut rng = StdRng::seed_from_u64(11);
    let mut tangle = Tangle::new();
    tangle.attach_genesis(NodeId([0; 32]), 0);
    for i in 0..n {
        let (a, b) = UniformRandomSelector
            .select_tips(&tangle, &mut rng)
            .unwrap();
        let tx = TransactionBuilder::new(NodeId([(i % 250) as u8; 32]))
            .parents(a, b)
            .payload(Payload::Data((i as u64).to_be_bytes().to_vec()))
            .timestamp_ms(i as u64 + 1)
            .build();
        tangle.attach(tx, i as u64 + 1).unwrap();
    }
    tangle
}

fn bench_tip_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("tip_selection");
    for n in [500usize, 2_000] {
        let tangle = build_tangle(n);
        let dc = DepthConstrainedSelector::new(0.3, 64);
        let weighted = WeightedMcmcSelector::new(0.3);

        let mut rng = StdRng::seed_from_u64(5);
        group.bench_with_input(BenchmarkId::new("depth_constrained_indexed", n), &n, |b, _| {
            b.iter(|| black_box(dc.select_tips(&tangle, &mut rng)))
        });
        let mut rng = StdRng::seed_from_u64(5);
        group.bench_with_input(BenchmarkId::new("depth_constrained_recount", n), &n, |b, _| {
            b.iter(|| black_box(dc.select_tips_recount(&tangle, &mut rng)))
        });
        let mut rng = StdRng::seed_from_u64(6);
        group.bench_with_input(BenchmarkId::new("weighted_indexed", n), &n, |b, _| {
            b.iter(|| black_box(weighted.select_tips(&tangle, &mut rng)))
        });
        let mut rng = StdRng::seed_from_u64(6);
        group.bench_with_input(BenchmarkId::new("weighted_recount", n), &n, |b, _| {
            b.iter(|| black_box(weighted.select_tips_recount(&tangle, &mut rng)))
        });
        for threads in [1usize, 4] {
            let pw = ParallelWalkSelector::new(0.3, 8)
                .with_window(64)
                .with_threads(threads);
            let mut rng = StdRng::seed_from_u64(7);
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_walk_t{threads}"), n),
                &n,
                |b, _| b.iter(|| black_box(pw.select_tips(&tangle, &mut rng))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tip_selection);
criterion_main!(benches);
