//! Microbenchmarks of the from-scratch bignum: the arithmetic that
//! dominates RSA cost.

use biot_crypto::bignum::{gen_prime, BigUint};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn value(bits: usize, seed: u64) -> BigUint {
    let mut rng = StdRng::seed_from_u64(seed);
    BigUint::random_bits(&mut rng, bits)
}

fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum_mul");
    for bits in [256usize, 512, 1024, 2048] {
        let a = value(bits, 1);
        let b = value(bits, 2);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| &a * &b)
        });
    }
    group.finish();
}

fn bench_div_rem(c: &mut Criterion) {
    let a = value(2048, 3);
    let b = value(1024, 4);
    c.bench_function("bignum_div_2048_by_1024", |bch| bch.iter(|| a.div_rem(&b)));
}

fn bench_modpow(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum_modpow");
    group.sample_size(20);
    for bits in [256usize, 512] {
        let base = value(bits, 5);
        let exp = value(bits, 6);
        let modulus = value(bits, 7);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| base.modpow(&exp, &modulus))
        });
    }
    group.finish();
}

fn bench_modinv(c: &mut Criterion) {
    let a = value(512, 8);
    let mut rng = StdRng::seed_from_u64(9);
    let p = gen_prime(512, &mut rng);
    c.bench_function("bignum_modinv_512_mod_prime", |bch| {
        bch.iter(|| a.modinv(&p).unwrap())
    });
}

fn bench_prime_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum_gen_prime");
    group.sample_size(10);
    group.bench_function("128", |bch| {
        let mut rng = StdRng::seed_from_u64(10);
        bch.iter(|| gen_prime(128, &mut rng))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mul,
    bench_div_rem,
    bench_modpow,
    bench_modinv,
    bench_prime_gen
);
criterion_main!(benches);
