//! Parallel midstate mining: `solve_parallel` sharded across threads vs the
//! single-threaded `solve` baseline, at the paper's hardest difficulty tier.
//!
//! Target: 4 threads ≥ 2× faster than 1 thread at D=14 — on a host with
//! ≥ 4 cores. On a single-core machine the shards timeslice one CPU and the
//! bench degenerates to parity plus spawn overhead (the printed core count
//! says which regime you're in).

use biot_core::pow::{solve, Difficulty, MiningConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let difficulty = Difficulty::new(14);
    println!(
        "host cores: {} (speedup needs > 1)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut group = c.benchmark_group("pow_parallel_d14");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let mining = MiningConfig { threads };
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &mining,
            |b, mining| {
                let mut i = 0u64;
                b.iter(|| {
                    // Cycle a small fixed preimage set so every thread count
                    // searches the same problems — per-preimage trial counts
                    // are geometric, and an unshared set would swamp the
                    // thread effect with draw-to-draw variance.
                    i = (i + 1) % 16;
                    let preimage = [0x7A, i as u8];
                    mining.solve(&preimage, difficulty)
                });
            },
        );
    }
    group.finish();
}

fn bench_midstate_reuse(c: &mut Criterion) {
    // The midstate win in isolation: one long preimage hashed per nonce,
    // serial solve at a modest difficulty so the hash cost dominates.
    let preimage = [0x42u8; 192];
    c.bench_function("pow_solve_long_preimage_d10", |b| {
        b.iter(|| solve(&preimage, Difficulty::new(10), 0))
    });
}

criterion_group!(benches, bench_parallel_vs_serial, bench_midstate_reuse);
criterion_main!(benches);
