//! Cumulative-weight index benchmarks: the maintained O(1) index vs the
//! breadth-first recount it replaced, and the confirmation sweep that now
//! rides on it.

use biot_tangle::graph::Tangle;
use biot_tangle::tips::{TipSelector, UniformRandomSelector};
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a tangle with `n` random-parent transactions.
fn build_tangle(n: usize, seed: u64) -> Tangle {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tangle = Tangle::new();
    tangle.attach_genesis(NodeId([0; 32]), 0);
    for i in 0..n {
        let (a, b) = UniformRandomSelector
            .select_tips(&tangle, &mut rng)
            .unwrap();
        let tx = TransactionBuilder::new(NodeId([(i % 250) as u8; 32]))
            .parents(a, b)
            .payload(Payload::Data((i as u64).to_be_bytes().to_vec()))
            .timestamp_ms(i as u64)
            .nonce(i as u64)
            .build();
        tangle.attach(tx, i as u64).unwrap();
    }
    tangle
}

fn bench_indexed_vs_recount(c: &mut Criterion) {
    let mut group = c.benchmark_group("cumulative_weight");
    for n in [500usize, 2000] {
        let tangle = build_tangle(n, 5);
        let genesis = tangle.genesis().unwrap();
        group.bench_with_input(BenchmarkId::new("indexed", n), &tangle, |b, t| {
            b.iter(|| black_box(t.cumulative_weight(&genesis)))
        });
        group.bench_with_input(BenchmarkId::new("bfs_recount", n), &tangle, |b, t| {
            b.iter(|| black_box(t.cumulative_weight_recount(&genesis)))
        });
    }
    group.finish();
}

fn bench_confirm_sweep(c: &mut Criterion) {
    c.bench_function("confirm_threshold_2k", |b| {
        let tangle = build_tangle(2000, 6);
        b.iter(|| {
            let mut t = tangle.clone();
            t.confirm_with_threshold(5)
        })
    });
}

criterion_group!(benches, bench_indexed_vs_recount, bench_confirm_sweep);
criterion_main!(benches);
