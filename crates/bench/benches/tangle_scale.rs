//! Criterion view of the sealed-cone weight index: per-attach cost at
//! ledger depth, sealed vs unsealed, on the same seeded graph. The full
//! 1M-transaction report lives in the `tangle_scale_report` bin; this
//! bench keeps the comparison wall-clock-tracked at a depth criterion can
//! afford to iterate.

use biot_bench::scale::{probe_attach, run_sealed_ingest, ScaleConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_attach_at_depth(c: &mut Criterion) {
    let cfg = ScaleConfig {
        txs: 10_000,
        oracle_every: 2_500,
        ..ScaleConfig::default()
    };
    let (sealed, report) = run_sealed_ingest(&cfg);
    assert_eq!(report.oracle_failures, 0);
    let mut unsealed = sealed.clone();
    unsealed.unseal_all();

    let mut group = c.benchmark_group("attach_at_depth_10k");
    group.sample_size(10);
    group.bench_function("sealed", |b| {
        b.iter(|| black_box(probe_attach(&sealed, 64, 1)))
    });
    group.bench_function("unsealed", |b| {
        b.iter(|| black_box(probe_attach(&unsealed, 64, 1)))
    });
    group.finish();
}

fn bench_sealed_ingest(c: &mut Criterion) {
    c.bench_function("sealed_ingest_5k", |b| {
        let cfg = ScaleConfig {
            txs: 5_000,
            oracle_every: 0,
            ..ScaleConfig::default()
        };
        b.iter(|| black_box(run_sealed_ingest(&cfg)))
    });
}

criterion_group!(benches, bench_attach_at_depth, bench_sealed_ingest);
criterion_main!(benches);
