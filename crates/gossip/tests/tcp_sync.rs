//! Cold-start convergence over real TCP loopback sockets — the CI smoke
//! test for the socket layer. Unlike the in-memory suite this runs on
//! wall time, so it polls in a sleep loop under a hard deadline instead
//! of asserting exact round counts.

mod common;

use biot_gossip::node::{GossipConfig, GossipNode};
use biot_gossip::tcp::{TcpAcceptor, TcpConnector};
use std::time::{Duration, Instant};

#[test]
fn tcp_cold_start_converges_on_loopback() {
    let established = common::build_established_tangle(5, 260);
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap();

    let mut a = GossipNode::new(std::sync::Arc::clone(&established), GossipConfig::default());
    let mut b = GossipNode::with_empty_tangle(GossipConfig::default());
    b.connect(Box::new(TcpConnector { addr }));

    let target = established.lock().unwrap().len();
    let start = Instant::now();
    let deadline = start + Duration::from_secs(60);
    loop {
        let now = start.elapsed().as_millis() as u64;
        if let Some(t) = acceptor.try_accept().unwrap() {
            a.add_transport(Box::new(t), now);
        }
        a.poll(now);
        b.poll(now);
        if b.tangle().lock().unwrap().len() == target && b.pending_len() == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "TCP sync did not converge in 60s: replica {} of {target}, pending {}",
            b.tangle().lock().unwrap().len(),
            b.pending_len()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    common::assert_converged(&established, b.tangle());
    assert!(b.stats().handshakes >= 1);
    assert_eq!(b.stats().rejected, 0);
}
