//! Shared scenario builder for the gossip integration tests: an
//! "established" gateway tangle a cold replica has to catch up to.

use biot_gossip::node::SharedTangle;
use biot_tangle::graph::Tangle;
use biot_tangle::tx::{NodeId, Payload, TransactionBuilder, TxId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::{Arc, Mutex};

/// Cumulative-weight threshold used when confirming the scenario DAG.
pub const CONFIRM_THRESHOLD: u64 = 8;

/// Grows a tangle the way a live gateway would: genesis, `grow` data
/// transactions on seeded-random tip pairs, periodic confirmation, and a
/// mid-life snapshot that prunes the old confirmed cone. The pruning
/// matters: it forces a syncing replica to bootstrap from the baseline
/// (pruned-id set) instead of fetching full history.
pub fn build_established_tangle(seed: u64, grow: u32) -> SharedTangle {
    let tangle = Arc::new(Mutex::new(Tangle::new()));
    {
        let mut t = tangle.lock().unwrap();
        t.attach_genesis(NodeId([0xAA; 32]), 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0u64;
        for n in 0..grow {
            now += 10;
            let tips = t.tips();
            let trunk = tips[rng.next_u64() as usize % tips.len()];
            let branch = tips[rng.next_u64() as usize % tips.len()];
            let mut issuer = [0u8; 32];
            issuer[..4].copy_from_slice(&n.to_be_bytes());
            let tx = TransactionBuilder::new(NodeId(issuer))
                .parents(trunk, branch)
                .payload(Payload::Data(n.to_be_bytes().to_vec()))
                .timestamp_ms(now)
                .build();
            t.attach(tx, now).unwrap();
            if n == grow / 2 {
                t.confirm_with_threshold(CONFIRM_THRESHOLD);
                let pruned = t.snapshot(now.saturating_sub(1_000));
                assert!(pruned > 0, "scenario must exercise pruning");
            }
        }
        t.confirm_with_threshold(CONFIRM_THRESHOLD);
    }
    tangle
}

/// Every stored transaction id, sorted.
pub fn all_ids(t: &Tangle) -> Vec<TxId> {
    let mut ids: Vec<TxId> = t.iter().map(|tx| tx.id()).collect();
    ids.sort();
    ids
}

/// The acceptance check: the replica holds the identical DAG — same
/// size (≥ 200 per the scenario contract), same tip set, and the same
/// cumulative weight for every transaction.
pub fn assert_converged(established: &SharedTangle, replica: &SharedTangle) {
    let ta = established.lock().unwrap();
    let tb = replica.lock().unwrap();
    assert!(ta.len() >= 200, "scenario too small: {} stored", ta.len());
    assert_eq!(ta.len(), tb.len(), "replica transaction count");
    assert_eq!(ta.tips(), tb.tips(), "tip sets differ");
    for id in all_ids(&ta) {
        assert!(tb.contains(&id), "replica missing {id:?}");
        assert_eq!(
            ta.cumulative_weight(&id),
            tb.cumulative_weight(&id),
            "cumulative weight of {id:?}"
        );
    }
}
